//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The workspace only ever seeds [`rngs::StdRng`] explicitly with
//! `seed_from_u64` and draws uniform values, so a small deterministic
//! generator covers every call site. The implementation is splitmix64 —
//! statistically solid for simulation workloads, not cryptographic. The API
//! (trait names, method names, range semantics) matches rand 0.9 so the real
//! crate can be swapped back in with only a Cargo.toml edit.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, used by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Primitive types [`Rng::random_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)`; `start < end` has been checked.
    fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[start, end]`; `start <= end` has been checked.
    fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// Values drawable by [`Rng::random`] from a single 64-bit word.
pub trait RandomValue {
    /// Maps one uniform 64-bit word onto `Self`.
    fn from_u64(raw: u64) -> Self;
}

impl RandomValue for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl RandomValue for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl RandomValue for usize {
    fn from_u64(raw: u64) -> Self {
        raw as usize
    }
}

impl RandomValue for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

impl RandomValue for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = end.wrapping_sub(start) as u64;
                start.wrapping_add((rng.next_u64() % span) as $t)
            }

            fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
                let span = (end.wrapping_sub(start) as u64).wrapping_add(1);
                if span == 0 {
                    // Inclusive range spanning the whole 64-bit domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
        start + (end - start) * f64::from_u64(rng.next_u64())
    }

    fn sample_inclusive<R: Rng + ?Sized>(start: Self, end: Self, rng: &mut R) -> Self {
        start + (end - start) * f64::from_u64(rng.next_u64())
    }
}

/// Random number generator interface (stub of `rand::Rng`).
pub trait Rng {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

/// Concrete generators (stub of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): one 64-bit state word, full
            // period, passes BigCrush — plenty for workload synthesis.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.random_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
