//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// A recipe for generating values of an associated type. Stub of
/// `proptest::strategy::Strategy`: generation only, no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Generates a value, then generates from the strategy `flat_map`
    /// derives from it.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            flat_map,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves and `recurse`
    /// wraps an inner strategy into composite values, nested at most `depth`
    /// levels. The size hints accepted by real proptest are ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strategy.clone()).boxed();
            strategy = Union::new(vec![strategy, deeper]).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice among several strategies with a common value type; built
/// by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`, which must be non-empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Inclusive range spanning the whole domain.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::for_case(0);
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((10..50).contains(&v) && v % 10 == 0);
        }
    }

    #[test]
    fn union_picks_every_option() {
        let mut rng = TestRng::for_case(1);
        let s = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_case(2);
        for _ in 0..50 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u32..10, n));
        let mut rng = TestRng::for_case(3);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
