//! Deterministic test runner support: per-case RNG, configuration, and the
//! error type threaded out of `prop_assert!`/`prop_assume!`.

/// Per-test configuration (stub of `proptest::test_runner::Config`, exported
/// from the prelude as `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated; fails the test.
    Fail(String),
    /// A `prop_assume!` precondition failed; the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection carrying `message`.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Deterministic generator handed to strategies. Each case index gets its
/// own splitmix64 stream, so runs are reproducible across machines and
/// re-orderings of the test binary.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case number `case` of a property.
    #[must_use]
    pub fn for_case(case: u32) -> Self {
        let mut rng = TestRng {
            state: 0x9E6D_5EED_0000_0000 ^ u64::from(case),
        };
        // One warm-up step decorrelates consecutive case seeds.
        rng.next_u64();
        rng
    }

    /// Next uniform 64-bit word (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `0..n`. `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_case_same_stream() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let a = TestRng::for_case(0).next_u64();
        let b = TestRng::for_case(1).next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn below_is_in_range() {
        let mut rng = TestRng::for_case(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
