//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the subset of proptest the workspace uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_recursive`/`boxed`, integer/float range strategies, tuples,
//! [`strategy::Just`], [`arbitrary::any`], [`collection::vec`], and the
//! `proptest!`/`prop_oneof!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Semantics differ from real proptest in two deliberate ways:
//! generation is fully deterministic (a fixed seed per case index, so CI
//! never flakes), and failing cases are reported but not shrunk. The API
//! shape matches proptest 1.x so the real crate can be swapped back in with
//! only a Cargo.toml edit.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than panicking) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values compare equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts two values compare unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Discards the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Picks uniformly among several strategies producing the same value type.
/// Unlike real proptest, weights are not supported (the workspace never uses
/// them).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let __strategy = ($($strategy,)+);
            let mut __rejected: u32 = 0;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__case);
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __config.cases,
                            __msg,
                        );
                    }
                }
            }
            assert!(
                __rejected < __config.cases,
                "property `{}` rejected all {} cases",
                stringify!($name),
                __config.cases,
            );
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}
