//! The [`any`] entry point and the [`Arbitrary`] trait for types with a
//! canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy (stub of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary_from(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_from(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_from(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T`; returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_from(rng)
    }
}

/// A strategy generating arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}
