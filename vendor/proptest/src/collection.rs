//! Collection strategies (stub of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive range of collection sizes accepted by [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `Vec`s whose length falls in `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_all_size_forms() {
        let mut rng = TestRng::for_case(4);
        for _ in 0..50 {
            assert_eq!(vec(0u8..4, 3usize).generate(&mut rng).len(), 3);
            let l = vec(0u8..4, 1..5).generate(&mut rng).len();
            assert!((1..5).contains(&l));
            let l = vec(0u8..4, 2..=6).generate(&mut rng).len();
            assert!((2..=6).contains(&l));
        }
    }
}
