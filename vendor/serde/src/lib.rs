//! Offline stand-in for the `serde` facade crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the real serde cannot be vendored. The workspace only relies on serde as
//! a *marker* — types derive `Serialize`/`Deserialize` so they stay
//! serialization-ready, but nothing actually serializes them (there is no
//! `serde_json`/`bincode` in the tree). This stub therefore provides the two
//! traits with blanket implementations and no-op derive macros, which keeps
//! every `#[derive(Serialize, Deserialize)]` and every
//! `T: Serialize + DeserializeOwned` bound compiling unchanged. Swapping the
//! real serde back in requires only a Cargo.toml edit.

/// Marker for types that can be serialized. Blanket-implemented for every
/// type; the derive macro is a no-op kept for source compatibility.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized. Blanket-implemented for every
/// type; the derive macro is a no-op kept for source compatibility.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Mirror of `serde::de`, providing the `DeserializeOwned` alias bound.
pub mod de {
    /// Types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
