//! No-op derive macros backing the offline `serde` stub.
//!
//! The stub `serde` crate blanket-implements its marker traits for every
//! type, so these derives have nothing to generate; they exist so that
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace keep
//! compiling against the stub exactly as they would against real serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
