//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace's `[[bench]]` targets must compile (and are executed by
//! `cargo test` because they use `harness = false`), but the real criterion
//! crate is unreachable in this build environment. This stub keeps the same
//! API shape — `Criterion`, benchmark groups, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — and times a single pass of
//! each routine, printing a one-line report. Under `cargo test` the
//! generated `main` exits immediately unless `FSMGEN_RUN_BENCHES` is set, so
//! test runs stay fast.

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (stub of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing handle passed to benchmark closures (stub of `criterion::Bencher`).
pub struct Bencher {
    label: String,
}

impl Bencher {
    /// Times `routine`. The stub runs a single pass; the real crate would
    /// sample many iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let elapsed = start.elapsed();
        println!("bench {:<48} one pass in {elapsed:?}", self.label);
    }
}

/// Top-level harness handle (stub of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: id.to_string(),
        };
        f(&mut b);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: id.to_string(),
        };
        f(&mut b, input);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (stub of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub always runs one pass.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            label: format!("{}/{id}", self.name),
        };
        f(&mut b);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            label: format!("{}/{id}", self.name),
        };
        f(&mut b, input);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target. Bodies only run
/// when `FSMGEN_RUN_BENCHES` is set, so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::var_os("FSMGEN_RUN_BENCHES").is_none() {
                println!(
                    "criterion stub: skipping bench bodies (set FSMGEN_RUN_BENCHES=1 to run)"
                );
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_invokes_routine() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn groups_and_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut hits = 0;
        group
            .sample_size(10)
            .bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
                b.iter(|| hits += n)
            });
        group.finish();
        assert_eq!(hits, 7);
    }
}
