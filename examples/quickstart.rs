//! Quickstart: the paper's §4 walkthrough, end to end.
//!
//! Takes the example trace `t = 0000 1000 1011 1101 1110 1111`, runs the
//! automated design flow at history length 2, and prints every
//! intermediate artifact: the Markov table, the pattern sets, the
//! minimized cover, the regular expression, and Figure 1's state machines
//! (before and after start-state removal) as Graphviz DOT.
//!
//! Run with: `cargo run --example quickstart`

use fsmgen_suite::core::Designer;
use fsmgen_suite::traces::BitTrace;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace: BitTrace = "0000 1000 1011 1101 1110 1111".parse()?;
    println!("trace t = {trace}\n");

    let design = Designer::new(2)
        .dont_care_fraction(0.0)
        .design_from_trace(&trace)?;

    println!("-- §4.2 second-order Markov model --");
    print!("{}", design.model().display_table());

    let spec = design.pattern_sets().spec();
    println!("\n-- §4.3 pattern sets --");
    println!(
        "predict-1 = {:?}",
        spec.on_set()
            .iter()
            .map(|h| format!("{h:02b}"))
            .collect::<Vec<_>>()
    );
    println!(
        "predict-0 = {:?}",
        spec.off_set()
            .iter()
            .map(|h| format!("{h:02b}"))
            .collect::<Vec<_>>()
    );

    println!("\n-- §4.4 minimized cover --");
    println!("{}", design.cover());

    println!("\n-- §4.5 regular expression --");
    println!("{}", design.regex().expect("non-empty predict-1 set"));

    println!("\n-- Figure 1, left: minimized machine with start-up states --");
    println!(
        "{} states:\n{}",
        design.pre_reduction_states(),
        design.minimized_with_startup().to_dot("with_startup")
    );

    println!("-- Figure 1, right: after start state removal --");
    println!(
        "{} states:\n{}",
        design.fsm().num_states(),
        design.fsm().to_dot("steady")
    );

    // Drive the predictor over the training trace and report accuracy.
    let mut predictor = design.predictor();
    let mut correct = 0;
    let mut total = 0;
    for (i, bit) in trace.iter().enumerate() {
        if i >= 2 {
            total += 1;
            if predictor.predict() == bit {
                correct += 1;
            }
        }
        predictor.update(bit);
    }
    println!(
        "predictor accuracy on t (after warm-up): {correct}/{total} = {:.0}%",
        100.0 * correct as f64 / total as f64
    );
    Ok(())
}
