//! Pipeline gating for power (§2.5): use confidence estimation to stall
//! fetch on branches likely to be mispredicted, saving wrong-path work.
//!
//! The FSM estimator is built by the paper's design flow from the
//! baseline predictor's own correctness stream (the §6.3 method applied
//! to branch prediction), then compared against JRS-style resetting
//! counters at several thresholds.
//!
//! Run with: `cargo run --release --example pipeline_gating [benchmark]`

use fsmgen_suite::bpred::BranchPredictor;
use fsmgen_suite::bpred::{
    simulate_gating, BranchConfidence, FsmBranchConfidence, GatingStats, ResettingConfidence,
    XScaleBtb,
};
use fsmgen_suite::core::{Designer, MarkovModel};
use fsmgen_suite::traces::HistoryRegister;
use fsmgen_suite::workloads::{BranchBenchmark, Input};

const TRACE_LEN: usize = 50_000;
/// Wrong-path fetch cost (slots) and gating stall cost per branch.
const FLUSH_COST: f64 = 8.0;
const STALL_COST: f64 = 2.0;

/// Builds the per-slot correctness Markov model of the baseline predictor
/// over the training trace.
fn correctness_model(trace: &fsmgen_suite::traces::BranchTrace, order: usize) -> MarkovModel {
    let mut predictor = XScaleBtb::xscale();
    let mut model = MarkovModel::new(order);
    let mut histories: std::collections::BTreeMap<u64, HistoryRegister> =
        std::collections::BTreeMap::new();
    for e in trace {
        let correct = predictor.predict(e.pc) == e.taken;
        let h = histories
            .entry(e.pc)
            .or_insert_with(|| HistoryRegister::new(order));
        if h.is_full() {
            model.observe(h.value(), correct);
        }
        h.push(correct);
        predictor.update(e.pc, e.taken);
    }
    model
}

fn report(label: &str, stats: &GatingStats) {
    println!(
        "{label:<24} {:>9.1}% {:>10.1}% {:>12.3}",
        100.0 * stats.flush_coverage(),
        100.0 * stats.gating_precision(),
        stats.net_savings(FLUSH_COST, STALL_COST)
    );
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "vortex".to_string());
    let bench = BranchBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == which)
        .unwrap_or(BranchBenchmark::Vortex);
    println!("pipeline gating on {bench} (flush={FLUSH_COST} slots, stall={STALL_COST})\n");

    let train = bench.trace(Input::TRAIN, TRACE_LEN);
    let eval = bench.trace(Input::EVAL, TRACE_LEN);

    println!(
        "{:<24} {:>10} {:>11} {:>12}",
        "confidence estimator", "coverage", "precision", "slots/branch"
    );

    // JRS-style resetting counters at a few thresholds.
    for (max, thr) in [(4u32, 2u32), (8, 4), (16, 8)] {
        let mut conf = ResettingConfidence::new(256, max, thr);
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &eval);
        report(&conf.describe(), &stats);
    }

    // Designed FSM estimators at two operating points. Note the estimator
    // predicts *correctness*, so gating happens on predict-0; lowering the
    // threshold makes it gate less.
    for thr in [0.55, 0.8] {
        let model = correctness_model(&train, 6);
        let design = Designer::new(6)
            .prob_threshold(thr)
            .design_from_model(model)
            .expect("non-empty model");
        let label = format!("fsm-h6-t{thr:.2} ({}st)", design.fsm().num_states());
        let mut conf = FsmBranchConfidence::new(256, design.into_fsm(), label.clone());
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &eval);
        report(&label, &stats);
    }
}
