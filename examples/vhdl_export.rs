//! Synthesis back-end (§4.8): design an FSM predictor for a hard branch of
//! a benchmark, emit synthesizable VHDL for it, and report the structural
//! area estimate under the three state encodings.
//!
//! Run with: `cargo run --release --example vhdl_export`

use fsmgen_suite::bpred::CustomTrainer;
use fsmgen_suite::synth::{synthesize_area, to_vhdl, Encoding, VhdlOptions};
use fsmgen_suite::workloads::{BranchBenchmark, Input};

fn main() {
    let trace = BranchBenchmark::Gs.trace(Input::TRAIN, 30_000);
    let designs = CustomTrainer::new(6).train(&trace, 1);
    let (pc, design) = designs
        .designs()
        .first()
        .expect("gs always has at least one mispredicting branch");

    println!(
        "designed FSM for gs branch {pc:#x}: {} states, cover: {}",
        design.fsm().num_states(),
        design.cover()
    );
    println!(
        "regex: {}\n",
        design.regex().map_or("-".to_string(), |r| r.to_string())
    );

    println!("-- area under different state encodings --");
    for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
        let est = synthesize_area(design.fsm(), enc);
        println!(
            "{enc:?}: {} flip-flops, {:.0} logic gates, {:.0} total gate-equivalents",
            est.flip_flops, est.logic_gates, est.area
        );
    }

    let options = VhdlOptions {
        entity: format!("bp_custom_{pc:x}"),
        ..VhdlOptions::default()
    };
    println!("\n-- synthesizable VHDL --\n");
    println!("{}", to_vhdl(design.fsm(), &options));
}
