//! Customized branch prediction (§7): design per-branch FSM predictors for
//! a benchmark, then compare the customized XScale architecture against
//! the stock baseline, gshare and the local/global chooser — a one-panel
//! rendition of Figure 5.
//!
//! Run with: `cargo run --release --example branch_customization [benchmark]`
//! where `benchmark` is one of compress, gs, gsm, g721, ijpeg, vortex
//! (default ijpeg).

use fsmgen_suite::bpred::{
    simulate, BranchPredictor, CustomTrainer, Gshare, LocalGlobalChooser, XScaleBtb,
};
use fsmgen_suite::synth::{synthesize_area, Encoding};
use fsmgen_suite::workloads::{BranchBenchmark, Input};

const TRACE_LEN: usize = 60_000;
const HISTORY: usize = 9;
const MAX_CUSTOMS: usize = 8;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ijpeg".to_string());
    let bench = BranchBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == which)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {which:?}, using ijpeg");
            BranchBenchmark::Ijpeg
        });

    println!("benchmark: {bench}");
    let train = bench.trace(Input::TRAIN, TRACE_LEN);
    let eval = bench.trace(Input::EVAL, TRACE_LEN);
    println!(
        "training trace: {} dynamic branches over {} static branches",
        train.len(),
        train.static_branches().len()
    );

    // Baselines.
    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    let mut run = |mut p: Box<dyn BranchPredictor>| {
        let r = simulate(p.as_mut(), &eval);
        rows.push((p.describe(), p.storage_bits(), r.miss_rate()));
    };
    run(Box::new(XScaleBtb::xscale()));
    run(Box::new(Gshare::new(1 << 12)));
    run(Box::new(Gshare::new(1 << 16)));
    run(Box::new(LocalGlobalChooser::new(512, 10, 1 << 12)));

    // The custom flow: profile -> worst branches -> per-branch FSMs.
    let designs = CustomTrainer::new(HISTORY).train(&train, MAX_CUSTOMS);
    println!("\nper-branch custom FSM designs (worst branch first):");
    for (pc, design) in designs.designs() {
        let est = synthesize_area(design.fsm(), Encoding::Binary);
        println!(
            "  branch {pc:#x}: {} states, cover {}, area {:.0} gates",
            design.fsm().num_states(),
            design.cover(),
            est.area
        );
    }

    for k in 1..=designs.len() {
        let mut arch = designs.architecture(k);
        let r = simulate(&mut arch, &eval);
        rows.push((format!("custom-{k}fsm"), arch.storage_bits(), r.miss_rate()));
    }

    println!(
        "\n{:<18} {:>12} {:>10}",
        "predictor", "table bits", "miss rate"
    );
    for (label, bits, miss) in rows {
        println!("{label:<18} {bits:>12} {:>9.2}%", miss * 100.0);
    }
}
