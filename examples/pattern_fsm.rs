//! The paper's example machines (Figures 6 and 7), regenerated from their
//! history patterns and printed as Graphviz DOT with a walkthrough of the
//! "correct from any state" property of §7.6.
//!
//! Run with: `cargo run --example pattern_fsm`

use fsmgen_suite::experiments::figures::{figure6, figure7};

fn main() {
    let fig6 = figure6();
    println!(
        "Figure 6 (ijpeg, pattern 1x): {} states\n{}",
        fig6.num_states(),
        fig6.to_dot("fig6")
    );

    // §7.6: "If you start in any state of the machine and you follow two
    // transitions, first a 1 and then either a 0 or a 1, you will end up
    // in a state that is labeled a 1."
    println!("verifying the any-state property for 1x:");
    for start in 0..fig6.num_states() as u32 {
        for second in [false, true] {
            let end = fig6.step(fig6.step(start, true), second);
            assert!(fig6.output(end));
        }
        println!("  from s{start}: 1,* lands on a predict-1 state ✓");
    }

    let fig7 = figure7();
    println!(
        "\nFigure 7 (gs, patterns 0x1x | 0xx1x): {} states\n{}",
        fig7.num_states(),
        fig7.to_dot("fig7")
    );

    // The four dominant global history patterns of the gs branch (§7.6).
    println!("dominant gs history patterns, traced from state s0:");
    for (pattern, bias) in [
        ("001001010", "taken"),
        ("010011010", "not-taken"),
        ("010101010", "taken"),
        ("110010010", "taken"),
    ] {
        let mut s = 0u32;
        for c in pattern.chars() {
            s = fig7.step(s, c == '1');
        }
        println!(
            "  {pattern} (biased {bias:<9}) -> s{s} predicts {}",
            if fig7.output(s) { "taken" } else { "not-taken" }
        );
    }
}
