//! SimPoint-style representative sampling (§5's methodology): cluster a
//! long trace's execution windows, train the design flow on just the
//! representative windows, and show the resulting predictor matches one
//! trained on the full trace.
//!
//! Run with: `cargo run --release --example simpoint_sampling [benchmark]`

use fsmgen_suite::core::Designer;
use fsmgen_suite::traces::{BitTrace, BranchTrace};
use fsmgen_suite::workloads::simpoint::select_simpoints;
use fsmgen_suite::workloads::{BranchBenchmark, Input};

const FULL_LEN: usize = 80_000;
const WINDOW: usize = 2_000;
const K: usize = 6;

fn to_bits(t: &BranchTrace) -> BitTrace {
    t.iter().map(|e| e.taken).collect()
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gsm".to_string());
    let bench = BranchBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == which)
        .unwrap_or(BranchBenchmark::Gsm);

    let full = bench.trace(Input::TRAIN, FULL_LEN);
    let sp = select_simpoints(&full, WINDOW, K).expect("trace long enough");
    println!(
        "{bench}: {} branches in {} windows of {WINDOW}; selected {} simpoints:",
        full.len(),
        full.len().div_ceil(WINDOW),
        sp.windows.len()
    );
    for (w, weight) in sp.windows.iter().zip(&sp.weights) {
        println!(
            "  window {w:>3} representing {:.0}% of execution",
            weight * 100.0
        );
    }
    let sample = sp.sample(&full);
    println!(
        "sample: {} branches ({:.0}% of the full trace)\n",
        sample.len(),
        100.0 * sample.len() as f64 / full.len() as f64
    );

    let eval_bits = to_bits(&bench.trace(Input::EVAL, FULL_LEN));
    let accuracy = |train: &BranchTrace, label: &str| {
        let design = Designer::new(6)
            .design_from_trace(&to_bits(train))
            .expect("trace long enough");
        let mut p = design.predictor();
        let mut ok = 0usize;
        for b in &eval_bits {
            if p.predict() == b {
                ok += 1;
            }
            p.update(b);
        }
        println!(
            "trained on {label:<12} -> {} states, {:.2}% accuracy on the eval input",
            design.fsm().num_states(),
            100.0 * ok as f64 / eval_bits.len() as f64
        );
    };
    accuracy(&full, "full trace");
    accuracy(&sample, "simpoints");
}
