//! Cache management with FSM predictors (§2.4): protect a resident
//! working set from streaming pollution by letting a small predictor
//! decide which misses may allocate.
//!
//! The FSM policy is built by the paper's design flow from the observed
//! per-instruction reuse streams, and compared against always-allocate
//! and the classic per-PC counter exclusion.
//!
//! Run with: `cargo run --release --example cache_exclusion`

use fsmgen_suite::cache::{
    design_exclusion_fsm, run_cache, AllocationPolicy, AlwaysAllocate, Cache, CounterExclusion,
    FsmExclusion, MemoryWorkload,
};

fn main() {
    let workload = MemoryWorkload::pollution_mix();
    let train = workload.generate(60_000, 1);
    let eval = workload.generate(60_000, 2);
    println!(
        "8 KiB 4-way cache; workload: resident arrays polluted by streams \
         ({} training, {} evaluation accesses)\n",
        train.len(),
        eval.len()
    );

    let design = design_exclusion_fsm(&train, &Cache::embedded_8k(), 4)
        .expect("training stream is long enough");
    println!(
        "designed exclusion FSM: {} states, cover {} (input = \"line was reused\")\n",
        design.fsm().num_states(),
        design.cover()
    );

    println!(
        "{:<24} {:>9} {:>12} {:>12} {:>10}",
        "policy", "hit rate", "allocations", "dead evicts", "bypasses"
    );
    let report = |name: &str, policy: &mut dyn AllocationPolicy| {
        let stats = run_cache(&mut Cache::embedded_8k(), policy, &eval);
        println!(
            "{:<24} {:>8.1}% {:>12} {:>12} {:>10}",
            name,
            100.0 * stats.hit_rate(),
            stats.allocations,
            stats.dead_evictions,
            stats.bypasses
        );
    };
    report("always-allocate", &mut AlwaysAllocate);
    report("counter-excl(m3,t0)", &mut CounterExclusion::new(3, 0));
    report(
        "fsm-excl-h4",
        &mut FsmExclusion::new(design.into_fsm(), "fsm-excl-h4"),
    );
}
