//! Search vs construction (§3.2): compare the Emer & Gloy-style genetic
//! search against the paper's constructive design flow on the same
//! behaviour traces.
//!
//! The paper's position: "our approach automatically builds FSM
//! predictors from behavioral traces, without searching", trading the
//! open-endedness of search for speed and directness. This example
//! measures both sides: accuracy on a held-out input, machine size, and
//! wall-clock design cost.
//!
//! Run with: `cargo run --release --example evolve_vs_design`

use fsmgen_suite::core::Designer;
use fsmgen_suite::evolve::{evolve, replay_accuracy, EvolveConfig};
use fsmgen_suite::traces::BitTrace;
use fsmgen_suite::workloads::{BranchBenchmark, Input};
use std::time::Instant;

fn branch_bits(bench: BranchBenchmark, input: Input, len: usize) -> BitTrace {
    bench.trace(input, len).iter().map(|e| e.taken).collect()
}

fn main() {
    println!(
        "{:<10} {:<12} {:>7} {:>9} {:>9} {:>11}",
        "trace", "method", "states", "train", "eval", "design time"
    );
    for bench in [
        BranchBenchmark::Ijpeg,
        BranchBenchmark::Gsm,
        BranchBenchmark::Compress,
    ] {
        let train = branch_bits(bench, Input::TRAIN, 30_000);
        let eval = branch_bits(bench, Input::EVAL, 30_000);

        // Constructive flow at history 6.
        let t0 = Instant::now();
        let design = Designer::new(6)
            .design_from_trace(&train)
            .expect("trace long enough");
        let design_time = t0.elapsed();
        let fsm = design.fsm();
        println!(
            "{:<10} {:<12} {:>7} {:>8.1}% {:>8.1}% {:>11.2?}",
            bench.name(),
            "designed",
            fsm.num_states(),
            100.0 * replay_accuracy(fsm, &train),
            100.0 * replay_accuracy(fsm, &eval),
            design_time
        );

        // Genetic search with the same state budget.
        let budget = fsm.num_states().max(2);
        let t0 = Instant::now();
        let evolved = evolve(
            &train,
            &EvolveConfig {
                states: budget,
                population: 64,
                generations: 150,
                ..EvolveConfig::default()
            },
        )
        .expect("valid config");
        let evolve_time = t0.elapsed();
        println!(
            "{:<10} {:<12} {:>7} {:>8.1}% {:>8.1}% {:>11.2?}",
            bench.name(),
            "evolved",
            evolved.machine.num_states(),
            100.0 * evolved.accuracy,
            100.0 * replay_accuracy(&evolved.machine, &eval),
            evolve_time
        );
    }
    println!(
        "\nThe constructive flow reaches its answer in a fraction of the \
         search budget and transfers across inputs the same way — the \
         paper's §3.2 trade-off, measured."
    );
}
