//! Value-prediction confidence estimation (§6): train cross-benchmark FSM
//! confidence estimators and compare their accuracy/coverage trade-off
//! against the saturating up/down counter sweep — one panel of Figure 2.
//!
//! Run with: `cargo run --release --example value_confidence [benchmark]`
//! where `benchmark` is one of groff, gcc, li, go, perl (default gcc).

use fsmgen_suite::experiments::fig2::{best_coverage_at_accuracy, run_panel, Fig2Config};
use fsmgen_suite::experiments::report::fig2_table;
use fsmgen_suite::workloads::ValueBenchmark;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let bench = ValueBenchmark::ALL
        .into_iter()
        .find(|b| b.name() == which)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {which:?}, using gcc");
            ValueBenchmark::Gcc
        });

    let config = Fig2Config {
        trace_len: 40_000,
        histories: vec![2, 4, 6, 8, 10],
        thresholds: vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99],
        cache_file: None,
    };
    println!(
        "cross-training FSM confidence for {bench}: trained on all other \
         benchmarks, evaluated on {bench}\n"
    );
    let panel = run_panel(bench, &config);
    print!("{}", fig2_table(&panel));

    // The paper's headline comparison, at an 80% accuracy target.
    let sud_cov = best_coverage_at_accuracy(&panel.sud, 0.8);
    let fsm_cov = panel
        .fsm
        .values()
        .filter_map(|curve| best_coverage_at_accuracy(curve, 0.8))
        .fold(None, |best: Option<f64>, c| {
            Some(best.map_or(c, |b| b.max(c)))
        });
    println!("\nbest coverage at >= 80% accuracy:");
    println!(
        "  saturating up/down counters: {}",
        sud_cov.map_or("-".to_string(), |c| format!("{:.1}%", c * 100.0))
    );
    println!(
        "  custom FSM estimators:       {}",
        fsm_cov.map_or("-".to_string(), |c| format!("{:.1}%", c * 100.0))
    );
}
