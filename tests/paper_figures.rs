//! Integration tests pinning the paper's worked examples: the §4
//! walkthrough artifacts and the exact machines of Figures 1, 6 and 7.

use fsmgen_suite::automata::MoorePredictor;
use fsmgen_suite::core::Designer;
use fsmgen_suite::experiments::figures::{figure1, figure6, figure7, paper_trace};

#[test]
fn section_4_2_markov_table() {
    let model = fsmgen_suite::core::MarkovModel::from_bit_trace(2, &paper_trace()).unwrap();
    let probe = |h: u32| {
        let c = model.counts(h).unwrap();
        (c.ones, c.total())
    };
    assert_eq!(probe(0b00), (2, 5));
    assert_eq!(probe(0b01), (3, 5));
    assert_eq!(probe(0b10), (3, 4));
    assert_eq!(probe(0b11), (6, 8));
}

#[test]
fn section_4_3_pattern_sets() {
    let design = figure1();
    let spec = design.pattern_sets().spec();
    let on: Vec<u32> = spec.on_set().iter().copied().collect();
    assert_eq!(on, vec![0b01, 0b10, 0b11], "predict-1 = {{01, 10, 11}}");
    let off: Vec<u32> = spec.off_set().iter().copied().collect();
    assert_eq!(off, vec![0b00], "predict-0 = {{00}}");
}

#[test]
fn section_4_4_minimized_cover() {
    let design = figure1();
    let mut terms: Vec<String> = design
        .cover()
        .cubes()
        .iter()
        .map(|c| c.display(2))
        .collect();
    terms.sort();
    assert_eq!(terms, vec!["-1", "1-"], "cover is (x1) v (1x)");
}

#[test]
fn section_4_5_regular_expression() {
    let design = figure1();
    let re = design.regex().expect("non-empty language").to_string();
    // {0|1}* prefix over the two alternated patterns.
    assert!(re.starts_with("{0|1}*"), "got {re}");
    assert!(re.contains("1{0|1}"));
    assert!(re.contains("{0|1}1"));
}

#[test]
fn figure_1_state_machines() {
    let design = figure1();
    assert_eq!(design.pre_reduction_states(), 5, "with start-up states");
    assert_eq!(design.fsm().num_states(), 3, "after start state removal");

    // Steady-state semantics: predict 0 only after two consecutive 0s.
    let mut p = MoorePredictor::new(design.fsm().clone());
    let stream = [true, false, false, true, true, false, false, false];
    let mut last_two = (true, true);
    for bit in stream {
        p.update(bit);
        last_two = (last_two.1, bit);
        let expect = last_two.0 || last_two.1;
        assert_eq!(p.predict(), expect, "after history {last_two:?}");
    }
}

#[test]
fn figure_6_machine() {
    let fsm = figure6();
    assert_eq!(fsm.num_states(), 4);
    // §7.6: from any state, 1 then anything predicts 1; 0 then anything
    // predicts 0.
    for s in 0..4u32 {
        for x in [false, true] {
            assert!(fsm.output(fsm.step(fsm.step(s, true), x)));
            assert!(!fsm.output(fsm.step(fsm.step(s, false), x)));
        }
    }
}

#[test]
fn figure_7_machine() {
    let fsm = figure7();
    assert_eq!(fsm.num_states(), 11);
    // Both patterns 0x1x and 0xx1x land on predict-1 from any state.
    for s in 0..11u32 {
        for fill in 0..4u32 {
            let x1 = fill & 1 != 0;
            let x2 = fill & 2 != 0;
            // 0 x 1 x
            let mut c = s;
            for b in [false, x1, true, x2] {
                c = fsm.step(c, b);
            }
            assert!(fsm.output(c), "0x1x from s{s}");
        }
        for fill in 0..8u32 {
            // 0 x x 1 x
            let mut c = s;
            for b in [false, fill & 1 != 0, fill & 2 != 0, true, fill & 4 != 0] {
                c = fsm.step(c, b);
            }
            assert!(fsm.output(c), "0xx1x from s{s}");
        }
    }
}

#[test]
fn designer_walkthrough_matches_figures_module() {
    // The figures module and a hand-configured Designer must agree.
    let direct = Designer::new(2)
        .dont_care_fraction(0.0)
        .design_from_trace(&paper_trace())
        .unwrap();
    let canned = figure1();
    assert_eq!(direct.fsm(), canned.fsm());
}
