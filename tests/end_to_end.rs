//! Cross-crate integration tests: the full pipeline from synthetic
//! workload through design, simulation and synthesis.

use fsmgen_suite::bpred::{simulate, BranchPredictor, CustomTrainer, XScaleBtb};
use fsmgen_suite::core::{Designer, MarkovModel};
use fsmgen_suite::synth::{synthesize_area, synthesize_logic, to_vhdl, Encoding, VhdlOptions};
use fsmgen_suite::traces::{BitTrace, HistoryRegister};
use fsmgen_suite::vpred::{
    per_entry_correctness_model, run_confidence, AlwaysConfident, FsmConfidence, TwoDeltaStride,
};
use fsmgen_suite::workloads::{BranchBenchmark, Input, ValueBenchmark};

#[test]
fn workload_to_vhdl_pipeline() {
    // Benchmark -> profile -> design -> synthesize -> VHDL, end to end.
    let trace = BranchBenchmark::Gsm.trace(Input::TRAIN, 20_000);
    let designs = CustomTrainer::new(6).train(&trace, 3);
    assert!(!designs.is_empty());
    for (pc, design) in designs.designs() {
        let fsm = design.fsm();
        assert!(fsm.num_states() >= 1);
        let est = synthesize_area(fsm, Encoding::Binary);
        assert!(est.area > 0.0, "branch {pc:#x} must have positive area");
        let vhdl = to_vhdl(
            fsm,
            &VhdlOptions {
                entity: format!("custom_{pc:x}"),
                ..VhdlOptions::default()
            },
        );
        assert!(vhdl.contains(&format!("entity custom_{pc:x} is")));
        // One case arm per state.
        for s in 0..fsm.num_states() {
            assert!(vhdl.contains(&format!("when s{s} =>")));
        }
    }
}

#[test]
fn synthesized_logic_simulates_the_fsm() {
    // The minimized next-state logic must replay the exact machine over a
    // live trace (hardware/software equivalence).
    let trace = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 10_000);
    let designs = CustomTrainer::new(5).train(&trace, 1);
    let (_, design) = &designs.designs()[0];
    let fsm = design.fsm();
    let enc = Encoding::Binary;
    let bits = enc.register_bits(fsm.num_states());
    let covers = synthesize_logic(fsm, enc);

    let mut hw_state = enc.code(fsm.start() as usize, fsm.num_states()) as u32;
    let mut sw_state = fsm.start();
    for e in trace.events().iter().take(2_000) {
        // Hardware step: evaluate each next-state bit's cover.
        let minterm = hw_state << 1 | u32::from(e.taken);
        let mut next_hw = 0u32;
        for (bit, cover) in covers[..bits].iter().enumerate() {
            if cover.covers_minterm(minterm) {
                next_hw |= 1 << bit;
            }
        }
        // Output logic agrees with the Moore output before stepping.
        assert_eq!(
            covers[bits].covers_minterm(hw_state),
            fsm.output(sw_state),
            "output mismatch in state {sw_state}"
        );
        sw_state = fsm.step(sw_state, e.taken);
        hw_state = next_hw;
        assert_eq!(
            hw_state,
            enc.code(sw_state as usize, fsm.num_states()) as u32,
            "state divergence"
        );
    }
}

#[test]
fn per_branch_markov_matches_design_input() {
    // The trainer's per-branch model must agree with an independently
    // built one.
    let trace = BranchBenchmark::G721.trace(Input::TRAIN, 15_000);
    let history = 5;
    let designs = CustomTrainer::new(history).train(&trace, 1);
    let (pc, design) = &designs.designs()[0];

    let mut expected = MarkovModel::new(history);
    let mut global = HistoryRegister::new(history);
    for e in &trace {
        if global.is_full() && e.pc == *pc {
            expected.observe(global.value(), e.taken);
        }
        global.push(e.taken);
    }
    assert_eq!(design.model(), &expected);
}

#[test]
fn confidence_gating_filters_bad_predictions() {
    // With a trained FSM estimator, the confident subset must be more
    // accurate than the unfiltered stream.
    let train = ValueBenchmark::Go.trace(Input::TRAIN, 25_000);
    let eval = ValueBenchmark::Go.trace(Input::EVAL, 25_000);
    let model = per_entry_correctness_model(&mut TwoDeltaStride::paper_default(), &train, 6);
    let design = Designer::new(6)
        .prob_threshold(0.8)
        .design_from_model(model)
        .expect("trained model is non-empty");

    let mut t1 = TwoDeltaStride::paper_default();
    let base = run_confidence(&mut t1, &mut AlwaysConfident, &eval);
    let base_acc = base.accuracy().expect("predictions exist");

    let mut t2 = TwoDeltaStride::paper_default();
    let mut fsm = FsmConfidence::per_entry(t2.len(), design.into_fsm(), "e2e");
    let gated = run_confidence(&mut t2, &mut fsm, &eval);
    let gated_acc = gated.accuracy().expect("some loads marked confident");

    assert!(
        gated_acc > base_acc + 0.1,
        "gated accuracy {gated_acc:.2} must exceed baseline {base_acc:.2}"
    );
}

#[test]
fn designed_predictor_beats_two_bit_counter_on_its_branch() {
    // The contract of the whole system, per branch: the custom FSM beats
    // the 2-bit counter on the branch it was designed for (that is why
    // the branch was selected).
    let train = BranchBenchmark::Vortex.trace(Input::TRAIN, 30_000);
    let eval = BranchBenchmark::Vortex.trace(Input::EVAL, 30_000);
    let designs = CustomTrainer::paper_default().train(&train, 3);

    let mut base = XScaleBtb::xscale();
    let base_result = simulate(&mut base, &eval);
    let mut arch = designs.architecture(3);
    let custom_result = simulate(&mut arch, &eval);

    for (pc, _) in designs.designs().iter().take(3) {
        let (_, base_miss) = base_result.per_branch[pc];
        let (_, custom_miss) = custom_result.per_branch[pc];
        assert!(
            custom_miss < base_miss,
            "branch {pc:#x}: custom {custom_miss} vs baseline {base_miss}"
        );
    }
}

#[test]
fn bit_trace_round_trips_through_design() {
    // A predictor designed from a trace, replayed over that trace, must
    // match the pattern-set semantics bit for bit (the warm region).
    let bits: BitTrace = BranchBenchmark::Gs
        .trace(Input::TRAIN, 5_000)
        .iter()
        .map(|e| e.taken)
        .collect();
    let n = 4;
    let design = Designer::new(n)
        .dont_care_fraction(0.0)
        .design_from_trace(&bits)
        .unwrap();
    let spec = design.pattern_sets().spec().clone();
    let mut p = design.predictor();
    let mut h = HistoryRegister::new(n);
    for b in &bits {
        if h.is_full() {
            match spec.kind(h.value()) {
                fsmgen_suite::logicmin::MintermKind::On => assert!(p.predict()),
                fsmgen_suite::logicmin::MintermKind::Off => assert!(!p.predict()),
                fsmgen_suite::logicmin::MintermKind::DontCare => {}
            }
        }
        h.push(b);
        p.update(b);
    }
}

#[test]
fn describe_strings_are_stable() {
    // Downstream reporting keys off these labels.
    assert_eq!(XScaleBtb::xscale().describe(), "xscale-btb-128");
    let trace = BranchBenchmark::Gs.trace(Input::TRAIN, 5_000);
    let designs = CustomTrainer::new(4).train(&trace, 2);
    assert_eq!(designs.architecture(2).describe(), "custom-2fsm");
}
