//! Integration tests asserting the paper's §6/§7 *qualitative* claims hold
//! on the synthetic substrate — who wins, roughly by how much, and where
//! the crossovers fall. Absolute numbers differ from the paper (our
//! workloads are synthetic models; see DESIGN.md), but these shapes are
//! the reproduction targets recorded in EXPERIMENTS.md.

use fsmgen_suite::bpred::{
    simulate, Combining, CustomTrainer, Gshare, LocalGlobalChooser, XScaleBtb,
};
use fsmgen_suite::core::Designer;
use fsmgen_suite::experiments::fig2::{best_coverage_at_accuracy, run_panel, Fig2Config};
use fsmgen_suite::vpred::{
    per_entry_correctness_model, run_confidence, FsmConfidence, RecoveryModel, TwoDeltaStride,
};
use fsmgen_suite::workloads::{BranchBenchmark, Input, ValueBenchmark};

const TRACE: usize = 40_000;

fn custom_curve(bench: BranchBenchmark, max: usize) -> (f64, Vec<f64>) {
    let train = bench.trace(Input::TRAIN, TRACE);
    let eval = bench.trace(Input::EVAL, TRACE);
    let base = simulate(&mut XScaleBtb::xscale(), &eval).miss_rate();
    let designs = CustomTrainer::paper_default().train(&train, max);
    let curve = (1..=designs.len())
        .map(|k| simulate(&mut designs.architecture(k), &eval).miss_rate())
        .collect();
    (base, curve)
}

#[test]
fn customs_reduce_miss_rate_on_every_benchmark() {
    // §7.5: "for all programs the misprediction rate decreases as we
    // devote more and more chip area to the prediction of branches."
    for bench in BranchBenchmark::ALL {
        let (base, curve) = custom_curve(bench, 6);
        let best = curve.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            best < base,
            "{bench}: customs ({best:.3}) must beat XScale ({base:.3})"
        );
    }
}

#[test]
fn compress_benefit_comes_from_one_branch() {
    // §7.5: "For the program compress all of the benefit comes from the
    // state machine for one branch ... Adding more FSM predictors simply
    // increases the area with little to no improvement."
    let (base, curve) = custom_curve(BranchBenchmark::Compress, 6);
    let first_gain = base - curve[0];
    let rest_gain = curve[0] - curve.last().copied().unwrap();
    assert!(first_gain > 0.0, "one FSM must help");
    assert!(
        rest_gain < first_gain * 0.25,
        "additional FSMs should add little: first {first_gain:.4}, rest {rest_gain:.4}"
    );
}

#[test]
fn compress_moderate_lgc_beats_customs() {
    // §7.5: "Moderate table sizes of a LGC can outperform our customized
    // predictors" on compress, because the dominant branch wants local
    // history.
    let eval = BranchBenchmark::Compress.trace(Input::EVAL, TRACE);
    let lgc = simulate(&mut LocalGlobalChooser::new(512, 10, 4096), &eval).miss_rate();
    let (_, curve) = custom_curve(BranchBenchmark::Compress, 6);
    let best_custom = curve.iter().copied().fold(f64::INFINITY, f64::min);
    assert!(
        lgc < best_custom,
        "LGC ({lgc:.3}) must beat customs ({best_custom:.3}) on compress"
    );
}

#[test]
fn global_correlation_benchmarks_beat_every_table() {
    // §7.5: "The best results are seen for ijpeg and gsm ... the
    // misprediction rate is far below that of even the largest table we
    // examined", and similarly strong results for vortex.
    for bench in [
        BranchBenchmark::Ijpeg,
        BranchBenchmark::Gsm,
        BranchBenchmark::Vortex,
    ] {
        let eval = bench.trace(Input::EVAL, TRACE);
        let best_table = [
            simulate(&mut Gshare::new(1 << 12), &eval).miss_rate(),
            simulate(&mut Gshare::new(1 << 16), &eval).miss_rate(),
            simulate(&mut Combining::new(1024, 1 << 12, 1024), &eval).miss_rate(),
            simulate(&mut LocalGlobalChooser::new(512, 10, 1 << 12), &eval).miss_rate(),
            simulate(&mut LocalGlobalChooser::new(1024, 10, 1 << 14), &eval).miss_rate(),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        let (_, curve) = custom_curve(bench, 8);
        let best_custom = curve.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            best_custom < best_table,
            "{bench}: customs ({best_custom:.3}) must beat every table ({best_table:.3})"
        );
    }
}

#[test]
fn custom_same_and_diff_are_close() {
    // §7.5: "there is little to no difference between custom-diff and
    // custom-same", i.e. the behaviour transfers across inputs.
    for bench in [BranchBenchmark::Gsm, BranchBenchmark::Vortex] {
        let eval = bench.trace(Input::EVAL, TRACE);
        let trainer = CustomTrainer::paper_default();
        let same = trainer.train(&eval, 6);
        let diff = trainer.train(&bench.trace(Input::TRAIN, TRACE), 6);
        let k = same.len().min(diff.len());
        let m_same = simulate(&mut same.architecture(k), &eval).miss_rate();
        let m_diff = simulate(&mut diff.architecture(k), &eval).miss_rate();
        assert!(
            (m_same - m_diff).abs() < 0.03,
            "{bench}: same {m_same:.3} vs diff {m_diff:.3} should be close"
        );
    }
}

#[test]
fn fsm_confidence_dominates_sud_on_hard_benchmark() {
    // §6.4 headline (gcc): at 80% target accuracy the FSM estimator covers
    // far more correct predictions than any SUD configuration.
    let panel = run_panel(
        ValueBenchmark::Gcc,
        &Fig2Config {
            trace_len: 30_000,
            histories: vec![4, 8],
            thresholds: vec![0.5, 0.7, 0.9],
            cache_file: None,
        },
    );
    let sud = best_coverage_at_accuracy(&panel.sud, 0.78).unwrap_or(0.0);
    let fsm = panel
        .fsm
        .values()
        .filter_map(|c| best_coverage_at_accuracy(c, 0.78))
        .fold(0.0f64, f64::max);
    assert!(
        fsm > sud + 0.10,
        "FSM coverage ({fsm:.2}) must clearly beat SUD ({sud:.2}) at 78%+ accuracy"
    );
}

#[test]
fn fsm_confidence_converges_with_sud_at_extreme_accuracy() {
    // §6.4: "our automatically generated FSM predictors converge with the
    // saturating up-down counter results for extremely high accuracy
    // requirements" — both families end up with low coverage there.
    let panel = run_panel(
        ValueBenchmark::Groff,
        &Fig2Config {
            trace_len: 30_000,
            histories: vec![8],
            thresholds: vec![0.99],
            cache_file: None,
        },
    );
    if let Some(extreme) = panel.fsm[&8].first() {
        if let Some(cov) = extreme.coverage {
            assert!(
                cov < 0.6,
                "extreme-threshold FSM coverage should collapse, got {cov:.2}"
            );
        }
    }
}

#[test]
fn recovery_model_shapes_the_operating_point() {
    // §6.2: squash recovery needs "a very accurate SUD counter ... but
    // this resulted in low coverage", while re-execution recovery "did
    // not have to be as accurate" and favours coverage. The same FSM
    // family reproduces that: the conservative design wins under squash,
    // the liberal one under re-execution.
    let train = ValueBenchmark::Gcc.trace(Input::TRAIN, 30_000);
    let eval = ValueBenchmark::Gcc.trace(Input::EVAL, 30_000);

    let run_at = |threshold: f64| {
        let model = per_entry_correctness_model(&mut TwoDeltaStride::paper_default(), &train, 8);
        let design = Designer::new(8)
            .prob_threshold(threshold)
            .design_from_model(model)
            .expect("non-empty model");
        let mut table = TwoDeltaStride::paper_default();
        let mut est = FsmConfidence::per_entry(table.len(), design.into_fsm(), "rc");
        run_confidence(&mut table, &mut est, &eval)
    };
    let liberal = run_at(0.5);
    let conservative = run_at(0.95);
    // Sanity: the two operating points are genuinely different.
    assert!(conservative.confident < liberal.confident);

    let squash = RecoveryModel::squash();
    let reexec = RecoveryModel::reexecute();
    assert!(
        squash.net_cycles(&conservative) > squash.net_cycles(&liberal),
        "squash: conservative {} vs liberal {}",
        squash.net_cycles(&conservative),
        squash.net_cycles(&liberal)
    );
    assert!(
        reexec.net_cycles(&liberal) > reexec.net_cycles(&conservative),
        "re-exec: liberal {} vs conservative {}",
        reexec.net_cycles(&liberal),
        reexec.net_cycles(&conservative)
    );
}
