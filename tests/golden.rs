//! Golden regression corpus: canned traces whose designed machines are
//! pinned exactly (cover and transition table). Any behavioural drift in
//! the Markov model, minimizer, automata pipeline or start-state
//! reduction shows up here as a diff against a readable machine table.

use fsmgen_suite::automata::machine_to_table;
use fsmgen_suite::core::Designer;
use fsmgen_suite::traces::BitTrace;

fn design(history: usize, trace: &str) -> (String, String) {
    let t: BitTrace = trace.parse().expect("valid trace literal");
    let d = Designer::new(history)
        .dont_care_fraction(0.0)
        .design_from_trace(&t)
        .expect("trace long enough");
    (d.cover().to_string(), machine_to_table(d.fsm()))
}

#[test]
fn golden_paper_trace() {
    let (cover, table) = design(2, "0000 1000 1011 1101 1110 1111");
    assert_eq!(cover, "-1 + 1-");
    assert_eq!(
        table,
        "# fsmgen moore machine\n\
         states 3\n\
         start 0\n\
         0 0 1 0\n\
         1 2 1 1\n\
         2 0 1 1\n"
    );
}

#[test]
fn golden_alternating() {
    // Alternation: predict the opposite of the last outcome — the 2-state
    // flip-flop machine.
    let (cover, table) = design(2, &"01".repeat(40));
    assert_eq!(cover, "-0");
    assert_eq!(
        table,
        "# fsmgen moore machine\n\
         states 2\n\
         start 0\n\
         0 1 0 0\n\
         1 1 0 1\n"
    );
}

#[test]
fn golden_period3() {
    // Period-3 "110": the minimizer prefers the single-cube cover 1--
    // ("outcome three back"), which compiles to the 8-state 3-bit shift
    // register. (A two-cube cover over recent bits would give a smaller
    // machine — cover minimality is not machine minimality; see DESIGN.md.)
    let (cover, table) = design(3, &"110".repeat(40));
    assert_eq!(cover, "1--");
    assert!(table.starts_with("# fsmgen moore machine\nstates 8\n"));
}

#[test]
fn golden_constant() {
    let (cover, table) = design(2, &"1".repeat(40));
    assert_eq!(cover, "--", "universal cube: always predict 1");
    assert_eq!(
        table,
        "# fsmgen moore machine\n\
         states 1\n\
         start 0\n\
         0 0 0 1\n"
    );
}

#[test]
fn golden_figure_machines() {
    use fsmgen_suite::experiments::figures::{figure6, figure7};
    assert_eq!(
        machine_to_table(&figure6()),
        "# fsmgen moore machine\n\
         states 4\n\
         start 0\n\
         0 0 1 0\n\
         1 2 3 0\n\
         2 0 1 1\n\
         3 2 3 1\n"
    );
    // Figure 7 is larger; pin its header and a structural invariant
    // instead of all 11 rows.
    let t7 = machine_to_table(&figure7());
    assert!(t7.starts_with("# fsmgen moore machine\nstates 11\n"));
    assert_eq!(t7.lines().count(), 3 + 11);
}
