//! # fsmgen-suite
//!
//! Umbrella crate for the `fsmgen` reproduction of Sherwood & Calder,
//! *"Automated Design of Finite State Machine Predictors"* (ISCA 2001).
//! It re-exports every workspace crate under one roof so examples and
//! integration tests can exercise the whole system; library users should
//! normally depend on the individual crates.
//!
//! * [`core`] — the design flow: trace → Markov model → pattern sets →
//!   minimized cover → regex → Moore predictor.
//! * [`logicmin`] — two-level logic minimization (Quine–McCluskey and an
//!   Espresso-style heuristic).
//! * [`automata`] — regexes, NFA/DFA construction, Hopcroft minimization,
//!   start-state reduction.
//! * [`synth`] — VHDL emission, state encodings, area estimation.
//! * [`traces`] — bit traces, histories, branch/load event streams.
//! * [`workloads`] — synthetic benchmark models (see DESIGN.md for the
//!   substitution rationale).
//! * [`bpred`] — branch predictors: XScale BTB, gshare, LGC, the custom
//!   FSM architecture and its trainer.
//! * [`vpred`] — two-delta stride value prediction with SUD / FSM
//!   confidence estimation.
//! * [`experiments`] — drivers regenerating every figure of the paper.
//! * [`evolve`] — the Emer & Gloy-style genetic-search baseline (§3.2).
//! * [`cache`] — cache model with FSM-guided cache exclusion (§2.4).
//! * [`farm`] — the parallel, cache-aware batch design engine.
//! * [`obs`] — stage-level tracing and the unified observability schema.
//! * [`serve`] — the TCP design service fronting a shared farm.
//!
//! # Examples
//!
//! ```
//! use fsmgen_suite::core::Designer;
//! use fsmgen_suite::traces::BitTrace;
//!
//! let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
//! let design = Designer::new(2).design_from_trace(&t)?;
//! assert_eq!(design.fsm().num_states(), 3);
//! # Ok::<(), fsmgen_suite::core::DesignError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fsmgen as core;
pub use fsmgen_automata as automata;
pub use fsmgen_bpred as bpred;
pub use fsmgen_cache as cache;
pub use fsmgen_evolve as evolve;
pub use fsmgen_experiments as experiments;
pub use fsmgen_farm as farm;
pub use fsmgen_logicmin as logicmin;
pub use fsmgen_obs as obs;
pub use fsmgen_serve as serve;
pub use fsmgen_synth as synth;
pub use fsmgen_traces as traces;
pub use fsmgen_vpred as vpred;
pub use fsmgen_workloads as workloads;
