//! Espresso-style heuristic two-level minimization.
//!
//! This is the scalable path of the minimizer, standing in for the Espresso
//! tool the paper uses (Rudell & Sangiovanni-Vincentelli). It runs the
//! classic EXPAND → IRREDUNDANT → REDUCE loop over an explicit off-set:
//!
//! * **EXPAND** enlarges each cube literal-by-literal as long as it stays
//!   clear of the off-set, preferring removals that absorb more
//!   still-uncovered on-minterms;
//! * **IRREDUNDANT** drops cubes whose on-minterms are fully covered by the
//!   rest of the cover;
//! * **REDUCE** shrinks each cube to the supercube of the on-minterms only
//!   it covers, giving the next EXPAND pass freedom to grow in a different
//!   direction.
//!
//! The result is always a correct cover (verified against the spec by unit
//! and property tests) and in practice matches the exact Quine–McCluskey
//! cost on the history functions this project generates.

use crate::budget::{BudgetError, MinimizeBudget};
use crate::cover::Cover;
use crate::cube::Cube;
use crate::spec::FunctionSpec;
use std::collections::BTreeSet;

/// Upper bound on EXPAND/IRREDUNDANT/REDUCE iterations; the loop also stops
/// as soon as an iteration fails to improve the cover cost.
const MAX_PASSES: usize = 6;

/// Minimizes `spec` heuristically; returns a sum-of-products [`Cover`] of
/// the on-set that avoids the off-set.
///
/// For an empty on-set, returns the empty (constant-false) cover.
#[must_use]
pub fn minimize_heuristic(spec: &FunctionSpec) -> Cover {
    match minimize_heuristic_checked(spec, &MinimizeBudget::unlimited()) {
        Ok(cover) => cover,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`minimize_heuristic`] under a [`MinimizeBudget`].
///
/// `max_minterms` bounds the explicit on+off sets checked before any work
/// starts. The deadline is honoured between passes: an expiry breaks out of
/// the improvement loop early (before the next REDUCE, so the trailing
/// EXPAND/IRREDUNDANT pair still leaves a correct cover) rather than
/// failing. `max_primes`/`max_cover_nodes` do not apply to this algorithm —
/// its cube count only shrinks from the initial on-set.
///
/// # Errors
///
/// Returns a [`BudgetError`] naming the violated limit.
pub fn minimize_heuristic_checked(
    spec: &FunctionSpec,
    budget: &MinimizeBudget,
) -> Result<Cover, BudgetError> {
    let width = spec.width();
    let on: Vec<u32> = spec.on_set().iter().copied().collect();
    if on.is_empty() {
        return Ok(Cover::new(width));
    }
    let explicit = on.len() + spec.off_set().len();
    if let Some(limit) = budget.max_minterms {
        if explicit > limit {
            return Err(BudgetError::Minterms {
                required: explicit,
                limit,
            });
        }
    }
    let off: Vec<Cube> = spec
        .off_set()
        .iter()
        .map(|&m| Cube::from_minterm(m, width))
        .collect();

    let mut cubes: Vec<Cube> = on.iter().map(|&m| Cube::from_minterm(m, width)).collect();
    let mut best_cost = cost_of(&cubes);

    for _ in 0..MAX_PASSES {
        expand(&mut cubes, &on, &off, width);
        irredundant(&mut cubes, &on);
        let cost = cost_of(&cubes);
        // Deadline expiry is a stop-improving signal, not a failure: the
        // cover is correct here (REDUCE is what transiently breaks it, and
        // it only runs when we continue the loop).
        if cost >= best_cost || budget.deadline_expired() {
            break;
        }
        best_cost = cost;
        reduce(&mut cubes, &on, width);
    }
    // The loop may exit right after a REDUCE; re-expand so every cube is
    // maximal, then drop redundancy once more.
    expand(&mut cubes, &on, &off, width);
    irredundant(&mut cubes, &on);

    cubes.sort_unstable();
    cubes.dedup();
    fsmgen_obs::counter("minimize", "espresso_cubes", cubes.len() as u64);
    Ok(Cover::from_cubes(width, cubes))
}

fn cost_of(cubes: &[Cube]) -> (usize, u32) {
    (cubes.len(), cubes.iter().map(Cube::literal_count).sum())
}

/// Enlarges each cube maximally against the off-set.
fn expand(cubes: &mut Vec<Cube>, on: &[u32], off: &[Cube], width: usize) {
    // Process small cubes first: they benefit most and their expansion can
    // absorb other cubes entirely.
    cubes.sort_unstable_by_key(|c| std::cmp::Reverse(c.literal_count()));
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    let snapshot = cubes.clone();
    for (i, &cube) in snapshot.iter().enumerate() {
        // Skip cubes already absorbed by an expanded predecessor.
        if result.iter().any(|r| r.covers_cube(&cube)) {
            continue;
        }
        let mut cur = cube;
        loop {
            // Candidate literal removals that stay clear of the off-set.
            let mut best: Option<(usize, usize)> = None; // (gain, var)
            for var in 0..width {
                if cur.var(var).is_none() {
                    continue;
                }
                let grown = cur.without_var(var);
                if off.iter().any(|o| grown.intersects(o)) {
                    continue;
                }
                // Gain: how many on-minterms not covered by the current cube
                // set would the grown cube absorb?
                let gain = on
                    .iter()
                    .filter(|&&m| {
                        grown.covers_minterm(m)
                            && !cur.covers_minterm(m)
                            && !result.iter().any(|r| r.covers_minterm(m))
                            && !snapshot[i + 1..].iter().any(|r| r.covers_minterm(m))
                    })
                    .count();
                let better = match best {
                    None => true,
                    Some((bg, bv)) => gain > bg || (gain == bg && var < bv),
                };
                if better {
                    best = Some((gain, var));
                }
            }
            match best {
                Some((_, var)) => cur = cur.without_var(var),
                None => break,
            }
        }
        result.push(cur);
    }
    *cubes = result;
}

/// Removes cubes whose on-minterm coverage is redundant given the rest.
fn irredundant(cubes: &mut Vec<Cube>, on: &[u32]) {
    // Iterate until stable: repeatedly drop the cube with the fewest
    // uniquely covered minterms when that count is zero.
    loop {
        let mut removed = false;
        let mut best_victim: Option<usize> = None;
        for i in 0..cubes.len() {
            let unique = on.iter().any(|&m| {
                cubes[i].covers_minterm(m)
                    && !cubes
                        .iter()
                        .enumerate()
                        .any(|(j, c)| j != i && c.covers_minterm(m))
            });
            if !unique {
                // Prefer dropping the cube with more literals (cheaper win).
                let better = match best_victim {
                    None => true,
                    Some(b) => cubes[i].literal_count() > cubes[b].literal_count(),
                };
                if better {
                    best_victim = Some(i);
                }
            }
        }
        if let Some(i) = best_victim {
            cubes.remove(i);
            removed = true;
        }
        if !removed {
            break;
        }
    }
}

/// Shrinks each cube to the supercube of the on-minterms only it covers.
fn reduce(cubes: &mut [Cube], on: &[u32], width: usize) {
    for i in 0..cubes.len() {
        let essential: Vec<u32> = on
            .iter()
            .copied()
            .filter(|&m| {
                cubes[i].covers_minterm(m)
                    && !cubes
                        .iter()
                        .enumerate()
                        .any(|(j, c)| j != i && c.covers_minterm(m))
            })
            .collect();
        if essential.is_empty() {
            continue; // irredundant() will deal with it
        }
        let mut shrunk = Cube::from_minterm(essential[0], width);
        for &m in &essential[1..] {
            shrunk = shrunk.supercube(&Cube::from_minterm(m, width));
        }
        cubes[i] = shrunk;
    }
}

/// Verifies that `cover` is a correct implementation of `spec`: every
/// on-minterm covered, no off-minterm covered.
///
/// Returns the first violating minterm as `Err((minterm, expected_on))`.
/// Cost is proportional to the on/off set sizes (not `2^width`).
///
/// # Errors
///
/// Returns the offending minterm and whether it was supposed to be covered.
pub fn verify_cover(spec: &FunctionSpec, cover: &Cover) -> Result<(), (u32, bool)> {
    for &m in spec.on_set() {
        if !cover.covers_minterm(m) {
            return Err((m, true));
        }
    }
    for &m in spec.off_set() {
        if cover.covers_minterm(m) {
            return Err((m, false));
        }
    }
    Ok(())
}

/// The set of on-minterms of `spec` (convenience for callers building
/// regression comparisons between the two minimizers).
#[must_use]
pub fn on_minterms(spec: &FunctionSpec) -> BTreeSet<u32> {
    spec.on_set().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qm::minimize_exact;

    fn check(spec: &FunctionSpec) -> Cover {
        let cover = minimize_heuristic(spec);
        verify_cover(spec, &cover).expect("heuristic cover must satisfy the spec");
        cover
    }

    #[test]
    fn paper_running_example_matches_exact() {
        let spec = FunctionSpec::from_sets(2, [0b01, 0b10, 0b11], [0b00]).unwrap();
        let cover = check(&spec);
        let exact = minimize_exact(&spec);
        assert_eq!(cover.len(), exact.len());
        assert_eq!(cover.literal_count(), exact.literal_count());
    }

    #[test]
    fn empty_on_set() {
        let spec = FunctionSpec::from_sets(4, [], [1, 2, 3]).unwrap();
        assert!(minimize_heuristic(&spec).is_empty());
    }

    #[test]
    fn single_minterm() {
        let spec = FunctionSpec::from_sets(3, [0b101], (0..8).filter(|&m| m != 0b101)).unwrap();
        let cover = check(&spec);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.literal_count(), 3);
    }

    #[test]
    fn dont_cares_exploited() {
        let spec = FunctionSpec::from_sets(4, [0b1111], [0b0000]).unwrap();
        let cover = check(&spec);
        assert_eq!(cover.len(), 1);
        assert_eq!(
            cover.literal_count(),
            1,
            "a single literal separates 1111 from 0000: {cover}"
        );
    }

    #[test]
    fn parity_is_incompressible() {
        let on: Vec<u32> = (0u32..16).filter(|m| m.count_ones() % 2 == 1).collect();
        let off: Vec<u32> = (0u32..16).filter(|m| m.count_ones() % 2 == 0).collect();
        let spec = FunctionSpec::from_sets(4, on, off).unwrap();
        let cover = check(&spec);
        assert_eq!(cover.len(), 8);
    }

    #[test]
    fn matches_exact_on_dense_random_functions() {
        // Deterministic pseudo-random specs; heuristic must stay within a
        // small factor of exact cube count (and is usually equal).
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for trial in 0..30 {
            let width = 3 + (trial % 4); // 3..=6
            let mut on = Vec::new();
            let mut off = Vec::new();
            for m in 0..(1u32 << width) {
                match next() % 3 {
                    0 => on.push(m),
                    1 => off.push(m),
                    _ => {}
                }
            }
            let spec = FunctionSpec::from_sets(width, on, off).unwrap();
            let heur = check(&spec);
            let exact = minimize_exact(&spec);
            verify_cover(&spec, &exact).expect("exact cover must satisfy the spec");
            assert!(
                heur.len() <= exact.len() + 2,
                "width {width} trial {trial}: heuristic {} vs exact {}",
                heur.len(),
                exact.len()
            );
        }
    }

    #[test]
    fn minterm_budget_rejects_oversized_specs() {
        let on: Vec<u32> = (0..8).collect();
        let off: Vec<u32> = (8..16).collect();
        let spec = FunctionSpec::from_sets(4, on, off).unwrap();
        let budget = MinimizeBudget {
            max_minterms: Some(10),
            ..MinimizeBudget::default()
        };
        assert_eq!(
            minimize_heuristic_checked(&spec, &budget),
            Err(BudgetError::Minterms {
                required: 16,
                limit: 10
            })
        );
    }

    #[test]
    fn expired_deadline_still_returns_a_correct_cover() {
        use std::time::{Duration, Instant};
        let on: Vec<u32> = (0u32..16).filter(|m| m.count_ones() % 2 == 1).collect();
        let off: Vec<u32> = (0u32..16).filter(|m| m.count_ones() % 2 == 0).collect();
        let spec = FunctionSpec::from_sets(4, on, off).unwrap();
        let budget = MinimizeBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..MinimizeBudget::default()
        };
        let cover = minimize_heuristic_checked(&spec, &budget).unwrap();
        verify_cover(&spec, &cover).expect("deadline-cut cover must still satisfy the spec");
    }

    #[test]
    fn verify_cover_reports_violations() {
        let spec = FunctionSpec::from_sets(2, [0b11], [0b00]).unwrap();
        let empty = Cover::new(2);
        assert_eq!(verify_cover(&spec, &empty), Err((0b11, true)));
        let mut everything = Cover::new(2);
        everything.push(Cube::universe());
        assert_eq!(verify_cover(&spec, &everything), Err((0b00, false)));
    }
}
