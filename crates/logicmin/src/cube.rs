//! Three-valued cubes over the variables of a boolean function.
//!
//! A [`Cube`] is a product term over up to [`MAX_VARS`] boolean variables in
//! which every variable is either required to be `0`, required to be `1`, or
//! is a *don't care* (written `-`). Cubes are the unit of currency of the
//! whole minimizer: a sum-of-products cover is a set of cubes, and the FSM
//! design flow turns each cube into one alternative of a regular expression.

use std::fmt;
use std::str::FromStr;

/// Maximum number of variables a [`Cube`] can range over.
///
/// The paper never needs histories beyond length 10 ("we did not see the
/// need to go beyond N = 10"), so a 32-variable budget leaves generous
/// headroom while keeping cubes two machine words.
pub const MAX_VARS: usize = 32;

/// Error returned when parsing a [`Cube`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    kind: ParseCubeErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseCubeErrorKind {
    Empty,
    TooWide(usize),
    BadChar(char),
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseCubeErrorKind::Empty => write!(f, "cube string is empty"),
            ParseCubeErrorKind::TooWide(w) => {
                write!(f, "cube has {w} variables, the maximum is {MAX_VARS}")
            }
            ParseCubeErrorKind::BadChar(c) => {
                write!(f, "invalid cube character {c:?}, expected '0', '1' or '-'")
            }
        }
    }
}

impl std::error::Error for ParseCubeError {}

/// A product term over boolean variables: each variable is `0`, `1` or `-`.
///
/// Internally a cube is a pair of bitmasks: `mask` has bit *i* set when
/// variable *i* is cared about (not a don't-care), and `bits` holds the
/// required value for cared variables (and `0` for don't-cares, an invariant
/// maintained by every constructor).
///
/// Variable *i* corresponds to bit *i* of a minterm. The textual form puts
/// variable `width-1` first, matching the usual truth-table convention, so
/// `"10-"` over three variables means `x2=1, x1=0, x0=don't care`.
///
/// # Examples
///
/// ```
/// use fsmgen_logicmin::Cube;
///
/// let cube: Cube = "1-0".parse()?;
/// assert!(cube.covers_minterm(0b100));
/// assert!(cube.covers_minterm(0b110));
/// assert!(!cube.covers_minterm(0b101));
/// assert_eq!(cube.literal_count(), 2);
/// # Ok::<(), fsmgen_logicmin::ParseCubeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    mask: u32,
    bits: u32,
}

impl Cube {
    /// Creates a cube from raw `mask`/`bits` words.
    ///
    /// Bits of `bits` outside `mask` are cleared so that equal cubes compare
    /// equal regardless of how they were produced.
    #[must_use]
    pub fn new(mask: u32, bits: u32) -> Self {
        Cube {
            mask,
            bits: bits & mask,
        }
    }

    /// Creates the cube that covers exactly the single minterm `minterm`
    /// over `width` variables.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`MAX_VARS`].
    #[must_use]
    pub fn from_minterm(minterm: u32, width: usize) -> Self {
        assert!(width <= MAX_VARS, "width {width} exceeds MAX_VARS");
        let mask = width_mask(width);
        Cube {
            mask,
            bits: minterm & mask,
        }
    }

    /// Creates the universal cube (all don't-cares) over any width.
    #[must_use]
    pub fn universe() -> Self {
        Cube { mask: 0, bits: 0 }
    }

    /// The care mask: bit *i* set when variable *i* is not a don't-care.
    #[must_use]
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// The value bits for cared variables (zero elsewhere).
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of literals (cared variables) in the product term.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// `true` when the cube covers the given minterm.
    #[must_use]
    pub fn covers_minterm(&self, minterm: u32) -> bool {
        (minterm & self.mask) == self.bits
    }

    /// `true` when every minterm of `other` is also covered by `self`.
    #[must_use]
    pub fn covers_cube(&self, other: &Cube) -> bool {
        // self's cared variables must be a subset of other's cared
        // variables, with matching values.
        (self.mask & !other.mask) == 0 && (other.bits & self.mask) == self.bits
    }

    /// `true` when the two cubes share at least one minterm.
    #[must_use]
    pub fn intersects(&self, other: &Cube) -> bool {
        let common = self.mask & other.mask;
        (self.bits & common) == (other.bits & common)
    }

    /// The intersection of two cubes, or `None` when they are disjoint.
    #[must_use]
    pub fn intersection(&self, other: &Cube) -> Option<Cube> {
        if self.intersects(other) {
            Some(Cube {
                mask: self.mask | other.mask,
                bits: self.bits | other.bits,
            })
        } else {
            None
        }
    }

    /// The smallest cube containing both inputs (their supercube).
    #[must_use]
    pub fn supercube(&self, other: &Cube) -> Cube {
        let agree = self.mask & other.mask & !(self.bits ^ other.bits);
        Cube {
            mask: agree,
            bits: self.bits & agree,
        }
    }

    /// Attempts the Quine–McCluskey merge of two cubes: if the cubes care
    /// about exactly the same variables and differ in exactly one of them,
    /// returns the merged cube with that variable made a don't-care.
    #[must_use]
    pub fn merge(&self, other: &Cube) -> Option<Cube> {
        if self.mask != other.mask {
            return None;
        }
        let diff = self.bits ^ other.bits;
        if diff.count_ones() == 1 {
            let mask = self.mask & !diff;
            Some(Cube {
                mask,
                bits: self.bits & mask,
            })
        } else {
            None
        }
    }

    /// Returns the cube with variable `var` forced to a don't-care.
    #[must_use]
    pub fn without_var(&self, var: usize) -> Cube {
        let clear = !(1u32 << var);
        Cube {
            mask: self.mask & clear,
            bits: self.bits & clear,
        }
    }

    /// Returns the cube with variable `var` required to equal `value`.
    #[must_use]
    pub fn with_var(&self, var: usize, value: bool) -> Cube {
        let bit = 1u32 << var;
        Cube {
            mask: self.mask | bit,
            bits: if value {
                self.bits | bit
            } else {
                self.bits & !bit
            },
        }
    }

    /// The literal for variable `var`: `Some(true)` / `Some(false)` when the
    /// cube requires `1` / `0`, `None` for a don't-care.
    #[must_use]
    pub fn var(&self, var: usize) -> Option<bool> {
        if self.mask & (1 << var) == 0 {
            None
        } else {
            Some(self.bits & (1 << var) != 0)
        }
    }

    /// Number of minterms the cube covers over `width` variables.
    #[must_use]
    pub fn minterm_count(&self, width: usize) -> u64 {
        let free = width as u32 - (self.mask & width_mask(width)).count_ones();
        1u64 << free
    }

    /// Iterates over all minterms covered by this cube over `width` variables.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds [`MAX_VARS`].
    pub fn minterms(&self, width: usize) -> Minterms {
        assert!(width <= MAX_VARS, "width {width} exceeds MAX_VARS");
        let wmask = width_mask(width);
        let free_mask = wmask & !self.mask;
        Minterms {
            base: self.bits & wmask,
            free_mask,
            next: Some(0),
        }
    }

    /// Renders the cube over `width` variables, variable `width-1` first.
    #[must_use]
    pub fn display(&self, width: usize) -> String {
        (0..width)
            .rev()
            .map(|i| match self.var(i) {
                Some(true) => '1',
                Some(false) => '0',
                None => '-',
            })
            .collect()
    }
}

impl FromStr for Cube {
    type Err = ParseCubeError;

    /// Parses a cube such as `"1-0"`; the first character is the
    /// highest-numbered variable.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseCubeError {
                kind: ParseCubeErrorKind::Empty,
            });
        }
        if s.len() > MAX_VARS {
            return Err(ParseCubeError {
                kind: ParseCubeErrorKind::TooWide(s.len()),
            });
        }
        let mut cube = Cube::universe();
        let width = s.len();
        for (pos, c) in s.chars().enumerate() {
            let var = width - 1 - pos;
            match c {
                '0' => cube = cube.with_var(var, false),
                '1' => cube = cube.with_var(var, true),
                '-' | 'x' | 'X' => {}
                other => {
                    return Err(ParseCubeError {
                        kind: ParseCubeErrorKind::BadChar(other),
                    })
                }
            }
        }
        Ok(cube)
    }
}

impl fmt::Display for Cube {
    /// Displays the cube over the smallest width that includes every cared
    /// variable (at least one variable).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = (MAX_VARS as u32 - self.mask.leading_zeros()).max(1) as usize;
        f.write_str(&self.display(width))
    }
}

/// Iterator over the minterms of a [`Cube`], produced by [`Cube::minterms`].
#[derive(Debug, Clone)]
pub struct Minterms {
    base: u32,
    free_mask: u32,
    /// Next subset of `free_mask` to emit; `None` when exhausted.
    next: Option<u32>,
}

impl Iterator for Minterms {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let cur = self.next?;
        // Standard trick for enumerating subsets of a mask in order.
        let item = self.base | cur;
        if cur == self.free_mask {
            self.next = None;
        } else {
            self.next = Some((cur.wrapping_sub(self.free_mask)) & self.free_mask);
        }
        Some(item)
    }
}

/// Bitmask with the low `width` bits set.
#[must_use]
pub(crate) fn width_mask(width: usize) -> u32 {
    debug_assert!(width <= MAX_VARS);
    if width == MAX_VARS {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-", "10-", "1-0-", "111", "0-0-0"] {
            let c: Cube = s.parse().unwrap();
            assert_eq!(c.display(s.len()), s);
        }
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("".parse::<Cube>().is_err());
        assert!("012".parse::<Cube>().is_err());
        assert!("1".repeat(MAX_VARS + 1).parse::<Cube>().is_err());
    }

    #[test]
    fn minterm_cover() {
        let c: Cube = "1-".parse().unwrap();
        assert!(c.covers_minterm(0b10));
        assert!(c.covers_minterm(0b11));
        assert!(!c.covers_minterm(0b00));
        assert!(!c.covers_minterm(0b01));
    }

    #[test]
    fn containment() {
        let big: Cube = "1-".parse().unwrap();
        let small: Cube = "10".parse().unwrap();
        assert!(big.covers_cube(&small));
        assert!(!small.covers_cube(&big));
        assert!(big.covers_cube(&big));
    }

    #[test]
    fn intersection_and_disjoint() {
        let a: Cube = "1-".parse().unwrap();
        let b: Cube = "-0".parse().unwrap();
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.display(2), "10");
        let c: Cube = "0-".parse().unwrap();
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
    }

    #[test]
    fn supercube_is_smallest_container() {
        let a: Cube = "10".parse().unwrap();
        let b: Cube = "11".parse().unwrap();
        assert_eq!(a.supercube(&b).display(2), "1-");
        let c: Cube = "01".parse().unwrap();
        assert_eq!(a.supercube(&c).display(2), "--");
    }

    #[test]
    fn qm_merge() {
        let a: Cube = "10".parse().unwrap();
        let b: Cube = "11".parse().unwrap();
        assert_eq!(a.merge(&b).unwrap().display(2), "1-");
        let c: Cube = "01".parse().unwrap();
        assert!(a.merge(&c).is_none()); // differ in two bits
        let d: Cube = "1-".parse().unwrap();
        assert!(a.merge(&d).is_none()); // different masks
    }

    #[test]
    fn minterms_enumeration() {
        let c: Cube = "1-".parse().unwrap();
        let mut ms: Vec<u32> = c.minterms(2).collect();
        ms.sort_unstable();
        assert_eq!(ms, vec![0b10, 0b11]);
        assert_eq!(c.minterm_count(2), 2);

        let u = Cube::universe();
        assert_eq!(u.minterms(3).count(), 8);
        assert_eq!(u.minterm_count(3), 8);
    }

    #[test]
    fn var_access_and_mutation() {
        let c: Cube = "1-0".parse().unwrap();
        assert_eq!(c.var(2), Some(true));
        assert_eq!(c.var(1), None);
        assert_eq!(c.var(0), Some(false));
        assert_eq!(c.without_var(2).display(3), "--0");
        assert_eq!(c.with_var(1, true).display(3), "110");
    }

    #[test]
    fn from_minterm_covers_only_itself() {
        let c = Cube::from_minterm(0b101, 3);
        for m in 0..8 {
            assert_eq!(c.covers_minterm(m), m == 0b101);
        }
    }

    #[test]
    fn display_trait_uses_minimal_width() {
        let c: Cube = "10".parse().unwrap();
        assert_eq!(format!("{c}"), "10");
        let u = Cube::universe();
        assert_eq!(format!("{u}"), "-");
    }
}
