//! Sum-of-products covers: ordered sets of [`Cube`]s with a shared width.

use crate::cube::{width_mask, Cube, MAX_VARS};
use std::fmt;

/// A sum-of-products cover: the OR of a set of [`Cube`]s over `width`
/// variables.
///
/// A cover is the output of minimization and the input to the regular
/// expression builder in the FSM design flow.
///
/// # Examples
///
/// ```
/// use fsmgen_logicmin::{Cover, Cube};
///
/// // The paper's running example: (x 1) ∨ (1 x) over two history bits.
/// let mut cover = Cover::new(2);
/// cover.push("-1".parse::<Cube>()?);
/// cover.push("1-".parse::<Cube>()?);
/// assert!(cover.covers_minterm(0b01));
/// assert!(cover.covers_minterm(0b10));
/// assert!(cover.covers_minterm(0b11));
/// assert!(!cover.covers_minterm(0b00));
/// # Ok::<(), fsmgen_logicmin::ParseCubeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    width: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates an empty cover (the constant-false function) over `width`
    /// variables.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_VARS`].
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(
            width > 0 && width <= MAX_VARS,
            "cover width must be in 1..={MAX_VARS}, got {width}"
        );
        Cover {
            width,
            cubes: Vec::new(),
        }
    }

    /// Creates a cover from existing cubes.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_VARS`].
    #[must_use]
    pub fn from_cubes(width: usize, cubes: Vec<Cube>) -> Self {
        let mut cover = Cover::new(width);
        cover.cubes = cubes;
        cover
    }

    /// Number of variables the cover ranges over.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of the cover, in insertion order.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes (product terms).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// `true` when the cover has no cubes (the constant-false function).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Appends a cube to the cover.
    pub fn push(&mut self, cube: Cube) {
        self.cubes.push(cube);
    }

    /// Total number of literals across all cubes; the secondary cost metric
    /// used when two covers have the same cube count.
    #[must_use]
    pub fn literal_count(&self) -> u32 {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// `true` when at least one cube covers `minterm`.
    #[must_use]
    pub fn covers_minterm(&self, minterm: u32) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(minterm))
    }

    /// `true` when the union of this cover's cubes contains every minterm of
    /// `cube`. Decided by recursive Shannon cofactoring (a tautology check),
    /// so it is exact even when no single cube contains `cube`.
    #[must_use]
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        // Fast path: single-cube containment.
        if self.cubes.iter().any(|c| c.covers_cube(cube)) {
            return true;
        }
        let relevant: Vec<Cube> = self
            .cubes
            .iter()
            .filter(|c| c.intersects(cube))
            .copied()
            .collect();
        covers_rec(&relevant, *cube, self.width)
    }

    /// Iterates over every minterm of the full space, yielding `(minterm,
    /// covered)` pairs. Intended for exhaustive checks in tests; cost is
    /// `O(2^width * len)`.
    pub fn evaluate_all(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        let n = 1u64 << self.width;
        (0..n).map(move |m| {
            let m = m as u32;
            (m, self.covers_minterm(m))
        })
    }

    /// Removes cubes that are single-cube-contained in another cube of the
    /// cover. Keeps the first of two identical cubes.
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        for (i, c) in cubes.iter().enumerate() {
            let contained = cubes.iter().enumerate().any(|(j, other)| {
                if i == j {
                    return false;
                }
                // A strictly larger cube wins; between equals the earlier
                // index wins.
                other.covers_cube(c) && (!c.covers_cube(other) || j < i)
            });
            if !contained {
                kept.push(*c);
            }
        }
        self.cubes = kept;
    }

    /// `true` when the cover is a tautology (covers the whole space).
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        self.covers_cube(&Cube::universe())
    }

    /// `true` when both covers compute the same function, decided
    /// exhaustively. Intended for tests and verification of minimizer
    /// output; cost is `O(2^width * len)`.
    #[must_use]
    pub fn equivalent(&self, other: &Cover) -> bool {
        if self.width != other.width {
            return false;
        }
        let n = 1u64 << self.width;
        (0..n).all(|m| self.covers_minterm(m as u32) == other.covers_minterm(m as u32))
    }

    /// Renders the cover as `term + term + ...` in the truth-table textual
    /// convention (variable `width-1` first in each term).
    #[must_use]
    pub fn display(&self) -> String {
        if self.cubes.is_empty() {
            return "0".to_string();
        }
        self.cubes
            .iter()
            .map(|c| c.display(self.width))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

/// Recursive check that the union of `cubes` covers every minterm of `space`.
fn covers_rec(cubes: &[Cube], space: Cube, width: usize) -> bool {
    if cubes.iter().any(|c| c.covers_cube(&space)) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Pick a splitting variable that is free in `space` but constrained in
    // some cube; if none exists, no single cube covers `space` and every
    // cube either covers it fully or not at all, so the earlier check was
    // decisive.
    let free = width_mask(width) & !space.mask();
    let mut split = None;
    for c in cubes {
        let candidates = c.mask() & free;
        if candidates != 0 {
            split = Some(candidates.trailing_zeros() as usize);
            break;
        }
    }
    let Some(var) = split else {
        return false;
    };
    for value in [false, true] {
        let half = space.with_var(var, value);
        let relevant: Vec<Cube> = cubes
            .iter()
            .filter(|c| c.intersects(&half))
            .copied()
            .collect();
        if !covers_rec(&relevant, half, width) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, terms: &[&str]) -> Cover {
        Cover::from_cubes(width, terms.iter().map(|t| t.parse().unwrap()).collect())
    }

    #[test]
    fn empty_cover_is_false() {
        let c = Cover::new(3);
        assert!(c.is_empty());
        assert!(!c.covers_minterm(0));
        assert!(!c.is_tautology());
        assert_eq!(c.display(), "0");
    }

    #[test]
    fn paper_example_cover() {
        let c = cover(2, &["-1", "1-"]);
        let truth: Vec<bool> = c.evaluate_all().map(|(_, v)| v).collect();
        assert_eq!(truth, vec![false, true, true, true]);
        assert_eq!(c.literal_count(), 2);
    }

    #[test]
    fn multi_cube_containment_needs_tautology_check() {
        // "0-" + "1-" jointly cover "--" though neither alone does.
        let c = cover(2, &["0-", "1-"]);
        assert!(c.covers_cube(&Cube::universe()));
        assert!(c.is_tautology());
    }

    #[test]
    fn covers_cube_negative() {
        let c = cover(2, &["0-"]);
        assert!(!c.covers_cube(&"1-".parse().unwrap()));
        assert!(!c.covers_cube(&Cube::universe()));
        assert!(c.covers_cube(&"00".parse().unwrap()));
    }

    #[test]
    fn three_way_split_tautology() {
        // Classic: a'b' + a'b + a  == 1
        let c = cover(2, &["00", "01", "1-"]);
        assert!(c.is_tautology());
        // Remove one piece, no longer a tautology.
        let c = cover(2, &["00", "1-"]);
        assert!(!c.is_tautology());
    }

    #[test]
    fn remove_contained_keeps_maximal_cubes() {
        let mut c = cover(3, &["101", "1-1", "1-1", "0--"]);
        c.remove_contained();
        assert_eq!(c.len(), 2);
        assert_eq!(c.display(), "1-1 + 0--");
    }

    #[test]
    fn equivalence() {
        let a = cover(2, &["-1", "1-"]);
        let b = cover(2, &["01", "10", "11"]);
        assert!(a.equivalent(&b));
        let c = cover(2, &["-1"]);
        assert!(!a.equivalent(&c));
        let d = cover(3, &["-1-", "1--"]);
        assert!(!a.equivalent(&d)); // different widths
    }

    #[test]
    #[should_panic(expected = "cover width")]
    fn zero_width_rejected() {
        let _ = Cover::new(0);
    }
}
