//! Exact two-level minimization via the Quine–McCluskey procedure.
//!
//! Prime implicants are generated from the on-set plus don't-care set, then
//! a minimum cover of the on-set is selected by essential-prime extraction,
//! dominance reduction and branch-and-bound (falling back to a greedy
//! heuristic only for covering tables too large to solve exactly).

use crate::budget::{BudgetError, MinimizeBudget};
use crate::cover::Cover;
use crate::cube::Cube;
use crate::spec::FunctionSpec;
use std::collections::{BTreeMap, BTreeSet};

/// Residual covering problems with at most this many prime columns are
/// solved exactly by branch-and-bound; larger ones fall back to greedy.
const EXACT_COVER_LIMIT: usize = 24;

/// Generates all prime implicants of `spec` (using don't-cares for merging).
///
/// A prime implicant is a cube that covers only on/don't-care minterms and
/// cannot be enlarged (by dropping a literal) without covering an off
/// minterm.
#[must_use]
pub fn prime_implicants(spec: &FunctionSpec) -> Vec<Cube> {
    match prime_implicants_checked(spec, &MinimizeBudget::unlimited()) {
        Ok(primes) => primes,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`prime_implicants`] with a resource budget: the minterm count is checked
/// arithmetically *before* the `O(2^width)` seed enumeration, and the merge
/// loop aborts as soon as it grows past `max_primes` or the deadline.
///
/// # Errors
///
/// Returns a [`BudgetError`] naming the violated limit.
pub fn prime_implicants_checked(
    spec: &FunctionSpec,
    budget: &MinimizeBudget,
) -> Result<Vec<Cube>, BudgetError> {
    let width = spec.width();
    // Every minterm outside the off-set seeds the merge table (on plus
    // explicit and implicit don't-cares), so the seed count is known without
    // enumerating anything.
    let seeds = ((1u64 << width) - spec.off_set().len() as u64) as usize;
    if let Some(limit) = budget.max_minterms {
        if seeds > limit {
            return Err(BudgetError::Minterms {
                required: seeds,
                limit,
            });
        }
    }
    if let Some(limit) = budget.max_primes {
        if seeds > limit {
            return Err(BudgetError::Primes {
                generated: seeds,
                limit,
            });
        }
    }
    budget.check_deadline("prime seeding")?;

    // Seed with every on and explicit-or-implicit don't-care minterm. Using
    // implicit don't-cares is required for correctness of QM merging.
    let mut current: BTreeSet<Cube> = spec
        .on_set()
        .iter()
        .chain(spec.all_dont_cares().collect::<Vec<_>>().iter())
        .map(|&m| Cube::from_minterm(m, width))
        .collect();

    let mut primes: BTreeSet<Cube> = BTreeSet::new();
    while !current.is_empty() {
        budget.check_deadline("prime merging")?;
        if let Some(limit) = budget.max_primes {
            let alive = primes.len() + current.len();
            if alive > limit {
                return Err(BudgetError::Primes {
                    generated: alive,
                    limit,
                });
            }
        }
        // Group by (mask, ones-count); only cubes in adjacent ones-count
        // groups with identical masks can merge.
        let mut groups: BTreeMap<(u32, u32), Vec<Cube>> = BTreeMap::new();
        for c in &current {
            groups
                .entry((c.mask(), c.bits().count_ones()))
                .or_default()
                .push(*c);
        }
        let mut merged_into_next: BTreeSet<Cube> = BTreeSet::new();
        let mut was_merged: BTreeSet<Cube> = BTreeSet::new();
        for (&(mask, ones), group) in &groups {
            if let Some(next_group) = groups.get(&(mask, ones + 1)) {
                for a in group {
                    for b in next_group {
                        if let Some(m) = a.merge(b) {
                            merged_into_next.insert(m);
                            was_merged.insert(*a);
                            was_merged.insert(*b);
                        }
                    }
                }
            }
        }
        for c in &current {
            if !was_merged.contains(c) {
                primes.insert(*c);
            }
        }
        current = merged_into_next;
    }

    // Keep only primes that cover at least one on minterm: primes covering
    // purely don't-care territory are useless for the cover.
    let primes: Vec<Cube> = primes
        .into_iter()
        .filter(|p| spec.on_set().iter().any(|&m| p.covers_minterm(m)))
        .collect();
    fsmgen_obs::counter("minimize", "qm_seed_minterms", seeds as u64);
    fsmgen_obs::counter("minimize", "qm_primes", primes.len() as u64);
    Ok(primes)
}

/// Minimizes `spec` exactly: returns a minimum-cube (then minimum-literal)
/// sum-of-products [`Cover`] of the on-set that avoids the off-set.
///
/// For an empty on-set, returns the empty (constant-false) cover.
///
/// The covering step is exact for residual tables of up to
/// 24 primes after essential extraction and dominance
/// reduction, which comfortably includes every predictor in the paper;
/// beyond that a deterministic greedy selection is used.
#[must_use]
pub fn minimize_exact(spec: &FunctionSpec) -> Cover {
    match minimize_exact_checked(spec, &MinimizeBudget::unlimited()) {
        Ok(cover) => cover,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`minimize_exact`] under a [`MinimizeBudget`].
///
/// Prime generation respects the minterm/prime/deadline limits; the covering
/// step treats `max_cover_nodes` and the deadline as quality limits only —
/// when exceeded it falls back to the deterministic greedy selection, so a
/// cover that got past prime generation is always returned.
///
/// # Errors
///
/// Returns a [`BudgetError`] naming the violated limit.
pub fn minimize_exact_checked(
    spec: &FunctionSpec,
    budget: &MinimizeBudget,
) -> Result<Cover, BudgetError> {
    let width = spec.width();
    if spec.on_set().is_empty() {
        return Ok(Cover::new(width));
    }
    let primes = prime_implicants_checked(spec, budget)?;
    let chosen = select_cover(&primes, spec.on_set(), budget);
    Ok(Cover::from_cubes(width, chosen))
}

/// Minimizes `spec` while also minimizing the *effective window*: the
/// highest-numbered variable any chosen cube constrains.
///
/// Minimum-cube covers are not unique, and for FSM predictors the choice
/// matters enormously: a cube constraining variable `k` forces the
/// machine to remember `k+1` input bits, so the state count is governed
/// by the largest constrained variable, not the cube count. This variant
/// finds the smallest window `w` such that primes constraining only
/// variables `0..w` (the most recent `w` inputs) still cover the on-set,
/// then selects a minimum cover within that window.
///
/// For an empty on-set, returns the empty (constant-false) cover.
///
/// # Examples
///
/// ```
/// use fsmgen_logicmin::{qm, FunctionSpec};
///
/// // Period-3 behaviour observed at history 3: the plain minimizer picks
/// // the single cube "1--" (three-bit window); the window-aware one finds
/// // a two-cube cover over the last two bits only.
/// let spec = FunctionSpec::from_sets(3, [0b110, 0b101], [0b011])?;
/// assert_eq!(qm::minimize_exact(&spec).display(), "1--");
/// let short = qm::minimize_short_window(&spec);
/// for cube in short.cubes() {
///     assert!(cube.var(2).is_none(), "oldest bit must be unconstrained");
/// }
/// # Ok::<(), fsmgen_logicmin::SpecError>(())
/// ```
#[must_use]
pub fn minimize_short_window(spec: &FunctionSpec) -> Cover {
    match minimize_short_window_checked(spec, &MinimizeBudget::unlimited()) {
        Ok(cover) => cover,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`minimize_short_window`] under a [`MinimizeBudget`].
///
/// Budget semantics match [`minimize_exact_checked`]: hard limits apply to
/// prime generation, while the covering step degrades to greedy selection
/// instead of failing.
///
/// # Errors
///
/// Returns a [`BudgetError`] naming the violated limit.
pub fn minimize_short_window_checked(
    spec: &FunctionSpec,
    budget: &MinimizeBudget,
) -> Result<Cover, BudgetError> {
    let width = spec.width();
    if spec.on_set().is_empty() {
        return Ok(Cover::new(width));
    }
    let primes = prime_implicants_checked(spec, budget)?;
    for window in 1..=width {
        budget.check_deadline("window search")?;
        let mask_limit: u32 = if window >= 32 {
            u32::MAX
        } else {
            (1u32 << window) - 1
        };
        let allowed: Vec<Cube> = primes
            .iter()
            .filter(|p| p.mask() & !mask_limit == 0)
            .copied()
            .collect();
        let covers_all = spec
            .on_set()
            .iter()
            .all(|&m| allowed.iter().any(|p| p.covers_minterm(m)));
        if covers_all {
            return Ok(Cover::from_cubes(
                width,
                select_cover(&allowed, spec.on_set(), budget),
            ));
        }
    }
    // Unreachable: window == width always covers, but keep a safe fallback.
    Ok(Cover::from_cubes(
        width,
        select_cover(&primes, spec.on_set(), budget),
    ))
}

/// Selects a small subset of `primes` covering every minterm in `on`.
fn select_cover(primes: &[Cube], on: &BTreeSet<u32>, budget: &MinimizeBudget) -> Vec<Cube> {
    let minterms: Vec<u32> = on.iter().copied().collect();
    // coverage[p] = bitset (as Vec<u64>) of minterm indices prime p covers.
    let n = minterms.len();
    let words = n.div_ceil(64);
    let coverage: Vec<Vec<u64>> = primes
        .iter()
        .map(|p| {
            let mut bits = vec![0u64; words];
            for (i, &m) in minterms.iter().enumerate() {
                if p.covers_minterm(m) {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
            bits
        })
        .collect();

    let mut uncovered: Vec<u64> = vec![0u64; words];
    for i in 0..n {
        uncovered[i / 64] |= 1 << (i % 64);
    }
    let mut chosen: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = (0..primes.len()).collect();

    loop {
        let mut progress = false;

        // Essential primes: a still-uncovered minterm covered by exactly one
        // active prime forces that prime.
        'minterm: for i in 0..n {
            if uncovered[i / 64] & (1 << (i % 64)) == 0 {
                continue;
            }
            let mut only = None;
            for &p in &active {
                if coverage[p][i / 64] & (1 << (i % 64)) != 0 {
                    if only.is_some() {
                        continue 'minterm;
                    }
                    only = Some(p);
                }
            }
            if let Some(p) = only {
                chosen.push(p);
                for w in 0..words {
                    uncovered[w] &= !coverage[p][w];
                }
                active.retain(|&q| q != p);
                progress = true;
            }
        }

        if uncovered.iter().all(|&w| w == 0) {
            break;
        }

        // Column dominance: drop primes whose remaining coverage is a subset
        // of another active prime's (ties broken toward fewer literals,
        // then lower index, to stay deterministic).
        let rem_cov: Vec<Vec<u64>> = active
            .iter()
            .map(|&p| {
                (0..words)
                    .map(|w| coverage[p][w] & uncovered[w])
                    .collect::<Vec<u64>>()
            })
            .collect();
        let mut keep = vec![true; active.len()];
        for a in 0..active.len() {
            if !keep[a] || rem_cov[a].iter().all(|&w| w == 0) {
                keep[a] = rem_cov[a].iter().any(|&w| w != 0);
                continue;
            }
            for b in 0..active.len() {
                if a == b || !keep[b] {
                    continue;
                }
                let a_subset_b = (0..words).all(|w| rem_cov[a][w] & !rem_cov[b][w] == 0);
                if a_subset_b {
                    let equal = (0..words).all(|w| rem_cov[a][w] == rem_cov[b][w]);
                    let a_cost = primes[active[a]].literal_count();
                    let b_cost = primes[active[b]].literal_count();
                    let dominated = if equal {
                        b_cost < a_cost || (b_cost == a_cost && b < a)
                    } else {
                        b_cost <= a_cost
                    };
                    if dominated {
                        keep[a] = false;
                        progress = true;
                        break;
                    }
                }
            }
        }
        let new_active: Vec<usize> = active
            .iter()
            .zip(&keep)
            .filter_map(|(&p, &k)| k.then_some(p))
            .collect();
        if new_active.len() != active.len() {
            active = new_active;
        }

        if !progress {
            // Cyclic core: solve exactly if small and within budget,
            // otherwise greedily. Budget exhaustion here only degrades the
            // cover quality — the greedy fallback always completes.
            let picks = if active.len() <= EXACT_COVER_LIMIT {
                exact_cover(&active, &coverage, &uncovered, primes, budget)
            } else {
                None
            };
            match picks {
                Some(picks) => chosen.extend(picks),
                None => greedy_cover(&mut chosen, &active, &coverage, &mut uncovered),
            }
            break;
        }
    }

    let mut result: Vec<Cube> = chosen.into_iter().map(|p| primes[p]).collect();
    result.sort_unstable();
    result.dedup();
    result
}

/// Branch-and-bound over subsets of `active`; returns the minimum-cost pick,
/// or `None` when the node budget or deadline was exhausted first (the
/// caller then falls back to greedy selection).
fn exact_cover(
    active: &[usize],
    coverage: &[Vec<u64>],
    uncovered: &[u64],
    primes: &[Cube],
    budget: &MinimizeBudget,
) -> Option<Vec<usize>> {
    struct Ctx<'a> {
        active: &'a [usize],
        coverage: &'a [Vec<u64>],
        primes: &'a [Cube],
        best: Option<(usize, u32, Vec<usize>)>,
        budget: &'a MinimizeBudget,
        nodes: usize,
        aborted: bool,
    }
    /// Deadline polls are amortized over this many branch nodes.
    const DEADLINE_POLL_NODES: usize = 256;
    fn cost(picks: &[usize], primes: &[Cube]) -> (usize, u32) {
        (
            picks.len(),
            picks.iter().map(|&p| primes[p].literal_count()).sum(),
        )
    }
    fn rec(ctx: &mut Ctx<'_>, idx: usize, uncovered: Vec<u64>, picks: Vec<usize>) {
        if ctx.aborted {
            return;
        }
        ctx.nodes += 1;
        if ctx
            .budget
            .max_cover_nodes
            .is_some_and(|limit| ctx.nodes > limit)
            || (ctx.nodes.is_multiple_of(DEADLINE_POLL_NODES) && ctx.budget.deadline_expired())
        {
            ctx.aborted = true;
            return;
        }
        if uncovered.iter().all(|&w| w == 0) {
            let (c, l) = cost(&picks, ctx.primes);
            let better = match &ctx.best {
                None => true,
                Some((bc, bl, _)) => c < *bc || (c == *bc && l < *bl),
            };
            if better {
                ctx.best = Some((c, l, picks));
            }
            return;
        }
        if idx >= ctx.active.len() {
            return;
        }
        if let Some((bc, _, _)) = &ctx.best {
            if picks.len() + 1 > *bc {
                return; // cannot beat the incumbent
            }
        }
        // Branch on the first uncovered minterm: some covering prime at or
        // after idx must be chosen. Simpler: include/exclude active[idx],
        // pruning branches that skip a prime nothing later can replace.
        let p = ctx.active[idx];
        let helps = (0..uncovered.len()).any(|w| ctx.coverage[p][w] & uncovered[w] != 0);
        if helps {
            let mut next_unc = uncovered.clone();
            for (u, c) in next_unc.iter_mut().zip(&ctx.coverage[p]) {
                *u &= !c;
            }
            let mut next_picks = picks.clone();
            next_picks.push(p);
            rec(ctx, idx + 1, next_unc, next_picks);
        }
        // Exclude branch: only viable if the remaining primes can still
        // cover everything.
        let mut remaining_cover = vec![0u64; uncovered.len()];
        for &q in &ctx.active[idx + 1..] {
            for (r, c) in remaining_cover.iter_mut().zip(&ctx.coverage[q]) {
                *r |= c;
            }
        }
        if (0..uncovered.len()).all(|w| uncovered[w] & !remaining_cover[w] == 0) {
            rec(ctx, idx + 1, uncovered, picks);
        }
    }

    let mut ctx = Ctx {
        active,
        coverage,
        primes,
        best: None,
        budget,
        nodes: 0,
        aborted: false,
    };
    rec(&mut ctx, 0, uncovered.to_vec(), Vec::new());
    if ctx.aborted {
        return None;
    }
    Some(ctx.best.map(|(_, _, picks)| picks).unwrap_or_default())
}

/// Deterministic greedy covering for oversized cyclic cores.
fn greedy_cover(
    chosen: &mut Vec<usize>,
    active: &[usize],
    coverage: &[Vec<u64>],
    uncovered: &mut [u64],
) {
    let words = uncovered.len();
    while uncovered.iter().any(|&w| w != 0) {
        let mut best: Option<(usize, u32)> = None; // (prime, gain)
        for &p in active {
            let gain: u32 = (0..words)
                .map(|w| (coverage[p][w] & uncovered[w]).count_ones())
                .sum();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bp, bg)) => gain > bg || (gain == bg && p < bp),
            };
            if better {
                best = Some((p, gain));
            }
        }
        let Some((p, _)) = best else { break };
        chosen.push(p);
        for w in 0..words {
            uncovered[w] &= !coverage[p][w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MintermKind;

    fn verify(spec: &FunctionSpec, cover: &Cover) {
        for m in 0..(1u64 << spec.width()) as u32 {
            match spec.kind(m) {
                MintermKind::On => assert!(cover.covers_minterm(m), "on minterm {m:b} uncovered"),
                MintermKind::Off => {
                    assert!(!cover.covers_minterm(m), "off minterm {m:b} covered")
                }
                MintermKind::DontCare => {}
            }
        }
    }

    #[test]
    fn paper_running_example() {
        // {00 -> 0, 01 -> 1, 10 -> 1, 11 -> 1} minimizes to (x1) + (1x).
        let spec = FunctionSpec::from_sets(2, [0b01, 0b10, 0b11], [0b00]).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.literal_count(), 2);
        let mut terms: Vec<String> = cover.cubes().iter().map(|c| c.display(2)).collect();
        terms.sort();
        assert_eq!(terms, vec!["-1", "1-"]);
    }

    #[test]
    fn empty_on_set_is_constant_false() {
        let spec = FunctionSpec::from_sets(3, [], [0, 1, 2]).unwrap();
        let cover = minimize_exact(&spec);
        assert!(cover.is_empty());
    }

    #[test]
    fn all_on_is_tautology_cube() {
        let spec = FunctionSpec::from_sets(2, [0, 1, 2, 3], []).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.cubes()[0].literal_count(), 0);
    }

    #[test]
    fn dont_cares_enable_larger_cubes() {
        // on = {111}, off = {000}; everything else dc. A single-literal cube
        // like "1--" suffices.
        let spec = FunctionSpec::from_sets(3, [0b111], [0b000]).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.literal_count(), 1);
    }

    #[test]
    fn xor_needs_two_cubes() {
        let spec = FunctionSpec::from_sets(2, [0b01, 0b10], [0b00, 0b11]).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.literal_count(), 4);
    }

    #[test]
    fn three_var_xor_worst_case() {
        let on: Vec<u32> = (0u32..8).filter(|m| m.count_ones() % 2 == 1).collect();
        let off: Vec<u32> = (0u32..8).filter(|m| m.count_ones() % 2 == 0).collect();
        let spec = FunctionSpec::from_sets(3, on, off).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 4); // parity is incompressible
    }

    #[test]
    fn cyclic_covering_problem() {
        // The classic cyclic core example where no prime is essential.
        // f = Σm(0,1,2,5,6,7) over 3 vars.
        let on = [0, 1, 2, 5, 6, 7];
        let off = [3, 4];
        let spec = FunctionSpec::from_sets(3, on, off).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert_eq!(cover.len(), 3, "cyclic core minimum is 3 cubes");
    }

    #[test]
    fn primes_are_maximal() {
        let spec = FunctionSpec::from_sets(3, [0b000, 0b001, 0b011], [0b111, 0b100]).unwrap();
        let primes = prime_implicants(&spec);
        for p in &primes {
            // No prime may be expandable: removing any literal must hit the
            // off-set.
            for var in 0..3 {
                if p.var(var).is_some() {
                    let bigger = p.without_var(var);
                    let hits_off = spec.off_set().iter().any(|&m| bigger.covers_minterm(m));
                    assert!(hits_off, "prime {} expandable at var {var}", p.display(3));
                }
            }
            // And primes must not cover off minterms.
            for &m in spec.off_set() {
                assert!(!p.covers_minterm(m));
            }
        }
    }

    #[test]
    fn minterm_budget_rejects_before_enumeration() {
        // 8 variables, tiny off-set: 256 - 2 = 254 seeds needed.
        let spec = FunctionSpec::from_sets(8, [0b1111_0000], [0, 1]).unwrap();
        let budget = MinimizeBudget {
            max_minterms: Some(100),
            ..MinimizeBudget::default()
        };
        assert_eq!(
            minimize_exact_checked(&spec, &budget),
            Err(BudgetError::Minterms {
                required: 254,
                limit: 100
            })
        );
    }

    #[test]
    fn prime_budget_aborts_merging() {
        let spec = FunctionSpec::from_sets(6, [0b111111], [0]).unwrap();
        let budget = MinimizeBudget {
            max_primes: Some(4),
            ..MinimizeBudget::default()
        };
        assert!(matches!(
            prime_implicants_checked(&spec, &budget),
            Err(BudgetError::Primes { .. })
        ));
    }

    #[test]
    fn cover_node_budget_degrades_to_greedy_but_stays_correct() {
        // Cyclic core with no essentials: a one-node budget forces the
        // greedy fallback, which must still produce a valid cover.
        let spec = FunctionSpec::from_sets(3, [0, 1, 2, 5, 6, 7], [3, 4]).unwrap();
        let budget = MinimizeBudget {
            max_cover_nodes: Some(1),
            ..MinimizeBudget::default()
        };
        let cover = minimize_exact_checked(&spec, &budget).unwrap();
        verify(&spec, &cover);
    }

    #[test]
    fn generous_budget_matches_unlimited() {
        let spec = FunctionSpec::from_sets(3, [0, 1, 2, 5, 6, 7], [3, 4]).unwrap();
        let budget = MinimizeBudget {
            max_minterms: Some(1 << 20),
            max_primes: Some(1 << 20),
            max_cover_nodes: Some(1 << 20),
            deadline: None,
        };
        assert_eq!(
            minimize_exact_checked(&spec, &budget).unwrap(),
            minimize_exact(&spec)
        );
        assert_eq!(
            minimize_short_window_checked(&spec, &budget).unwrap(),
            minimize_short_window(&spec)
        );
    }

    #[test]
    fn expired_deadline_fails_fast() {
        use std::time::{Duration, Instant};
        let spec = FunctionSpec::from_sets(3, [0b111], [0b000]).unwrap();
        let budget = MinimizeBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..MinimizeBudget::default()
        };
        assert!(matches!(
            minimize_exact_checked(&spec, &budget),
            Err(BudgetError::DeadlineExpired { .. })
        ));
    }

    #[test]
    fn wide_sparse_function() {
        // 8 variables, sparse specification like a Markov table would give.
        let on = [0b1111_0000, 0b1111_0001, 0b1111_0011, 0b0000_1111];
        let off = [0b0000_0000, 0b1010_1010, 0b0101_0101];
        let spec = FunctionSpec::from_sets(8, on, off).unwrap();
        let cover = minimize_exact(&spec);
        verify(&spec, &cover);
        assert!(cover.len() <= 2, "sparse spec should compress, got {cover}");
    }
}
