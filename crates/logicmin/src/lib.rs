//! Two-level logic minimization for FSM predictor design.
//!
//! This crate is the reproduction's stand-in for the Espresso tool used in
//! Sherwood & Calder's automated FSM-predictor design flow (ISCA 2001,
//! §4.4 "Pattern Compression"). The flow hands it a truth table whose
//! inputs are branch/value history patterns partitioned into *predict 1*,
//! *predict 0* and *don't care* sets, and receives back a compact
//! sum-of-products cover of the predict-1 set — the cover that is then
//! turned into a regular expression and ultimately a Moore machine.
//!
//! Two minimizers are provided behind one entry point, [`minimize`]:
//!
//! * [`qm::minimize_exact`] — textbook Quine–McCluskey with don't-cares and
//!   an exact (branch-and-bound) covering step; the default for the history
//!   widths the paper uses (N ≤ 10).
//! * [`espresso::minimize_heuristic`] — an Espresso-style
//!   EXPAND/IRREDUNDANT/REDUCE loop that scales past the exact method.
//!
//! # Examples
//!
//! The paper's running example (§4.4): the truth table
//! `{00→0, 01→1, 10→1, 11→1}` compresses to `(x1) ∨ (1x)`:
//!
//! ```
//! use fsmgen_logicmin::{minimize, Algorithm, FunctionSpec};
//!
//! let spec = FunctionSpec::from_sets(2, [0b01, 0b10, 0b11], [0b00])?;
//! let cover = minimize(&spec, Algorithm::Exact);
//! assert_eq!(cover.len(), 2);
//! assert_eq!(cover.literal_count(), 2);
//! # Ok::<(), fsmgen_logicmin::SpecError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
mod cover;
mod cube;
pub mod espresso;
pub mod qm;
mod spec;

pub use budget::{BudgetError, MinimizeBudget};
pub use cover::Cover;
pub use cube::{Cube, Minterms, ParseCubeError, MAX_VARS};
pub use espresso::verify_cover;
pub use spec::{FunctionSpec, MintermKind, SpecError};

/// Selects which minimization engine [`minimize`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Algorithm {
    /// Exact Quine–McCluskey (prime generation + exact covering). The
    /// default, matching the small history widths used by the paper.
    #[default]
    Exact,
    /// Espresso-style EXPAND/IRREDUNDANT/REDUCE heuristic.
    Heuristic,
    /// Exact Quine–McCluskey that additionally minimizes the highest
    /// constrained variable (the machine's effective history window) —
    /// smaller predictors at equal accuracy. An extension beyond the
    /// paper; see [`qm::minimize_short_window`].
    ShortWindow,
    /// Exact for widths up to the given threshold, heuristic beyond.
    Auto {
        /// Largest width still handled exactly.
        exact_up_to: usize,
    },
}

/// Minimizes an incompletely specified function to a sum-of-products cover
/// of its on-set.
///
/// The returned [`Cover`] covers every on-set minterm, avoids every off-set
/// minterm, and makes arbitrary (cost-minimizing) choices on don't-cares —
/// exactly the contract of §4.4 of the paper.
///
/// # Examples
///
/// ```
/// use fsmgen_logicmin::{minimize, Algorithm, FunctionSpec};
///
/// let spec = FunctionSpec::from_sets(3, [0b111, 0b110], [0b000])?;
/// let cover = minimize(&spec, Algorithm::default());
/// assert!(cover.covers_minterm(0b111));
/// assert!(!cover.covers_minterm(0b000));
/// # Ok::<(), fsmgen_logicmin::SpecError>(())
/// ```
#[must_use]
pub fn minimize(spec: &FunctionSpec, algorithm: Algorithm) -> Cover {
    match minimize_checked(spec, algorithm, &MinimizeBudget::unlimited()) {
        Ok(cover) => cover,
        Err(_) => unreachable!("unlimited budgets never abort"),
    }
}

/// [`minimize`] under a [`MinimizeBudget`]: the selected engine aborts with
/// a typed error instead of running past the configured resource limits.
///
/// Budget semantics per engine:
///
/// * exact engines ([`Algorithm::Exact`], [`Algorithm::ShortWindow`], and
///   the exact side of [`Algorithm::Auto`]) enforce `max_minterms` (checked
///   arithmetically before any enumeration), `max_primes` and the deadline
///   as hard limits, while `max_cover_nodes`/deadline exhaustion inside the
///   covering step only degrades the result to a greedy cover;
/// * the heuristic engine enforces `max_minterms` over the explicit on+off
///   sets and treats the deadline as a stop-improving signal.
///
/// An unlimited budget (the default) makes this identical to [`minimize`].
///
/// # Errors
///
/// Returns a [`BudgetError`] naming the violated limit.
pub fn minimize_checked(
    spec: &FunctionSpec,
    algorithm: Algorithm,
    budget: &MinimizeBudget,
) -> Result<Cover, BudgetError> {
    match algorithm {
        Algorithm::Exact => qm::minimize_exact_checked(spec, budget),
        Algorithm::Heuristic => espresso::minimize_heuristic_checked(spec, budget),
        Algorithm::ShortWindow => qm::minimize_short_window_checked(spec, budget),
        Algorithm::Auto { exact_up_to } => {
            if spec.width() <= exact_up_to {
                qm::minimize_exact_checked(spec, budget)
            } else {
                espresso::minimize_heuristic_checked(spec, budget)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_dispatch() {
        let spec = FunctionSpec::from_sets(4, [0b1010], [0b0101]).unwrap();
        let a = minimize(&spec, Algorithm::Auto { exact_up_to: 8 });
        let b = minimize(&spec, Algorithm::Auto { exact_up_to: 2 });
        verify_cover(&spec, &a).unwrap();
        verify_cover(&spec, &b).unwrap();
    }

    #[test]
    fn default_algorithm_is_exact() {
        assert_eq!(Algorithm::default(), Algorithm::Exact);
    }
}
