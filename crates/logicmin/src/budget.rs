//! Resource budgets for logic minimization.
//!
//! Both minimizers have exponential worst cases: Quine–McCluskey seeds its
//! merge table with every on and don't-care minterm (`O(2^width)`) and the
//! covering step branch-and-bounds over cyclic cores. A [`MinimizeBudget`]
//! bounds those blow-ups so a caller — ultimately a design service fed
//! untrusted traces — gets a typed [`BudgetError`] back instead of an
//! unbounded computation. All limits default to "unlimited", so
//! budget-free call sites keep their exact semantics.

use std::fmt;
use std::time::Instant;

/// Resource limits applied by the `*_checked` minimizer entry points.
///
/// A default-constructed budget is unlimited. Limits are checked *before*
/// the corresponding expensive phase runs whenever the cost can be computed
/// up front (minterm enumeration), and incrementally otherwise (prime
/// merging, covering search, wall clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinimizeBudget {
    /// Maximum number of minterms the minimizer may enumerate explicitly.
    /// For exact QM this bounds the seed set (on-set plus all don't-cares,
    /// i.e. `2^width - |off|`); for the heuristic it bounds the explicit
    /// on/off sets.
    pub max_minterms: Option<usize>,
    /// Maximum number of cubes alive in the prime-implicant computation
    /// (generated primes plus the current merge frontier).
    pub max_primes: Option<usize>,
    /// Maximum number of branch-and-bound nodes the exact covering step may
    /// visit (its analogue of Petrick product terms) before falling back to
    /// the deterministic greedy cover. Exceeding this limit degrades the
    /// cover quality but never fails the call.
    pub max_cover_nodes: Option<usize>,
    /// Wall-clock deadline. Exact phases past the deadline abort with
    /// [`BudgetError::DeadlineExpired`]; the covering search instead falls
    /// back to greedy selection.
    pub deadline: Option<Instant>,
}

impl MinimizeBudget {
    /// A budget with every limit disabled.
    #[must_use]
    pub fn unlimited() -> Self {
        MinimizeBudget::default()
    }

    /// Errors with [`BudgetError::DeadlineExpired`] if the deadline passed.
    pub(crate) fn check_deadline(&self, stage: &'static str) -> Result<(), BudgetError> {
        match self.deadline {
            Some(deadline) if Instant::now() > deadline => {
                Err(BudgetError::DeadlineExpired { stage })
            }
            _ => Ok(()),
        }
    }

    /// `true` when the deadline (if any) has passed.
    pub(crate) fn deadline_expired(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() > deadline)
    }
}

/// A minimization was aborted because it would exceed its
/// [`MinimizeBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetError {
    /// The function requires enumerating more minterms than allowed.
    Minterms {
        /// Minterms the minimizer would have to enumerate.
        required: usize,
        /// The configured limit.
        limit: usize,
    },
    /// Prime-implicant generation grew past the allowed cube count.
    Primes {
        /// Cubes alive when the limit was hit.
        generated: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The wall-clock deadline expired inside the named stage.
    DeadlineExpired {
        /// The minimization stage that observed the expiry.
        stage: &'static str,
    },
}

impl fmt::Display for BudgetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetError::Minterms { required, limit } => write!(
                f,
                "minimization needs {required} explicit minterms, budget allows {limit}"
            ),
            BudgetError::Primes { generated, limit } => write!(
                f,
                "prime implicant generation reached {generated} cubes, budget allows {limit}"
            ),
            BudgetError::DeadlineExpired { stage } => {
                write!(f, "minimization deadline expired during {stage}")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn default_is_unlimited() {
        let b = MinimizeBudget::default();
        assert_eq!(b, MinimizeBudget::unlimited());
        assert!(b.max_minterms.is_none());
        assert!(b.check_deadline("test").is_ok());
    }

    #[test]
    fn expired_deadline_is_detected() {
        let b = MinimizeBudget {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..MinimizeBudget::default()
        };
        assert!(b.deadline_expired());
        assert_eq!(
            b.check_deadline("primes"),
            Err(BudgetError::DeadlineExpired { stage: "primes" })
        );
    }

    #[test]
    fn errors_display() {
        let e = BudgetError::Minterms {
            required: 1024,
            limit: 512,
        };
        assert!(e.to_string().contains("1024"));
        let e = BudgetError::Primes {
            generated: 99,
            limit: 64,
        };
        assert!(e.to_string().contains("99"));
    }
}
