//! Incompletely specified boolean functions: on-set, off-set and don't-care
//! set, as produced by the pattern-definition stage of the design flow.

use crate::cube::{width_mask, MAX_VARS};
use std::collections::BTreeSet;
use std::fmt;

/// Classification of one minterm in a [`FunctionSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MintermKind {
    /// The function must output 1 ("predict 1" in the paper).
    On,
    /// The function must output 0 ("predict 0").
    Off,
    /// The output is unconstrained ("don't care").
    DontCare,
}

/// Error produced when building an inconsistent or oversized
/// [`FunctionSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The same minterm was placed in both the on-set and the off-set.
    Conflict {
        /// The offending minterm.
        minterm: u32,
    },
    /// A minterm does not fit in the declared width.
    OutOfRange {
        /// The offending minterm.
        minterm: u32,
        /// The declared width.
        width: usize,
    },
    /// The width is zero or exceeds [`MAX_VARS`].
    BadWidth(usize),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Conflict { minterm } => {
                write!(
                    f,
                    "minterm {minterm:#b} is in both the on-set and the off-set"
                )
            }
            SpecError::OutOfRange { minterm, width } => {
                write!(f, "minterm {minterm:#b} does not fit in width {width}")
            }
            SpecError::BadWidth(w) => {
                write!(f, "width must be in 1..={MAX_VARS}, got {w}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// An incompletely specified single-output boolean function over `width`
/// variables, given by explicit on/off/don't-care minterm sets.
///
/// Minterms never mentioned are implicitly don't-cares; this matches the
/// design flow, where histories that never occur in the trace place no
/// constraint on the predictor.
///
/// # Examples
///
/// ```
/// use fsmgen_logicmin::FunctionSpec;
///
/// // The paper's example: predict 1 for {01, 10, 11}, predict 0 for {00}.
/// let mut spec = FunctionSpec::new(2)?;
/// spec.add_on(0b01)?;
/// spec.add_on(0b10)?;
/// spec.add_on(0b11)?;
/// spec.add_off(0b00)?;
/// assert_eq!(spec.on_set().len(), 3);
/// # Ok::<(), fsmgen_logicmin::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSpec {
    width: usize,
    on: BTreeSet<u32>,
    off: BTreeSet<u32>,
    dc: BTreeSet<u32>,
}

impl FunctionSpec {
    /// Creates an empty spec (everything don't-care) over `width` variables.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::BadWidth`] when `width` is zero or exceeds
    /// [`MAX_VARS`].
    pub fn new(width: usize) -> Result<Self, SpecError> {
        if width == 0 || width > MAX_VARS {
            return Err(SpecError::BadWidth(width));
        }
        Ok(FunctionSpec {
            width,
            on: BTreeSet::new(),
            off: BTreeSet::new(),
            dc: BTreeSet::new(),
        })
    }

    /// Builds a spec from iterators of on and off minterms, with everything
    /// else (explicit or not) a don't-care.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::BadWidth`], [`SpecError::OutOfRange`] or
    /// [`SpecError::Conflict`] under the corresponding conditions.
    pub fn from_sets<I, J>(width: usize, on: I, off: J) -> Result<Self, SpecError>
    where
        I: IntoIterator<Item = u32>,
        J: IntoIterator<Item = u32>,
    {
        let mut spec = FunctionSpec::new(width)?;
        for m in on {
            spec.add_on(m)?;
        }
        for m in off {
            spec.add_off(m)?;
        }
        Ok(spec)
    }

    fn check_range(&self, minterm: u32) -> Result<(), SpecError> {
        if minterm & !width_mask(self.width) != 0 {
            Err(SpecError::OutOfRange {
                minterm,
                width: self.width,
            })
        } else {
            Ok(())
        }
    }

    /// Adds a minterm to the on-set.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Conflict`] if the minterm is already in the
    /// off-set, or [`SpecError::OutOfRange`] if it does not fit the width.
    /// Adding an on minterm that was previously a don't-care upgrades it.
    pub fn add_on(&mut self, minterm: u32) -> Result<(), SpecError> {
        self.check_range(minterm)?;
        if self.off.contains(&minterm) {
            return Err(SpecError::Conflict { minterm });
        }
        self.dc.remove(&minterm);
        self.on.insert(minterm);
        Ok(())
    }

    /// Adds a minterm to the off-set.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Conflict`] if the minterm is already in the
    /// on-set, or [`SpecError::OutOfRange`] if it does not fit the width.
    pub fn add_off(&mut self, minterm: u32) -> Result<(), SpecError> {
        self.check_range(minterm)?;
        if self.on.contains(&minterm) {
            return Err(SpecError::Conflict { minterm });
        }
        self.dc.remove(&minterm);
        self.off.insert(minterm);
        Ok(())
    }

    /// Explicitly marks a minterm as don't-care. Minterms in the on- or
    /// off-set are demoted.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::OutOfRange`] if the minterm does not fit.
    pub fn add_dont_care(&mut self, minterm: u32) -> Result<(), SpecError> {
        self.check_range(minterm)?;
        self.on.remove(&minterm);
        self.off.remove(&minterm);
        self.dc.insert(minterm);
        Ok(())
    }

    /// Number of variables.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The minterms that must map to 1.
    #[must_use]
    pub fn on_set(&self) -> &BTreeSet<u32> {
        &self.on
    }

    /// The minterms that must map to 0.
    #[must_use]
    pub fn off_set(&self) -> &BTreeSet<u32> {
        &self.off
    }

    /// The minterms explicitly marked don't-care. Unmentioned minterms are
    /// also don't-cares; see [`FunctionSpec::kind`].
    #[must_use]
    pub fn explicit_dont_cares(&self) -> &BTreeSet<u32> {
        &self.dc
    }

    /// Classification of an arbitrary minterm, treating unmentioned minterms
    /// as don't-cares.
    #[must_use]
    pub fn kind(&self, minterm: u32) -> MintermKind {
        if self.on.contains(&minterm) {
            MintermKind::On
        } else if self.off.contains(&minterm) {
            MintermKind::Off
        } else {
            MintermKind::DontCare
        }
    }

    /// Iterates over every don't-care minterm in the full space, including
    /// implicit ones. Cost is `O(2^width)`.
    pub fn all_dont_cares(&self) -> impl Iterator<Item = u32> + '_ {
        let n = 1u64 << self.width;
        (0..n).filter_map(move |m| {
            let m = m as u32;
            if self.kind(m) == MintermKind::DontCare {
                Some(m)
            } else {
                None
            }
        })
    }

    /// `true` when no minterm is constrained.
    #[must_use]
    pub fn is_unconstrained(&self) -> bool {
        self.on.is_empty() && self.off.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_detection() {
        let mut s = FunctionSpec::new(2).unwrap();
        s.add_on(1).unwrap();
        assert_eq!(s.add_off(1), Err(SpecError::Conflict { minterm: 1 }));
        // Demoting to don't-care then adding off is fine.
        s.add_dont_care(1).unwrap();
        s.add_off(1).unwrap();
        assert_eq!(s.kind(1), MintermKind::Off);
    }

    #[test]
    fn range_checking() {
        let mut s = FunctionSpec::new(2).unwrap();
        assert!(matches!(s.add_on(4), Err(SpecError::OutOfRange { .. })));
        assert!(matches!(s.add_off(255), Err(SpecError::OutOfRange { .. })));
        assert!(FunctionSpec::new(0).is_err());
        assert!(FunctionSpec::new(MAX_VARS + 1).is_err());
    }

    #[test]
    fn implicit_dont_cares() {
        let s = FunctionSpec::from_sets(3, [0b000], [0b111]).unwrap();
        assert_eq!(s.kind(0b000), MintermKind::On);
        assert_eq!(s.kind(0b111), MintermKind::Off);
        assert_eq!(s.kind(0b010), MintermKind::DontCare);
        let dcs: Vec<u32> = s.all_dont_cares().collect();
        assert_eq!(dcs.len(), 6);
    }

    #[test]
    fn unconstrained() {
        let s = FunctionSpec::new(4).unwrap();
        assert!(s.is_unconstrained());
        let s = FunctionSpec::from_sets(4, [1], []).unwrap();
        assert!(!s.is_unconstrained());
    }
}
