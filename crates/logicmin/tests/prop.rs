//! Property-based tests for the logic minimizers: on randomly generated
//! incompletely specified functions, both engines must produce correct
//! covers, and minimized covers must never cost more than the trivial
//! one-cube-per-minterm cover.

use fsmgen_logicmin::{
    minimize, qm::prime_implicants, verify_cover, Algorithm, Cover, Cube, FunctionSpec,
};
use proptest::prelude::*;

/// Strategy: a width and a per-minterm classification (0=off, 1=on, 2=dc).
fn spec_strategy() -> impl Strategy<Value = FunctionSpec> {
    (2usize..=7).prop_flat_map(|width| {
        proptest::collection::vec(0u8..3, 1 << width).prop_map(move |kinds| {
            let on = kinds
                .iter()
                .enumerate()
                .filter_map(|(m, &k)| (k == 1).then_some(m as u32));
            let off = kinds
                .iter()
                .enumerate()
                .filter_map(|(m, &k)| (k == 0).then_some(m as u32));
            FunctionSpec::from_sets(width, on, off).expect("disjoint by construction")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_cover_is_correct(spec in spec_strategy()) {
        let cover = minimize(&spec, Algorithm::Exact);
        prop_assert_eq!(verify_cover(&spec, &cover), Ok(()));
    }

    #[test]
    fn heuristic_cover_is_correct(spec in spec_strategy()) {
        let cover = minimize(&spec, Algorithm::Heuristic);
        prop_assert_eq!(verify_cover(&spec, &cover), Ok(()));
    }

    #[test]
    fn exact_never_beaten_by_trivial_cover(spec in spec_strategy()) {
        let cover = minimize(&spec, Algorithm::Exact);
        prop_assert!(cover.len() <= spec.on_set().len());
    }

    #[test]
    fn heuristic_close_to_exact(spec in spec_strategy()) {
        let exact = minimize(&spec, Algorithm::Exact);
        let heur = minimize(&spec, Algorithm::Heuristic);
        // The heuristic is allowed slack but must stay in the same ballpark.
        prop_assert!(heur.len() <= exact.len().max(1) * 2,
            "heuristic {} vs exact {}", heur.len(), exact.len());
    }

    #[test]
    fn primes_cover_all_on_minterms(spec in spec_strategy()) {
        let primes = prime_implicants(&spec);
        for &m in spec.on_set() {
            prop_assert!(primes.iter().any(|p| p.covers_minterm(m)),
                "on minterm {m:b} not covered by any prime");
        }
        // And no prime touches the off-set.
        for p in &primes {
            for &m in spec.off_set() {
                prop_assert!(!p.covers_minterm(m));
            }
        }
    }

    #[test]
    fn cube_supercube_contains_both(a in 0u32..256, b in 0u32..256) {
        let ca = Cube::from_minterm(a, 8);
        let cb = Cube::from_minterm(b, 8);
        let sup = ca.supercube(&cb);
        prop_assert!(sup.covers_cube(&ca));
        prop_assert!(sup.covers_cube(&cb));
        prop_assert!(sup.covers_minterm(a));
        prop_assert!(sup.covers_minterm(b));
    }

    #[test]
    fn cube_minterms_match_covers(mask in 0u32..64, bits in 0u32..64) {
        let cube = Cube::new(mask & 0x3f, bits);
        let listed: std::collections::BTreeSet<u32> = cube.minterms(6).collect();
        for m in 0..64u32 {
            prop_assert_eq!(listed.contains(&m), cube.covers_minterm(m));
        }
        prop_assert_eq!(listed.len() as u64, cube.minterm_count(6));
    }

    #[test]
    fn cover_covers_cube_agrees_with_minterm_enumeration(
        terms in proptest::collection::vec((0u32..16, 0u32..16), 1..5),
        probe_mask in 0u32..16,
        probe_bits in 0u32..16,
    ) {
        let cover = Cover::from_cubes(
            4,
            terms.into_iter().map(|(m, b)| Cube::new(m & 0xf, b)).collect(),
        );
        let probe = Cube::new(probe_mask & 0xf, probe_bits);
        let expected = probe.minterms(4).all(|m| cover.covers_minterm(m));
        prop_assert_eq!(cover.covers_cube(&probe), expected);
    }
}
