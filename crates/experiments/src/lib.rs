//! Experiment drivers regenerating every figure of Sherwood & Calder's
//! FSM-predictor paper (ISCA 2001).
//!
//! Each module reproduces one evaluation artifact:
//!
//! * [`figures`] — the worked examples: Figure 1 (the §4.2 trace's 5→3
//!   state machine), Figure 6 (ijpeg's `1x` machine) and Figure 7 (gs's
//!   `0x1x | 0xx1x` machine);
//! * [`fig2`] — value-prediction confidence: coverage vs accuracy for SUD
//!   counters against cross-trained custom FSMs (per benchmark);
//! * [`fig4`] — synthesized area vs state count and the fitted linear
//!   bound;
//! * [`fig5`] — misprediction rate vs estimated area for XScale, gshare,
//!   LGC, custom-same and custom-diff on six benchmarks;
//! * [`headlines`] — programmatic verification of the paper's headline
//!   claims (the regenerable source for EXPERIMENTS.md);
//! * [`report`] — text renderers producing the rows/series each figure
//!   displays;
//! * [`profiling`] — per-figure stage breakdowns (via `fsmgen-obs`) and
//!   the serializable farm-run statistics attached to figure results;
//! * [`service`] — farm-vs-serve throughput comparison quantifying the
//!   protocol tax the networked design service pays over direct batches.
//!
//! The Criterion benches in `fsmgen-bench` drive these with the default
//! configurations; tests use the `quick()` configurations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod figures;
pub mod headlines;
pub mod profiling;
pub mod report;
pub mod service;
