//! Plain-text emitters turning experiment results into the rows and series
//! the paper's figures display.

use crate::fig2::Fig2Panel;
use crate::fig4::Fig4Result;
use crate::fig5::Fig5Panel;
use std::fmt::Write as _;

fn pct(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{:.1}%", x * 100.0),
        None => "-".to_string(),
    }
}

/// Renders one Figure 2 panel as a table: the SUD Pareto frontier and each
/// FSM history curve, in accuracy order.
#[must_use]
pub fn fig2_table(panel: &Fig2Panel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 2: {} ==", panel.benchmark);
    let _ = writeln!(out, "{:<22} {:>9} {:>9}", "config", "accuracy", "coverage");

    // SUD: print only the Pareto-optimal points to match the visual
    // frontier of the scatter.
    let mut sud: Vec<_> = panel
        .sud
        .iter()
        .filter(|p| p.accuracy.is_some() && p.coverage.is_some())
        .collect();
    sud.sort_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"));
    let mut best_cov = f64::NEG_INFINITY;
    let mut frontier = Vec::new();
    for p in sud.iter().rev() {
        let c = p.coverage.expect("filtered");
        if c > best_cov {
            best_cov = c;
            frontier.push(*p);
        }
    }
    frontier.reverse();
    for p in frontier {
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>9}",
            p.label,
            pct(p.accuracy),
            pct(p.coverage)
        );
    }
    for (h, curve) in &panel.fsm {
        let _ = writeln!(out, "-- custom w/ hist={h} --");
        for p in curve {
            let _ = writeln!(
                out,
                "{:<22} {:>9} {:>9}",
                p.label,
                pct(p.accuracy),
                pct(p.coverage)
            );
        }
    }
    let _ = writeln!(out, "{}", panel.farm.summary_line());
    let _ = writeln!(out, "{}", panel.backend_timing.summary_line());
    out
}

/// Renders the Figure 4 dataset: the samples and the fitted line.
#[must_use]
pub fn fig4_table(result: &Fig4Result) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 4: area vs number of states ==");
    let _ = writeln!(
        out,
        "{:<10} {:>4} {:>7} {:>8}",
        "benchmark", "hist", "states", "area"
    );
    for s in &result.samples {
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>7} {:>8.1}",
            s.benchmark, s.history, s.states, s.area
        );
    }
    let _ = writeln!(
        out,
        "linear fit: area = {:.2} * states + {:.2}",
        result.slope, result.intercept
    );
    let _ = writeln!(out, "{}", result.farm.summary_line());
    out
}

/// Renders one Figure 5 panel: every curve as (area, miss-rate) rows.
#[must_use]
pub fn fig5_table(panel: &Fig5Panel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Figure 5: {} ==", panel.benchmark);
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>10}",
        "predictor", "est. area", "miss rate"
    );
    let mut row = |label: &str, area: f64, miss: f64| {
        let _ = writeln!(out, "{:<22} {:>12.0} {:>9.2}%", label, area, miss * 100.0);
    };
    row(
        &panel.xscale.label,
        panel.xscale.area,
        panel.xscale.miss_rate,
    );
    for p in panel.gshare.iter().chain(&panel.lgc) {
        row(&p.label, p.area, p.miss_rate);
    }
    for p in panel.custom_same.iter().chain(&panel.custom_diff) {
        row(&p.label, p.area, p.miss_rate);
    }
    let _ = writeln!(out, "{}", panel.farm.summary_line());
    let _ = writeln!(out, "{}", panel.backend_timing.summary_line());
    out
}

/// One Figure 2 panel as CSV rows: `family,label,accuracy,coverage`.
#[must_use]
pub fn fig2_csv(panel: &Fig2Panel) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let fmt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
    for p in &panel.sud {
        rows.push(vec![
            "sud".to_string(),
            p.label.clone(),
            fmt(p.accuracy),
            fmt(p.coverage),
        ]);
    }
    for (h, curve) in &panel.fsm {
        for p in curve {
            rows.push(vec![
                format!("fsm-h{h}"),
                p.label.clone(),
                fmt(p.accuracy),
                fmt(p.coverage),
            ]);
        }
    }
    to_csv("family,label,accuracy,coverage", &rows)
}

/// The Figure 4 dataset as CSV rows: `benchmark,history,states,area`.
#[must_use]
pub fn fig4_csv(result: &Fig4Result) -> String {
    let rows: Vec<Vec<String>> = result
        .samples
        .iter()
        .map(|s| {
            vec![
                s.benchmark.clone(),
                s.history.to_string(),
                s.states.to_string(),
                format!("{:.1}", s.area),
            ]
        })
        .collect();
    to_csv("benchmark,history,states,area", &rows)
}

/// One Figure 5 panel as CSV rows: `predictor,area,miss_rate`.
#[must_use]
pub fn fig5_csv(panel: &Fig5Panel) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |p: &crate::fig5::Fig5Point| {
        rows.push(vec![
            p.label.clone(),
            format!("{:.0}", p.area),
            format!("{:.5}", p.miss_rate),
        ]);
    };
    push(&panel.xscale);
    for p in panel
        .gshare
        .iter()
        .chain(&panel.lgc)
        .chain(&panel.custom_same)
        .chain(&panel.custom_diff)
    {
        push(p);
    }
    to_csv("predictor,area,miss_rate", &rows)
}

/// Renders any experiment's points as CSV with the given header.
#[must_use]
pub fn to_csv(header: &str, rows: &[Vec<String>]) -> String {
    let mut out = String::with_capacity(rows.len() * 32);
    let _ = writeln!(out, "{header}");
    for row in rows {
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig2::ConfidencePoint;

    #[test]
    fn fig2_table_renders_frontier() {
        let panel = Fig2Panel {
            benchmark: "test".to_string(),
            sud: vec![
                ConfidencePoint {
                    label: "a".into(),
                    accuracy: Some(0.9),
                    coverage: Some(0.1),
                },
                ConfidencePoint {
                    label: "b".into(),
                    accuracy: Some(0.8),
                    coverage: Some(0.3),
                },
                ConfidencePoint {
                    label: "dominated".into(),
                    accuracy: Some(0.7),
                    coverage: Some(0.2),
                },
            ],
            fsm: std::collections::BTreeMap::new(),
            farm: crate::profiling::FarmRunStats::default(),
            backend_timing: crate::profiling::BackendTiming::default(),
        };
        let table = fig2_table(&panel);
        assert!(table.contains("a"));
        assert!(table.contains("b"));
        assert!(!table.contains("dominated"));
    }

    #[test]
    fn fig2_csv_contains_both_families() {
        let panel = Fig2Panel {
            benchmark: "t".to_string(),
            sud: vec![ConfidencePoint {
                label: "sud-x".into(),
                accuracy: Some(0.5),
                coverage: None,
            }],
            fsm: std::collections::BTreeMap::from([(
                4usize,
                vec![ConfidencePoint {
                    label: "fsm-y".into(),
                    accuracy: Some(0.9),
                    coverage: Some(0.8),
                }],
            )]),
            farm: crate::profiling::FarmRunStats::default(),
            backend_timing: crate::profiling::BackendTiming::default(),
        };
        let csv = fig2_csv(&panel);
        assert!(csv.starts_with("family,label,accuracy,coverage\n"));
        assert!(csv.contains("sud,sud-x,0.5000,\n"));
        assert!(csv.contains("fsm-h4,fsm-y,0.9000,0.8000\n"));
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv("x,y", &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "x,y\n1,2\n");
    }
}
