//! Programmatic verification of the paper's headline claims: each claim
//! from §6.4/§7.5/§8 is computed on the synthetic substrate and reported
//! as holds / does-not-hold, giving EXPERIMENTS.md a regenerable source
//! of truth.

use crate::fig2::{best_coverage_at_accuracy, run_panel, Fig2Config};
use fsmgen_bpred::{simulate, CustomTrainer, Gshare, LocalGlobalChooser, XScaleBtb};
use fsmgen_workloads::{BranchBenchmark, Input, ValueBenchmark};
use serde::{Deserialize, Serialize};

/// One verified claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Headline {
    /// Where the claim comes from, e.g. `"§7.5 compress"`.
    pub source: String,
    /// The claim, paraphrased.
    pub claim: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the claim holds on the synthetic substrate.
    pub holds: bool,
}

/// Configuration: trace length per benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeadlineConfig {
    /// Dynamic events per trace.
    pub trace_len: usize,
}

impl Default for HeadlineConfig {
    fn default() -> Self {
        HeadlineConfig { trace_len: 40_000 }
    }
}

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Computes every headline claim.
#[must_use]
pub fn run(config: &HeadlineConfig) -> Vec<Headline> {
    let mut out = Vec::new();
    let len = config.trace_len;

    // -- §7.5 per-benchmark custom results ------------------------------
    struct BenchResult {
        base: f64,
        curve: Vec<f64>,
        best_table: f64,
        lgc_mid: f64,
    }
    let bench_result = |bench: BranchBenchmark| {
        let train = bench.trace(Input::TRAIN, len);
        let eval = bench.trace(Input::EVAL, len);
        let base = simulate(&mut XScaleBtb::xscale(), &eval).miss_rate();
        let designs = CustomTrainer::paper_default().train(&train, 8);
        let curve: Vec<f64> = (1..=designs.len())
            .map(|k| simulate(&mut designs.architecture(k), &eval).miss_rate())
            .collect();
        let best_table = [
            simulate(&mut Gshare::new(1 << 12), &eval).miss_rate(),
            simulate(&mut Gshare::new(1 << 16), &eval).miss_rate(),
            simulate(&mut LocalGlobalChooser::new(512, 10, 1 << 12), &eval).miss_rate(),
            simulate(&mut LocalGlobalChooser::new(1024, 10, 1 << 14), &eval).miss_rate(),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        let lgc_mid = simulate(&mut LocalGlobalChooser::new(512, 10, 1 << 12), &eval).miss_rate();
        BenchResult {
            base,
            curve,
            best_table,
            lgc_mid,
        }
    };

    let compress = bench_result(BranchBenchmark::Compress);
    let first_gain = compress.base - compress.curve[0];
    let rest_gain = compress.curve[0] - compress.curve.last().copied().unwrap_or(0.0);
    out.push(Headline {
        source: "§7.5 compress".to_string(),
        claim: "all the custom benefit comes from one branch".to_string(),
        measured: format!(
            "first FSM gains {}, the remaining seven gain {}",
            pct(first_gain),
            pct(rest_gain)
        ),
        holds: first_gain > 0.0 && rest_gain < first_gain * 0.25,
    });
    out.push(Headline {
        source: "§7.5 compress".to_string(),
        claim: "a moderate LGC outperforms the customized predictor".to_string(),
        measured: format!(
            "LGC {} vs best custom {}",
            pct(compress.lgc_mid),
            pct(compress.curve.iter().copied().fold(f64::INFINITY, f64::min))
        ),
        holds: compress.lgc_mid < compress.curve.iter().copied().fold(f64::INFINITY, f64::min),
    });

    for bench in [
        BranchBenchmark::Ijpeg,
        BranchBenchmark::Gsm,
        BranchBenchmark::Vortex,
    ] {
        let r = bench_result(bench);
        let best_custom = r.curve.iter().copied().fold(f64::INFINITY, f64::min);
        out.push(Headline {
            source: format!("§7.5 {}", bench.name()),
            claim: "customs beat every general-purpose table examined".to_string(),
            measured: format!(
                "xscale {} -> custom {}, best table {}",
                pct(r.base),
                pct(best_custom),
                pct(r.best_table)
            ),
            holds: best_custom < r.best_table,
        });
    }

    let g721 = bench_result(BranchBenchmark::G721);
    let g721_custom = g721.curve.iter().copied().fold(f64::INFINITY, f64::min);
    out.push(Headline {
        source: "§7.5 g721".to_string(),
        claim: "XScale is already good; customs shave about a point".to_string(),
        measured: format!("{} -> {}", pct(g721.base), pct(g721_custom)),
        holds: g721_custom < g721.base && g721.base - g721_custom < 0.04,
    });

    // -- §6.4 confidence estimation --------------------------------------
    let panel = run_panel(
        ValueBenchmark::Gcc,
        &Fig2Config {
            trace_len: len.min(40_000),
            histories: vec![4, 8, 10],
            thresholds: vec![0.5, 0.7, 0.9],
            cache_file: None,
        },
    );
    let sud = best_coverage_at_accuracy(&panel.sud, 0.78).unwrap_or(0.0);
    let fsm = panel
        .fsm
        .values()
        .filter_map(|c| best_coverage_at_accuracy(c, 0.78))
        .fold(0.0f64, f64::max);
    out.push(Headline {
        source: "§6.4 gcc".to_string(),
        claim: "at a high accuracy target the FSM estimator covers far more than any SUD"
            .to_string(),
        measured: format!(
            "SUD {} vs FSM {} coverage at >= 78% accuracy",
            pct(sud),
            pct(fsm)
        ),
        holds: fsm > sud + 0.10,
    });

    out
}

/// Renders the claims as an aligned table.
#[must_use]
pub fn table(headlines: &[Headline]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{:<16} {:<8} claim / measured", "source", "holds");
    for h in headlines {
        let _ = writeln!(
            out,
            "{:<16} {:<8} {}",
            h.source,
            if h.holds { "yes" } else { "NO" },
            h.claim
        );
        let _ = writeln!(out, "{:<16} {:<8}   measured: {}", "", "", h.measured);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_headlines_hold_at_test_scale() {
        let headlines = run(&HeadlineConfig { trace_len: 20_000 });
        assert!(headlines.len() >= 7);
        for h in &headlines {
            assert!(
                h.holds,
                "claim failed: {} — {} ({})",
                h.source, h.claim, h.measured
            );
        }
        let t = table(&headlines);
        assert!(t.contains("§7.5 compress"));
        assert!(!t.contains(" NO "), "table should show no failures:\n{t}");
    }
}
