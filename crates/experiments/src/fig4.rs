//! Figure 4: synthesized area versus number of states for a sample of the
//! custom FSM predictors, with the fitted linear bound used to estimate
//! area everywhere else (§7.4).

use crate::profiling::FarmRunStats;
use fsmgen_bpred::CustomTrainer;
use fsmgen_farm::{Farm, FarmConfig};
use fsmgen_synth::{synthesize_area, Encoding, LinearAreaModel};
use fsmgen_workloads::{BranchBenchmark, Input};
use serde::{Deserialize, Serialize};

/// The Figure 4 dataset: `(states, area)` samples and the fitted line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One sample per synthesized FSM predictor.
    pub samples: Vec<AreaSample>,
    /// Least-squares fit `area = slope * states + intercept`.
    pub slope: f64,
    /// Fit intercept.
    pub intercept: f64,
    /// Farm statistics aggregated over all per-benchmark design batches.
    pub farm: FarmRunStats,
}

/// One synthesized predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaSample {
    /// Source benchmark.
    pub benchmark: String,
    /// Branch PC the FSM targets.
    pub pc: u64,
    /// History length the FSM was designed with.
    pub history: usize,
    /// States in the final machine.
    pub states: usize,
    /// Synthesized area (gate equivalents).
    pub area: f64,
}

impl Fig4Result {
    /// The fitted linear model.
    #[must_use]
    pub fn model(&self) -> LinearAreaModel {
        LinearAreaModel {
            slope: self.slope,
            intercept: self.intercept,
        }
    }
}

/// Parameters for the Figure 4 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Config {
    /// Dynamic branches per training trace.
    pub trace_len: usize,
    /// Custom FSMs designed per benchmark.
    pub fsms_per_benchmark: usize,
    /// History lengths sampled (varying history varies machine size, like
    /// the paper's population of generated predictors).
    pub histories: Vec<usize>,
    /// Persistent design-cache snapshot warm-starting the sweep across
    /// runs (`None` runs cold).
    pub cache_file: Option<std::path::PathBuf>,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Fig4Config {
            trace_len: 40_000,
            fsms_per_benchmark: 8,
            histories: vec![3, 5, 7, 9],
            cache_file: None,
        }
    }
}

impl Fig4Config {
    /// Reduced configuration for fast tests.
    #[must_use]
    pub fn quick() -> Self {
        Fig4Config {
            trace_len: 8_000,
            fsms_per_benchmark: 3,
            histories: vec![3, 5],
            cache_file: None,
        }
    }
}

/// Generates custom FSMs across all branch benchmarks, synthesizes each,
/// and fits the linear area bound.
#[must_use]
pub fn run(config: &Fig4Config) -> Fig4Result {
    let mut samples = Vec::new();
    // One shared farm across benchmarks and histories: repeated hot-branch
    // models hit the design cache, and the metrics accumulate per batch.
    let farm = Farm::new(FarmConfig::default());
    let mut farm_stats = FarmRunStats::default();
    crate::profiling::with_cache_snapshot(&farm, config.cache_file.as_deref(), || {
        for bench in BranchBenchmark::ALL {
            let trace = bench.trace(Input::TRAIN, config.trace_len);
            for &h in &config.histories {
                let (designs, metrics) = CustomTrainer::new(h).train_parallel_with_metrics(
                    &trace,
                    config.fsms_per_benchmark,
                    &farm,
                );
                farm_stats.accumulate(&metrics);
                for (pc, design) in designs.designs() {
                    let fsm = design.fsm();
                    let est = synthesize_area(fsm, Encoding::Binary);
                    samples.push(AreaSample {
                        benchmark: bench.name().to_string(),
                        pc: *pc,
                        history: h,
                        states: fsm.num_states(),
                        area: est.area,
                    });
                }
            }
        }
    });
    let points: Vec<(usize, f64)> = samples.iter().map(|s| (s.states, s.area)).collect();
    let model = LinearAreaModel::fit(&points);
    Fig4Result {
        samples,
        slope: model.slope,
        intercept: model.intercept,
        farm: farm_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_samples_and_positive_slope() {
        let result = run(&Fig4Config::quick());
        assert!(result.samples.len() >= 10, "got {}", result.samples.len());
        assert!(result.slope > 0.0, "area must grow with states");
        // The population must include machines of different sizes.
        let min = result.samples.iter().map(|s| s.states).min().unwrap();
        let max = result.samples.iter().map(|s| s.states).max().unwrap();
        assert!(max > min, "all machines the same size");
        // Farm-backed: every sample came from a farm design job.
        assert!(result.farm.jobs >= result.samples.len());
        assert!(result.farm.wall_ms > 0.0);
    }

    #[test]
    fn warm_rerun_is_served_from_the_snapshot_with_identical_samples() {
        let dir = std::env::temp_dir().join(format!("fsmgen-fig4-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let config = Fig4Config {
            cache_file: Some(dir.join("fig4.fsnap")),
            ..Fig4Config::quick()
        };

        let cold = run(&config);
        assert_eq!(cold.farm.snapshot_hits, 0);
        let warm = run(&config);
        assert!(
            warm.farm.snapshot_hits > 0,
            "warm rerun must hit the snapshot: {:?}",
            warm.farm
        );
        assert_eq!(warm.farm.snapshot_skipped, 0);
        assert_eq!(cold.samples, warm.samples, "samples must be identical");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn estimates_are_usable() {
        let result = run(&Fig4Config::quick());
        let model = result.model();
        assert!(model.estimate(10) > 0.0);
        assert!(model.estimate(50) > model.estimate(5));
    }
}
