//! Figure 5: misprediction rate versus estimated area for the six branch
//! benchmarks, comparing the XScale baseline, gshare, the local/global
//! chooser and the customized FSM architecture (custom-same and
//! custom-diff).

use crate::profiling::{BackendTiming, FarmRunStats};
use fsmgen_bpred::{
    simulate, BranchPredictor, CustomDesigns, CustomTrainer, Gshare, LocalGlobalChooser, XScaleBtb,
    CUSTOM_ENTRY_TAG_BITS,
};
use fsmgen_farm::{Farm, FarmConfig};
use fsmgen_synth::LinearAreaModel;
use fsmgen_traces::BranchTrace;
use fsmgen_workloads::{BranchBenchmark, Input};
use serde::{Deserialize, Serialize};

/// Area units charged per SRAM storage bit of table predictors, relative
/// to the NAND2 gate-equivalents the FSM area model produces. A 6T SRAM
/// cell is roughly one NAND2 of area.
pub const GATES_PER_SRAM_BIT: f64 = 1.0;

/// One predictor evaluation point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Predictor description.
    pub label: String,
    /// Estimated total area (gate equivalents).
    pub area: f64,
    /// Misprediction rate on the evaluation trace.
    pub miss_rate: f64,
}

/// One benchmark's panel: curves per predictor family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Panel {
    /// Benchmark name.
    pub benchmark: String,
    /// The XScale baseline point.
    pub xscale: Fig5Point,
    /// gshare size sweep.
    pub gshare: Vec<Fig5Point>,
    /// Local/global chooser size sweep.
    pub lgc: Vec<Fig5Point>,
    /// Customs trained on the evaluation input (limit study).
    pub custom_same: Vec<Fig5Point>,
    /// Customs trained on a different input (the realistic case).
    pub custom_diff: Vec<Fig5Point>,
    /// Farm statistics of the two custom training batches.
    pub farm: FarmRunStats,
    /// Wall-time of the full custom architecture simulation per execution
    /// backend (zeroed when training produced no designs).
    pub backend_timing: BackendTiming,
}

/// Parameters of the Figure 5 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Config {
    /// Dynamic branches per trace.
    pub trace_len: usize,
    /// Global history length for the custom FSMs (the paper uses 9).
    pub history: usize,
    /// Maximum number of custom FSM predictors per benchmark.
    pub max_customs: usize,
    /// gshare table sizes (entries).
    pub gshare_sizes: Vec<usize>,
    /// LGC configurations: (local entries, local bits, global entries).
    pub lgc_sizes: Vec<(usize, usize, usize)>,
    /// The fitted area-per-state line from the Figure 4 experiment.
    pub area_model: LinearAreaModel,
    /// Persistent design-cache snapshot warm-starting the training
    /// batches across runs (`None` runs cold).
    pub cache_file: Option<std::path::PathBuf>,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            trace_len: 60_000,
            history: 9,
            max_customs: 8,
            gshare_sizes: vec![1 << 10, 1 << 12, 1 << 14, 1 << 16],
            lgc_sizes: vec![(128, 10, 1 << 10), (512, 10, 1 << 12), (1024, 10, 1 << 14)],
            area_model: LinearAreaModel {
                slope: 10.0,
                intercept: 8.0,
            },
            cache_file: None,
        }
    }
}

impl Fig5Config {
    /// Reduced configuration for fast tests.
    #[must_use]
    pub fn quick() -> Self {
        Fig5Config {
            trace_len: 15_000,
            history: 6,
            max_customs: 3,
            gshare_sizes: vec![1 << 10, 1 << 14],
            lgc_sizes: vec![(128, 10, 1 << 10)],
            ..Fig5Config::default()
        }
    }
}

fn table_point<P: BranchPredictor>(mut p: P, eval: &BranchTrace) -> Fig5Point {
    let r = simulate(&mut p, eval);
    Fig5Point {
        label: p.describe(),
        area: p.storage_bits() as f64 * GATES_PER_SRAM_BIT,
        miss_rate: r.miss_rate(),
    }
}

/// The custom curve: adding FSM predictors one at a time, pricing each
/// architecture as BTB storage + per-entry tag storage + synthesized FSM
/// area estimated from the fitted line (§7.4-§7.5).
fn custom_curve(
    designs: &CustomDesigns,
    eval: &BranchTrace,
    area_model: &LinearAreaModel,
    label: &str,
) -> Vec<Fig5Point> {
    let mut points = Vec::new();
    for k in 1..=designs.len() {
        let mut arch = designs.architecture(k);
        let fsm_area: f64 = designs
            .designs()
            .iter()
            .take(k)
            .map(|(_, d)| area_model.estimate(d.fsm().num_states()))
            .sum();
        let tag_area = (k * CUSTOM_ENTRY_TAG_BITS) as f64 * GATES_PER_SRAM_BIT;
        let base_area = XScaleBtb::xscale().storage_bits() as f64 * GATES_PER_SRAM_BIT;
        let r = simulate(&mut arch, eval);
        points.push(Fig5Point {
            label: format!("{label}-{k}fsm"),
            area: base_area + tag_area + fsm_area,
            miss_rate: r.miss_rate(),
        });
    }
    points
}

/// Runs one benchmark's panel.
#[must_use]
pub fn run_panel(bench: BranchBenchmark, config: &Fig5Config) -> Fig5Panel {
    let train = bench.trace(Input::TRAIN, config.trace_len);
    let eval = bench.trace(Input::EVAL, config.trace_len);

    let xscale = table_point(XScaleBtb::xscale(), &eval);
    let gshare = config
        .gshare_sizes
        .iter()
        .map(|&n| table_point(Gshare::new(n), &eval))
        .collect();
    let lgc = config
        .lgc_sizes
        .iter()
        .map(|&(le, lb, ge)| table_point(LocalGlobalChooser::new(le, lb, ge), &eval))
        .collect();

    // Both custom training passes run on one farm: identical hot-branch
    // models between the train and eval inputs hit the design cache.
    let farm = Farm::new(FarmConfig::default());
    let mut farm_stats = FarmRunStats::default();
    let trainer = CustomTrainer::new(config.history);
    let (designs_diff, designs_same) =
        crate::profiling::with_cache_snapshot(&farm, config.cache_file.as_deref(), || {
            let (designs_diff, metrics_diff) =
                trainer.train_parallel_with_metrics(&train, config.max_customs, &farm);
            farm_stats.accumulate(&metrics_diff);
            let (designs_same, metrics_same) =
                trainer.train_parallel_with_metrics(&eval, config.max_customs, &farm);
            farm_stats.accumulate(&metrics_same);
            (designs_diff, designs_same)
        });

    // Time the widest custom architecture on each backend; accuracy is
    // backend-independent (differentially tested bit-identical).
    let backend_timing = if !designs_diff.is_empty() {
        BackendTiming::measure(|backend| {
            let mut arch = designs_diff.architecture_with_backend(designs_diff.len(), backend);
            simulate(&mut arch, &eval);
        })
    } else {
        BackendTiming::default()
    };

    Fig5Panel {
        benchmark: bench.name().to_string(),
        xscale,
        gshare,
        lgc,
        custom_same: custom_curve(&designs_same, &eval, &config.area_model, "custom-same"),
        custom_diff: custom_curve(&designs_diff, &eval, &config.area_model, "custom-diff"),
        farm: farm_stats,
        backend_timing,
    }
}

/// Runs the full Figure 5 experiment over all six benchmarks.
#[must_use]
pub fn run(config: &Fig5Config) -> Vec<Fig5Panel> {
    BranchBenchmark::ALL
        .iter()
        .map(|&b| run_panel(b, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ijpeg_customs_beat_baseline() {
        let panel = run_panel(BranchBenchmark::Ijpeg, &Fig5Config::quick());
        let best_custom = panel
            .custom_diff
            .iter()
            .map(|p| p.miss_rate)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_custom < panel.xscale.miss_rate,
            "customs {best_custom} vs xscale {}",
            panel.xscale.miss_rate
        );
        // Both execution backends were timed on the widest architecture.
        assert!(panel.backend_timing.interpreted_ms > 0.0);
        assert!(panel.backend_timing.compiled_ms > 0.0);
    }

    #[test]
    fn custom_curve_area_grows() {
        let panel = run_panel(BranchBenchmark::Vortex, &Fig5Config::quick());
        for w in panel.custom_diff.windows(2) {
            assert!(w[1].area > w[0].area, "area must grow with more FSMs");
        }
    }

    #[test]
    fn custom_same_not_worse_than_diff_on_average() {
        let panel = run_panel(BranchBenchmark::Gsm, &Fig5Config::quick());
        let avg = |pts: &[Fig5Point]| {
            pts.iter().map(|p| p.miss_rate).sum::<f64>() / pts.len().max(1) as f64
        };
        // The paper finds "little to no difference"; allow slack but same
        // should not be dramatically worse.
        assert!(avg(&panel.custom_same) <= avg(&panel.custom_diff) + 0.05);
    }
}
