//! Farm-vs-serve throughput comparison: the same job matrix designed
//! directly through a [`Farm`] batch and then through an in-process TCP
//! design service driven by concurrent clients. The gap between the two
//! is the protocol tax (framing, JSON, TCP round trips, per-connection
//! threads) the networked front-end pays over the in-process engine.

use fsmgen::Designer;
use fsmgen_farm::{DesignJob, Farm, FarmConfig};
use fsmgen_serve::{Request, Response, ServeClient, ServeConfig, Server};
use fsmgen_traces::BitTrace;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for one comparison run.
#[derive(Debug, Clone)]
pub struct ServiceComparisonConfig {
    /// Workloads: `(name, trace)` pairs designed at each history.
    pub workloads: Vec<(String, Arc<BitTrace>)>,
    /// History lengths swept per workload.
    pub histories: Vec<usize>,
    /// How many times the whole matrix is submitted (passes beyond the
    /// first hit the design cache, in both modes).
    pub passes: usize,
    /// Farm worker threads (both modes) and concurrent service clients.
    pub parallelism: usize,
}

impl ServiceComparisonConfig {
    /// A small configuration for tests: the paper trace plus a periodic
    /// trace, two histories, two passes.
    #[must_use]
    pub fn quick() -> Self {
        let paper: BitTrace = "0000 1000 1011 1101 1110 1111"
            .parse()
            .unwrap_or_else(|_| unreachable!("literal trace parses"));
        let periodic: BitTrace = "110"
            .repeat(40)
            .parse()
            .unwrap_or_else(|_| unreachable!("literal trace parses"));
        ServiceComparisonConfig {
            workloads: vec![
                ("paper".into(), Arc::new(paper)),
                ("periodic".into(), Arc::new(periodic)),
            ],
            histories: vec![2, 3],
            passes: 2,
            parallelism: 2,
        }
    }
}

/// One mode's aggregate result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeResult {
    /// Design requests completed successfully.
    pub completed: usize,
    /// End-to-end wall clock for all passes.
    pub wall: Duration,
    /// Completed requests per second of wall clock.
    pub throughput: f64,
}

/// The two modes side by side.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceComparison {
    /// Jobs per pass (the unique matrix size).
    pub jobs_per_pass: usize,
    /// Direct farm batches.
    pub farm: ModeResult,
    /// The same matrix through the TCP service.
    pub serve: ModeResult,
}

impl ServiceComparison {
    /// The protocol tax: served wall clock over farm wall clock (>= 1.0
    /// in the common case; < 1.0 means the service's extra concurrency
    /// hid its overhead).
    #[must_use]
    pub fn overhead_ratio(&self) -> f64 {
        if self.farm.wall.as_secs_f64() == 0.0 {
            1.0
        } else {
            self.serve.wall.as_secs_f64() / self.farm.wall.as_secs_f64()
        }
    }

    /// Renders the comparison as a schema-v1 JSON document
    /// (`"kind": "service_comparison"`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mode = |m: &ModeResult| {
            format!(
                "{{\"completed\": {}, \"wall_ms\": {:.3}, \"throughput_per_s\": {:.3}}}",
                m.completed,
                m.wall.as_secs_f64() * 1e3,
                m.throughput
            )
        };
        format!(
            "{{\n  \"version\": {},\n  \"kind\": \"service_comparison\",\n  \"jobs_per_pass\": {},\n  \"farm\": {},\n  \"serve\": {},\n  \"overhead_ratio\": {:.4}\n}}\n",
            fsmgen_obs::SCHEMA_VERSION,
            self.jobs_per_pass,
            mode(&self.farm),
            mode(&self.serve),
            self.overhead_ratio()
        )
    }
}

fn matrix(config: &ServiceComparisonConfig) -> Vec<(u64, Arc<BitTrace>, usize)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for (_name, trace) in &config.workloads {
        for &history in &config.histories {
            out.push((id, Arc::clone(trace), history));
            id += 1;
        }
    }
    out
}

/// Runs the comparison: farm mode first, then service mode over a fresh
/// farm, so both start cold and both see `passes` repetitions.
///
/// # Errors
///
/// Returns a message when the service cannot be started or a request
/// fails; farm-mode design failures are reported the same way.
pub fn run_comparison(config: &ServiceComparisonConfig) -> Result<ServiceComparison, String> {
    let jobs = matrix(config);
    let jobs_per_pass = jobs.len();

    // Mode 1: direct farm batches.
    let farm = Farm::new(FarmConfig {
        workers: config.parallelism.max(1),
        cache_capacity: 1024,
    });
    let farm_start = Instant::now();
    let mut farm_completed = 0usize;
    for _pass in 0..config.passes {
        let batch: Vec<DesignJob> = jobs
            .iter()
            .map(|(id, trace, history)| {
                DesignJob::from_trace(*id, Arc::clone(trace), Designer::new(*history))
            })
            .collect();
        let report = farm.design_batch(batch);
        if report.metrics.failed > 0 {
            return Err(format!(
                "farm mode: {} job(s) failed",
                report.metrics.failed
            ));
        }
        farm_completed += report.metrics.succeeded;
    }
    let farm_wall = farm_start.elapsed();

    // Mode 2: the same matrix through a TCP service, one client thread
    // per unit of parallelism, requests interleaved across clients.
    let server = Server::bind(ServeConfig {
        workers: config.parallelism.max(1),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("serve mode: bind failed: {e}"))?;
    let handle = server.handle();
    let addr = server.local_addr().to_string();
    let server = Arc::new(server);
    let runner = Arc::clone(&server);
    let server_thread = std::thread::spawn(move || runner.run());

    let serve_start = Instant::now();
    let clients = config.parallelism.max(1);
    let mut threads = Vec::new();
    for client_index in 0..clients {
        let addr = addr.clone();
        let jobs = jobs.clone();
        let passes = config.passes;
        threads.push(std::thread::spawn(move || -> Result<usize, String> {
            let mut client =
                ServeClient::connect(&addr, Duration::from_secs(30)).map_err(|e| e.to_string())?;
            let mut completed = 0usize;
            for _pass in 0..passes {
                for (position, (id, trace, history)) in jobs.iter().enumerate() {
                    if position % clients != client_index {
                        continue;
                    }
                    let text: String = trace.iter().map(|b| if b { '1' } else { '0' }).collect();
                    let request = Request::Design {
                        id: *id,
                        trace: text,
                        history: *history,
                        threshold: None,
                        dont_care: None,
                    };
                    match client.design_with_retry(&request, 50) {
                        Ok(Response::DesignOk { .. }) => completed += 1,
                        Ok(other) => return Err(format!("unexpected reply: {other:?}")),
                        Err(e) => return Err(e.to_string()),
                    }
                }
            }
            Ok(completed)
        }));
    }
    let mut serve_completed = 0usize;
    let mut first_error = None;
    for thread in threads {
        match thread.join().map_err(|_| "client panicked".to_string())? {
            Ok(count) => serve_completed += count,
            Err(e) => first_error = Some(e),
        }
    }
    let serve_wall = serve_start.elapsed();
    handle.shutdown();
    server_thread
        .join()
        .map_err(|_| "server panicked".to_string())?
        .map_err(|e| format!("serve mode: {e}"))?;
    if let Some(error) = first_error {
        return Err(format!("serve mode: {error}"));
    }

    let throughput = |completed: usize, wall: Duration| {
        if wall.as_secs_f64() == 0.0 {
            0.0
        } else {
            completed as f64 / wall.as_secs_f64()
        }
    };
    Ok(ServiceComparison {
        jobs_per_pass,
        farm: ModeResult {
            completed: farm_completed,
            wall: farm_wall,
            throughput: throughput(farm_completed, farm_wall),
        },
        serve: ModeResult {
            completed: serve_completed,
            wall: serve_wall,
            throughput: throughput(serve_completed, serve_wall),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_completes_everything_in_both_modes() {
        let config = ServiceComparisonConfig::quick();
        let result = run_comparison(&config).expect("comparison runs");
        let expected = config.passes * result.jobs_per_pass;
        assert_eq!(result.farm.completed, expected);
        assert_eq!(result.serve.completed, expected);
        assert!(result.farm.throughput > 0.0);
        assert!(result.serve.throughput > 0.0);
        let json = result.to_json();
        assert!(json.contains("\"kind\": \"service_comparison\""), "{json}");
        assert!(json.contains("\"version\": 1"), "{json}");
    }
}
