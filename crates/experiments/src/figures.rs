//! Figures 1, 6 and 7: the paper's worked FSM examples, regenerated from
//! first principles so tests and examples can assert their exact shapes.

use fsmgen::{Design, Designer};
use fsmgen_automata::{compile_patterns, Dfa};
use fsmgen_traces::BitTrace;

/// The §4.2 example trace `t = 0000 1000 1011 1101 1110 1111`.
#[must_use]
pub fn paper_trace() -> BitTrace {
    "0000 1000 1011 1101 1110 1111"
        .parse()
        .expect("literal trace is valid")
}

/// Figure 1: runs the design flow on the paper trace at N=2, returning the
/// full design (5 states before start-state removal, 3 after).
#[must_use]
pub fn figure1() -> Design {
    Designer::new(2)
        .dont_care_fraction(0.0)
        .design_from_trace(&paper_trace())
        .expect("the paper trace designs cleanly")
}

/// Figure 6: the ijpeg machine capturing the pattern `1x` (4 states).
#[must_use]
pub fn figure6() -> Dfa {
    compile_patterns(&[vec![Some(true), None]])
}

/// Figure 7: the gs machine capturing `0x1x | 0xx1x` (11 states).
#[must_use]
pub fn figure7() -> Dfa {
    compile_patterns(&[
        vec![Some(false), None, Some(true), None],
        vec![Some(false), None, None, Some(true), None],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_state_counts_match_paper() {
        let design = figure1();
        assert_eq!(design.pre_reduction_states(), 5);
        assert_eq!(design.fsm().num_states(), 3);
    }

    #[test]
    fn figure6_and_7_state_counts_match_paper() {
        assert_eq!(figure6().num_states(), 4);
        assert_eq!(figure7().num_states(), 11);
    }

    #[test]
    fn figure7_dominant_patterns_predict_correctly() {
        // §7.6 lists the four dominant 9-bit global patterns and their
        // biases; tracing "just the last five digits of them" from any
        // state must land on a correctly-predicting state.
        let fsm = figure7();
        let cases: [(&str, bool); 4] = [
            ("001001010", true),
            ("010011010", false),
            ("010101010", true),
            ("110010010", true),
        ];
        for (pattern, taken) in cases {
            for start in 0..fsm.num_states() as u32 {
                let mut s = start;
                for c in pattern.chars() {
                    s = fsm.step(s, c == '1');
                }
                assert_eq!(fsm.output(s), taken, "pattern {pattern} from state {start}");
            }
        }
    }
}
