//! Figure 2: value-prediction confidence — coverage vs accuracy for
//! saturating up/down counters against cross-trained custom FSMs.
//!
//! For each benchmark, the SUD points sweep 60 counter configurations and
//! the FSM curves sweep the design flow's probability threshold at history
//! lengths 2..=10. FSMs are *cross-trained*: "for each application in our
//! suite, we combine the traces from all of the other programs excluding
//! the application to be used for reporting results" (§6.3).

use crate::profiling::{BackendTiming, FarmRunStats};
use fsmgen::{Designer, MarkovModel, PatternConfig};
use fsmgen_farm::{DesignJob, Farm, FarmConfig};
use fsmgen_traces::BitTrace;
use fsmgen_vpred::{
    correctness_trace, per_entry_correctness_model, run_confidence, run_confidence_fsm,
    FsmConfidence, SudConfidence, SudConfig, TwoDeltaStride,
};
use fsmgen_workloads::{Input, ValueBenchmark};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One accuracy/coverage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidencePoint {
    /// Configuration label (e.g. `sud-m10-p2-t80` or `fsm-h4-t0.90`).
    pub label: String,
    /// Accuracy (fraction), `None` if nothing was marked confident.
    pub accuracy: Option<f64>,
    /// Coverage (fraction), `None` if nothing was predicted correctly.
    pub coverage: Option<f64>,
}

/// The Figure 2 panel for one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Panel {
    /// The evaluated benchmark.
    pub benchmark: String,
    /// SUD counter sweep points.
    pub sud: Vec<ConfidencePoint>,
    /// FSM curves keyed by history length, each swept over thresholds.
    pub fsm: BTreeMap<usize, Vec<ConfidencePoint>>,
    /// Farm statistics of the FSM design batch behind this panel.
    pub farm: FarmRunStats,
    /// Wall-time of one representative FSM confidence run per execution
    /// backend (zeroed when every design in the batch failed).
    pub backend_timing: BackendTiming,
}

/// Parameters of the Figure 2 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Config {
    /// Dynamic loads per benchmark trace.
    pub trace_len: usize,
    /// FSM history lengths (the paper uses 2..=10).
    pub histories: Vec<usize>,
    /// Probability thresholds sweeping each FSM curve.
    pub thresholds: Vec<f64>,
    /// Persistent design-cache snapshot warm-starting the FSM batches
    /// across runs (`None` runs cold).
    pub cache_file: Option<std::path::PathBuf>,
}

impl Default for Fig2Config {
    fn default() -> Self {
        Fig2Config {
            trace_len: 60_000,
            histories: vec![2, 4, 6, 8, 10],
            thresholds: vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99],
            cache_file: None,
        }
    }
}

impl Fig2Config {
    /// A reduced configuration for fast tests.
    #[must_use]
    pub fn quick() -> Self {
        Fig2Config {
            trace_len: 12_000,
            histories: vec![2, 4],
            thresholds: vec![0.5, 0.8, 0.95],
            cache_file: None,
        }
    }
}

/// The §6.3 cross-training model: the merged per-entry Markov model of the
/// correctness streams of every benchmark except `held_out`. Per-entry
/// histories are used because the deployed estimators are per-entry (one
/// per value-table slot), exactly like the SUD counters of §6.1.
#[must_use]
pub fn cross_training_model(
    held_out: ValueBenchmark,
    order: usize,
    trace_len: usize,
) -> MarkovModel {
    let mut merged = MarkovModel::new(order);
    for bench in ValueBenchmark::ALL {
        if bench == held_out {
            continue;
        }
        let loads = bench.trace(Input::TRAIN, trace_len);
        let model =
            per_entry_correctness_model(&mut TwoDeltaStride::paper_default(), &loads, order);
        merged.merge(&model);
    }
    merged
}

/// Runs the full Figure 2 experiment.
#[must_use]
pub fn run(config: &Fig2Config) -> Vec<Fig2Panel> {
    ValueBenchmark::ALL
        .iter()
        .map(|&bench| run_panel(bench, config))
        .collect()
}

/// Runs one benchmark's panel.
#[must_use]
pub fn run_panel(bench: ValueBenchmark, config: &Fig2Config) -> Fig2Panel {
    let eval = bench.trace(Input::EVAL, config.trace_len);

    // SUD sweep.
    let sud = SudConfig::figure2_sweep()
        .into_iter()
        .map(|cfg| {
            let mut table = TwoDeltaStride::paper_default();
            let mut est = SudConfidence::new(table.len(), cfg);
            let stats = run_confidence(&mut table, &mut est, &eval);
            ConfidencePoint {
                label: fsmgen_vpred::ConfidenceEstimator::describe(&est),
                accuracy: stats.accuracy(),
                coverage: stats.coverage(),
            }
        })
        .collect();

    // FSM curves: one design per (history, threshold), cross-trained and
    // designed as one farm batch (submission order is preserved by the
    // farm, so outcomes zip back onto the grid).
    let mut jobs = Vec::new();
    let mut grid = Vec::new();
    for &h in &config.histories {
        let model = cross_training_model(bench, h, config.trace_len);
        for &thr in &config.thresholds {
            let designer = Designer::new(h).pattern_config(PatternConfig {
                prob_threshold: thr,
                dont_care_fraction: 0.01,
            });
            jobs.push(DesignJob::from_model(
                grid.len() as u64,
                model.clone(),
                designer,
            ));
            grid.push((h, thr));
        }
    }
    let farm = Farm::new(FarmConfig::default());
    let report = crate::profiling::with_cache_snapshot(&farm, config.cache_file.as_deref(), || {
        farm.design_batch(jobs)
    });
    let farm_stats = FarmRunStats::from(&report.metrics);

    let mut fsm: BTreeMap<usize, Vec<ConfidencePoint>> =
        config.histories.iter().map(|&h| (h, Vec::new())).collect();
    let mut timing_machine: Option<std::sync::Arc<fsmgen_automata::Dfa>> = None;
    for ((h, thr), outcome) in grid.into_iter().zip(report.outcomes) {
        // Failed designs are skipped, matching the serial `.ok()` flow.
        let Ok(design) = outcome.result else {
            continue;
        };
        if timing_machine.is_none() {
            timing_machine = Some(std::sync::Arc::new((*design).clone().into_fsm()));
        }
        let label = format!("fsm-h{h}-t{thr:.2}");
        let mut table = TwoDeltaStride::paper_default();
        let mut est =
            FsmConfidence::per_entry(table.len(), (*design).clone().into_fsm(), label.clone());
        let stats = run_confidence(&mut table, &mut est, &eval);
        if let Some(points) = fsm.get_mut(&h) {
            points.push(ConfidencePoint {
                label,
                accuracy: stats.accuracy(),
                coverage: stats.coverage(),
            });
        }
    }

    // Re-run one representative design on each backend purely for
    // wall-time; the accuracy numbers above are backend-independent
    // (the backends are differentially tested bit-identical).
    let backend_timing = timing_machine
        .map(|machine| {
            BackendTiming::measure(|backend| {
                run_confidence_fsm(
                    &mut TwoDeltaStride::paper_default(),
                    std::sync::Arc::clone(&machine),
                    "timing",
                    backend,
                    &eval,
                );
            })
        })
        .unwrap_or_default();

    Fig2Panel {
        benchmark: bench.name().to_string(),
        sud,
        fsm,
        farm: farm_stats,
        backend_timing,
    }
}

/// Best SUD coverage at or above an accuracy floor — the paper's headline
/// comparison ("at a target accuracy of 80%, the best configuration of
/// saturating up-down counter gets a coverage of less than 10%" for gcc).
#[must_use]
pub fn best_coverage_at_accuracy(points: &[ConfidencePoint], floor: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.accuracy.is_some_and(|a| a >= floor))
        .filter_map(|p| p.coverage)
        .fold(None, |best, c| Some(best.map_or(c, |b: f64| b.max(c))))
}

/// Convenience: the correctness bit-stream of one benchmark, used by the
/// ablation benches.
#[must_use]
pub fn correctness_bits(bench: ValueBenchmark, input: Input, trace_len: usize) -> BitTrace {
    let loads = bench.trace(input, trace_len);
    correctness_trace(&mut TwoDeltaStride::paper_default(), &loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_panel_has_both_families() {
        let panel = run_panel(ValueBenchmark::Li, &Fig2Config::quick());
        assert_eq!(panel.sud.len(), 60);
        assert_eq!(panel.fsm.len(), 2);
        // At least some points must be well-defined.
        assert!(panel.sud.iter().any(|p| p.accuracy.is_some()));
        assert!(panel.fsm[&4].iter().any(|p| p.accuracy.is_some()));
        // The FSM grid ran farm-backed: 2 histories × 3 thresholds.
        assert_eq!(panel.farm.jobs, 6);
        assert_eq!(panel.farm.succeeded, 6);
        assert!(panel.farm.wall_ms > 0.0);
        // Both execution backends were timed on a representative design.
        assert!(panel.backend_timing.interpreted_ms > 0.0);
        assert!(panel.backend_timing.compiled_ms > 0.0);
    }

    #[test]
    fn fsm_threshold_raises_accuracy() {
        let panel = run_panel(ValueBenchmark::Perl, &Fig2Config::quick());
        let curve = &panel.fsm[&4];
        let first = curve.first().and_then(|p| p.accuracy);
        let last = curve.last().and_then(|p| p.accuracy);
        if let (Some(lo), Some(hi)) = (first, last) {
            assert!(
                hi >= lo - 0.05,
                "higher threshold should not lower accuracy much: {lo} -> {hi}"
            );
        }
    }

    #[test]
    fn best_coverage_helper() {
        let pts = vec![
            ConfidencePoint {
                label: "a".into(),
                accuracy: Some(0.9),
                coverage: Some(0.2),
            },
            ConfidencePoint {
                label: "b".into(),
                accuracy: Some(0.7),
                coverage: Some(0.8),
            },
            ConfidencePoint {
                label: "c".into(),
                accuracy: Some(0.95),
                coverage: Some(0.3),
            },
        ];
        assert_eq!(best_coverage_at_accuracy(&pts, 0.8), Some(0.3));
        assert_eq!(best_coverage_at_accuracy(&pts, 0.99), None);
    }
}
