//! Profiling hooks for the experiment drivers: per-figure stage
//! breakdowns via `fsmgen-obs` and serializable farm-run statistics
//! derived from [`FarmMetrics`].
//!
//! The figure drivers run their design sweeps farm-backed and attach a
//! [`FarmRunStats`] to their results; [`profiled`] wraps any driver call
//! to capture the per-stage [`PipelineProfile`] of everything it
//! designed and simulated.

use fsmgen_farm::FarmMetrics;
use fsmgen_obs::PipelineProfile;
use serde::{Deserialize, Serialize};

/// Re-export of the obs profiling hook: runs `f` with a collecting sink
/// installed on the current thread and returns `(result, profile)`.
///
/// Used by drivers and tests to record per-figure stage breakdowns and
/// assert budget attribution (a tight-budget design shows its rung
/// events attributed to the failing stage in the profile).
pub fn profiled<R>(f: impl FnOnce() -> R) -> (R, PipelineProfile) {
    fsmgen_obs::profiled(f)
}

/// Runs `f` with a stamped JSONL obs sink installed process-globally,
/// streaming every span/counter event — including those from farm
/// worker threads — to `path`. The file is exportable with
/// `fsmgen trace export`; lines carry `ts_us`/`tid` stamps and the sink
/// flushes at every root-span close, so even a crashed run leaves a
/// parseable trace.
///
/// # Errors
///
/// Returns the I/O error when `path` cannot be created.
pub fn with_trace_jsonl<R>(path: &std::path::Path, f: impl FnOnce() -> R) -> std::io::Result<R> {
    let file = std::fs::File::create(path)?;
    let sink = std::sync::Arc::new(fsmgen_obs::JsonlObsSink::new(std::io::BufWriter::new(file)));
    fsmgen_obs::install_global(
        std::sync::Arc::clone(&sink) as std::sync::Arc<dyn fsmgen_obs::ObsSink>
    );
    let result = f();
    fsmgen_obs::clear_global();
    sink.flush();
    Ok(result)
}

/// Serializable summary of the farm batches behind one figure: how much
/// the design cache helped and how fast the fleet ran. Derived from
/// [`FarmMetrics`] (which itself is not serde-serializable because the
/// vendored serde has no serializer for its nested types) and
/// accumulated across per-benchmark batches.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FarmRunStats {
    /// Design jobs submitted across all batches.
    pub jobs: usize,
    /// Jobs that produced a design.
    pub succeeded: usize,
    /// Jobs whose design degraded.
    pub degraded: usize,
    /// Design-cache hits against entries computed in this process.
    pub cache_hits: usize,
    /// Design-cache hits served warm from a persistent snapshot.
    pub snapshot_hits: usize,
    /// Design-cache misses across all batches.
    pub cache_misses: usize,
    /// Snapshot records skipped as corrupt while warm-starting.
    pub snapshot_skipped: usize,
    /// Summed batch wall clock in milliseconds.
    pub wall_ms: f64,
}

/// Wall-time of one identical simulation on each execution backend.
///
/// The backends are differentially tested bit-identical, so a figure
/// panel reports a single accuracy result plus these two times — the
/// compiled engine's win made visible per figure rather than only in
/// the bench suite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BackendTiming {
    /// Wall-time of the interpreted reference walk, in milliseconds.
    pub interpreted_ms: f64,
    /// Wall-time of the compiled transition-table path, in milliseconds.
    pub compiled_ms: f64,
}

impl BackendTiming {
    /// Runs `work` once per backend (interpreted first), timing each.
    #[must_use]
    pub fn measure(mut work: impl FnMut(fsmgen_exec::ExecBackend)) -> Self {
        let mut time = |backend| {
            let start = std::time::Instant::now();
            work(backend);
            start.elapsed().as_secs_f64() * 1e3
        };
        let interpreted_ms = time(fsmgen_exec::ExecBackend::Interpreted);
        let compiled_ms = time(fsmgen_exec::ExecBackend::Compiled);
        BackendTiming {
            interpreted_ms,
            compiled_ms,
        }
    }

    /// Interpreted over compiled wall-time; `None` when degenerate.
    #[must_use]
    pub fn speedup(&self) -> Option<f64> {
        (self.compiled_ms > 0.0 && self.interpreted_ms > 0.0)
            .then(|| self.interpreted_ms / self.compiled_ms)
    }

    /// One-line report suffix, e.g.
    /// `backends: interpreted 12.4 ms, compiled 3.1 ms (4.0x)`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        match self.speedup() {
            Some(s) => format!(
                "backends: interpreted {:.1} ms, compiled {:.1} ms ({s:.1}x)",
                self.interpreted_ms, self.compiled_ms
            ),
            None => "backends: not timed".to_string(),
        }
    }
}

impl FarmRunStats {
    /// Folds one batch's metrics into the running totals.
    pub fn accumulate(&mut self, metrics: &FarmMetrics) {
        self.jobs += metrics.jobs;
        self.succeeded += metrics.succeeded;
        self.degraded += metrics.degraded;
        self.cache_hits += metrics.cache.hits as usize;
        self.snapshot_hits += metrics.cache.snapshot_hits as usize;
        self.cache_misses += metrics.cache.misses as usize;
        self.snapshot_skipped += metrics.snapshot.skipped;
        self.wall_ms += metrics.batch_wall.as_secs_f64() * 1e3;
    }

    /// Cache hit rate across all batches (fresh and warm hits both
    /// count), 0.0 when nothing was looked up.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits + self.snapshot_hits;
        let lookups = hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Completed design jobs per second of summed batch wall clock, 0.0
    /// for an empty run.
    #[must_use]
    pub fn throughput_jobs_per_sec(&self) -> f64 {
        if self.wall_ms > 0.0 {
            self.succeeded as f64 / (self.wall_ms / 1e3)
        } else {
            0.0
        }
    }

    /// One-line report suffix, e.g.
    /// `farm: 12 jobs, 33.3% cache hits, 450.0 jobs/s`.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let warm = if self.snapshot_hits > 0 {
            format!(" ({} warm)", self.snapshot_hits)
        } else {
            String::new()
        };
        format!(
            "farm: {} jobs, {:.1}% cache hits{warm}, {:.1} jobs/s",
            self.jobs,
            100.0 * self.cache_hit_rate(),
            self.throughput_jobs_per_sec()
        )
    }
}

/// Warm-starts `farm` from `cache_file` (when set and present) before
/// running `f`, then persists the design cache back afterwards. A missing
/// or corrupt snapshot just means a cold start — never an error — which
/// lets the figure drivers treat persistence as a pure accelerator.
pub fn with_cache_snapshot<R>(
    farm: &fsmgen_farm::Farm,
    cache_file: Option<&std::path::Path>,
    f: impl FnOnce() -> R,
) -> R {
    if let Some(path) = cache_file {
        if path.exists() {
            let _ = farm.load_cache_snapshot(path);
        }
    }
    let result = f();
    if let Some(path) = cache_file {
        let _ = farm.save_cache_snapshot(path);
    }
    result
}

impl From<&FarmMetrics> for FarmRunStats {
    fn from(metrics: &FarmMetrics) -> Self {
        let mut stats = FarmRunStats::default();
        stats.accumulate(metrics);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::{DesignBudget, Designer};
    use fsmgen_traces::BitTrace;

    fn trace() -> BitTrace {
        "0011".repeat(16).parse().unwrap()
    }

    #[test]
    fn profiled_records_every_pipeline_stage() {
        let (design, profile) = profiled(|| Designer::new(4).design_from_trace(&trace()));
        assert!(design.is_ok());
        let names = profile.stage_names();
        for stage in [
            "markov", "patterns", "minimize", "regex", "nfa", "dfa", "hopcroft", "reduce",
        ] {
            assert!(names.iter().any(|n| n == stage), "missing stage {stage}");
        }
        // Stage walls account for nearly all of the design root's time.
        assert!(
            profile.coverage() > 0.5,
            "coverage {:.3} too low",
            profile.coverage()
        );
        assert!(profile.rungs().is_empty());
    }

    #[test]
    fn profiled_attributes_budget_degradation_to_the_failing_stage() {
        let budget = DesignBudget {
            max_minterms: Some(1),
            ..DesignBudget::default()
        };
        let (design, profile) =
            profiled(|| Designer::new(4).budget(budget).design_from_trace(&trace()));
        assert!(design.is_ok());
        assert!(!profile.rungs().is_empty());
        // The minterm budget fails in the minimizer, so every rung is
        // attributed there.
        for rung in profile.rungs() {
            assert_eq!(rung.stage, "minimize", "misattributed rung {rung:?}");
        }
    }

    #[test]
    fn farm_run_stats_accumulate_and_rate() {
        let mut stats = FarmRunStats {
            jobs: 4,
            succeeded: 4,
            degraded: 0,
            cache_hits: 1,
            snapshot_hits: 0,
            cache_misses: 3,
            snapshot_skipped: 0,
            wall_ms: 10.0,
        };
        let more = FarmRunStats {
            jobs: 2,
            succeeded: 1,
            degraded: 1,
            cache_hits: 1,
            snapshot_hits: 0,
            cache_misses: 1,
            snapshot_skipped: 0,
            wall_ms: 10.0,
        };
        // Accumulate via a round-trip through FarmMetrics is covered in
        // the fig tests; here just the arithmetic.
        stats.jobs += more.jobs;
        stats.succeeded += more.succeeded;
        stats.cache_hits += more.cache_hits;
        stats.cache_misses += more.cache_misses;
        stats.wall_ms += more.wall_ms;
        assert!((stats.cache_hit_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((stats.throughput_jobs_per_sec() - 250.0).abs() < 1e-9);
        assert!(stats.summary_line().contains("6 jobs"));
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let stats = FarmRunStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        assert_eq!(stats.throughput_jobs_per_sec(), 0.0);
    }
}
