//! Streaming exporters from the obs JSONL stream to visualization
//! formats: Chrome `trace_event` JSON (chrome://tracing, Perfetto) and
//! folded flamegraph stacks (inferno, speedscope).
//!
//! Both exporters read line-by-line and hold only the per-thread stacks
//! of *open* spans, so memory stays bounded no matter how large the
//! input trace is. Malformed input follows the durable store's
//! skip-and-count discipline: corrupt lines and a torn final line are
//! skipped and tallied in the [`ExportReport`] by default, or turned
//! into the first error in `--strict` mode. Exporters never panic on
//! hostile input.
//!
//! ## Timestamps
//!
//! Lines written by [`JsonlObsSink`](crate::JsonlObsSink) carry
//! `"ts_us"` / `"tid"` stamps and are laid out on that real timeline.
//! Legacy (unstamped) traces still export: a per-thread synthetic clock
//! advances as spans close, preserving ordering and durations even
//! though absolute placement is reconstructed.
//!
//! ## Event mapping
//!
//! | JSONL `type` | Chrome phase | Folded output |
//! |--------------|--------------|---------------|
//! | `span_start` | (opens a frame) | (opens a frame) |
//! | `span_end`   | `X` complete event (`ts`, `dur`) | one `a;b;c self_us` line |
//! | `counter`    | `C` counter series | — |
//! | `rung`       | `i` instant (process scope) | — |
//! | `mark`       | `i` instant (thread scope) | — |

use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Per-thread open-span stacks deeper than this are truncated (the
/// overflowing span is dropped and counted). Real pipelines nest a
/// handful deep; this is a hostile-input guard, not a working limit.
const MAX_DEPTH: usize = 512;

/// Output format selector for [`export`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Chrome `trace_event` JSON (`{"displayTimeUnit": "ms", "traceEvents": [...]}`).
    Chrome,
    /// Folded flamegraph stacks (`root;child;leaf self_us` lines).
    Folded,
}

/// Knobs shared by both exporters.
#[derive(Debug, Clone, Default)]
pub struct ExportOptions {
    /// Fail on the first corrupt or torn line instead of skip-and-count.
    pub strict: bool,
    /// Keep only spans whose enclosing stack (including themselves)
    /// contains this stage name; counters/rungs are kept when attributed
    /// to it. `None` keeps everything.
    pub stage: Option<String>,
    /// Drop spans shorter than this many microseconds (their time still
    /// attributes to the parent's non-self time).
    pub min_us: u64,
}

/// What an export pass saw, in the store's skip-and-count spirit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExportReport {
    /// Input lines consumed (including skipped ones).
    pub lines: u64,
    /// Well-formed events decoded.
    pub events: u64,
    /// Spans emitted to the output (chrome `X` events / folded lines).
    pub spans: u64,
    /// Counter samples emitted (chrome only; folded ignores counters).
    pub counters: u64,
    /// Instant events emitted (rungs + marks; chrome only).
    pub instants: u64,
    /// Syntactically corrupt lines skipped.
    pub corrupt: u64,
    /// Torn final lines (EOF with no trailing newline) skipped.
    pub truncated: u64,
    /// Spans still open at EOF (start seen, end missing).
    pub unclosed: u64,
    /// Spans dropped by `--stage` / `--min-us` filters.
    pub filtered: u64,
    /// Spans dropped by the per-thread depth guard.
    pub depth_overflow: u64,
}

impl fmt::Display for ExportReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} line(s), {} event(s), {} span(s) emitted, {} counter sample(s), \
             {} instant(s), {} corrupt line(s) skipped, {} torn tail(s), \
             {} unclosed span(s), {} filtered, {} depth-capped",
            self.lines,
            self.events,
            self.spans,
            self.counters,
            self.instants,
            self.corrupt,
            self.truncated,
            self.unclosed,
            self.filtered,
            self.depth_overflow
        )
    }
}

/// Why an export pass stopped.
#[derive(Debug)]
pub enum ExportError {
    /// Reading the input or writing the output failed.
    Io(std::io::Error),
    /// Strict mode hit a corrupt or torn line.
    Corrupt {
        /// 1-based input line number.
        line: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Io(err) => write!(f, "i/o error: {err}"),
            ExportError::Corrupt { line, reason } => {
                write!(f, "corrupt trace line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ExportError {}

impl From<std::io::Error> for ExportError {
    fn from(err: std::io::Error) -> Self {
        ExportError::Io(err)
    }
}

// ---------------------------------------------------------------------
// Flat-object JSON line parsing (no external deps; the schema is flat).
// ---------------------------------------------------------------------

/// One decoded JSONL value: the schema only needs these three shapes.
#[derive(Debug, Clone, PartialEq)]
enum FieldValue {
    Str(String),
    Num(f64),
    Other,
}

/// Parses one flat JSON object line into key/value pairs. Nested
/// objects/arrays are rejected (the obs schema is flat); unknown keys
/// are kept so additive fields pass through.
fn parse_flat_object(line: &str) -> Result<Vec<(String, FieldValue)>, String> {
    let mut chars = line.char_indices().peekable();
    let bytes = line.as_bytes();
    let mut fields = Vec::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>) {
        while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err("expected '\"'".into()),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape".into()),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".into()),
            }
        }
    }

    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        _ => return Err("expected '{'".into()),
    }
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ':')) => {}
                _ => return Err("expected ':'".into()),
            }
            skip_ws(&mut chars);
            let value = match chars.peek().copied() {
                Some((_, '"')) => FieldValue::Str(parse_string(&mut chars)?),
                Some((start, c)) if c == '-' || c.is_ascii_digit() => {
                    let mut end = start;
                    while let Some(&(i, c)) = chars.peek() {
                        if c == '-'
                            || c == '+'
                            || c == '.'
                            || c == 'e'
                            || c == 'E'
                            || c.is_ascii_digit()
                        {
                            end = i + c.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = std::str::from_utf8(&bytes[start..end])
                        .map_err(|_| "bad number".to_string())?;
                    FieldValue::Num(text.parse::<f64>().map_err(|_| "bad number".to_string())?)
                }
                Some((_, 't')) | Some((_, 'f')) | Some((_, 'n')) => {
                    // true / false / null — consume the keyword.
                    let (word, len) = match chars.peek() {
                        Some((_, 't')) => ("true", 4),
                        Some((_, 'f')) => ("false", 5),
                        _ => ("null", 4),
                    };
                    for expected in word.chars().take(len) {
                        match chars.next() {
                            Some((_, c)) if c == expected => {}
                            _ => return Err("bad literal".into()),
                        }
                    }
                    FieldValue::Other
                }
                _ => return Err("unsupported value".into()),
            };
            fields.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some((_, ',')) => {}
                Some((_, '}')) => break,
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing garbage after object".into());
    }
    Ok(fields)
}

/// A decoded schema-v1 event plus its optional stamps.
#[derive(Debug, Clone, PartialEq)]
struct ParsedLine {
    kind: ParsedKind,
    ts_us: Option<u64>,
    tid: u64,
}

#[derive(Debug, Clone, PartialEq)]
enum ParsedKind {
    SpanStart {
        name: String,
    },
    SpanEnd {
        name: String,
        wall_us: u64,
    },
    Counter {
        span: String,
        name: String,
        value: u64,
    },
    Rung {
        rung: String,
        stage: String,
        reason: String,
    },
    Mark {
        scope: String,
        name: String,
        detail: String,
    },
}

fn field_str(fields: &[(String, FieldValue)], key: &str) -> Option<String> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Str(s) => Some(s.clone()),
            _ => None,
        })
}

fn field_num(fields: &[(String, FieldValue)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Num(n) => Some(*n),
            _ => None,
        })
}

/// Decodes one line; `Ok(None)` for blank lines.
fn parse_line(line: &str) -> Result<Option<ParsedLine>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let fields = parse_flat_object(line)?;
    let version = field_num(&fields, "v").ok_or("missing \"v\"")?;
    if version != f64::from(crate::SCHEMA_VERSION) {
        return Err(format!("unsupported schema version {version}"));
    }
    let kind = field_str(&fields, "type").ok_or("missing \"type\"")?;
    let ts_us = field_num(&fields, "ts_us").map(|n| n.max(0.0) as u64);
    let tid = field_num(&fields, "tid")
        .map(|n| n.max(0.0) as u64)
        .unwrap_or(0);
    let need = |key: &str| field_str(&fields, key).ok_or_else(|| format!("missing \"{key}\""));
    let kind = match kind.as_str() {
        "span_start" => ParsedKind::SpanStart {
            name: need("name")?,
        },
        "span_end" => {
            let wall_ms = field_num(&fields, "wall_ms").ok_or("missing \"wall_ms\"")?;
            ParsedKind::SpanEnd {
                name: need("name")?,
                wall_us: (wall_ms.max(0.0) * 1e3).round() as u64,
            }
        }
        "counter" => ParsedKind::Counter {
            span: need("span")?,
            name: need("name")?,
            value: field_num(&fields, "value")
                .ok_or("missing \"value\"")?
                .max(0.0) as u64,
        },
        "rung" => ParsedKind::Rung {
            rung: need("rung")?,
            stage: need("stage")?,
            reason: need("reason")?,
        },
        "mark" => ParsedKind::Mark {
            scope: need("scope")?,
            name: need("name")?,
            detail: need("detail")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(Some(ParsedLine { kind, ts_us, tid }))
}

// ---------------------------------------------------------------------
// Shared streaming state
// ---------------------------------------------------------------------

/// One open span on a thread's stack.
#[derive(Debug)]
struct Frame {
    name: String,
    start_us: u64,
    /// Wall time already attributed to closed children, for self-time.
    children_us: u64,
}

/// Per-thread reconstruction state.
#[derive(Debug, Default)]
struct TidState {
    stack: Vec<Frame>,
    /// Synthetic clock for unstamped traces: the earliest µs the next
    /// event on this thread may occupy.
    cursor_us: u64,
    /// Open spans beyond [`MAX_DEPTH`] are not stacked; this counts how
    /// many starts are pending so their ends can be matched and dropped.
    overflow: u64,
}

/// Escapes a string for the chrome JSON output.
fn js(s: &str) -> String {
    crate::event::json_string(s)
}

/// Emission backend: chrome events or folded lines.
trait EmitBackend {
    fn begin<W: Write>(&mut self, out: &mut W) -> std::io::Result<()>;
    #[allow(clippy::too_many_arguments)]
    fn span<W: Write>(
        &mut self,
        out: &mut W,
        stack_names: &[&str],
        tid: u64,
        start_us: u64,
        wall_us: u64,
        self_us: u64,
    ) -> std::io::Result<()>;
    fn counter<W: Write>(
        &mut self,
        out: &mut W,
        span: &str,
        name: &str,
        value: u64,
        ts_us: u64,
        tid: u64,
    ) -> std::io::Result<()>;
    #[allow(clippy::too_many_arguments)]
    fn instant<W: Write>(
        &mut self,
        out: &mut W,
        name: &str,
        cat: &str,
        args_json: &str,
        process_scope: bool,
        ts_us: u64,
        tid: u64,
    ) -> std::io::Result<()>;
    fn end<W: Write>(&mut self, out: &mut W) -> std::io::Result<()>;
}

/// Chrome `trace_event` backend: one JSON document, events streamed into
/// the `traceEvents` array as they decode.
#[derive(Debug, Default)]
struct ChromeBackend {
    emitted: bool,
}

impl ChromeBackend {
    fn sep<W: Write>(&mut self, out: &mut W) -> std::io::Result<()> {
        if self.emitted {
            out.write_all(b",\n")?;
        } else {
            out.write_all(b"\n")?;
        }
        self.emitted = true;
        Ok(())
    }
}

impl EmitBackend for ChromeBackend {
    fn begin<W: Write>(&mut self, out: &mut W) -> std::io::Result<()> {
        out.write_all(b"{\"displayTimeUnit\": \"ms\", \"traceEvents\": [")
    }

    fn span<W: Write>(
        &mut self,
        out: &mut W,
        stack_names: &[&str],
        tid: u64,
        start_us: u64,
        wall_us: u64,
        self_us: u64,
    ) -> std::io::Result<()> {
        self.sep(out)?;
        let name = stack_names.last().copied().unwrap_or("?");
        write!(
            out,
            "{{\"name\": {}, \"cat\": \"span\", \"ph\": \"X\", \"ts\": {start_us}, \
             \"dur\": {wall_us}, \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"self_us\": {self_us}}}}}",
            js(name)
        )
    }

    fn counter<W: Write>(
        &mut self,
        out: &mut W,
        span: &str,
        name: &str,
        value: u64,
        ts_us: u64,
        tid: u64,
    ) -> std::io::Result<()> {
        self.sep(out)?;
        write!(
            out,
            "{{\"name\": {}, \"ph\": \"C\", \"ts\": {ts_us}, \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"value\": {value}}}}}",
            js(&format!("{span}.{name}"))
        )
    }

    fn instant<W: Write>(
        &mut self,
        out: &mut W,
        name: &str,
        cat: &str,
        args_json: &str,
        process_scope: bool,
        ts_us: u64,
        tid: u64,
    ) -> std::io::Result<()> {
        self.sep(out)?;
        let scope = if process_scope { "p" } else { "t" };
        write!(
            out,
            "{{\"name\": {}, \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"{scope}\", \
             \"ts\": {ts_us}, \"pid\": 1, \"tid\": {tid}, \"args\": {args_json}}}",
            js(name)
        )
    }

    fn end<W: Write>(&mut self, out: &mut W) -> std::io::Result<()> {
        out.write_all(b"\n]}\n")
    }
}

/// Folded flamegraph backend: one `a;b;c self_us` line per closed span.
/// Repeated stacks are summed by the downstream tool (inferno), so no
/// aggregation state is needed here — memory stays flat.
#[derive(Debug, Default)]
struct FoldedBackend;

impl EmitBackend for FoldedBackend {
    fn begin<W: Write>(&mut self, _out: &mut W) -> std::io::Result<()> {
        Ok(())
    }

    fn span<W: Write>(
        &mut self,
        out: &mut W,
        stack_names: &[&str],
        _tid: u64,
        _start_us: u64,
        _wall_us: u64,
        self_us: u64,
    ) -> std::io::Result<()> {
        // Semicolons inside stage names would corrupt the stack
        // separator; stage names are static identifiers, but guard anyway.
        let mut first = true;
        for name in stack_names {
            if !first {
                out.write_all(b";")?;
            }
            first = false;
            out.write_all(name.replace([';', ' '], "_").as_bytes())?;
        }
        writeln!(out, " {self_us}")
    }

    fn counter<W: Write>(
        &mut self,
        _out: &mut W,
        _span: &str,
        _name: &str,
        _value: u64,
        _ts_us: u64,
        _tid: u64,
    ) -> std::io::Result<()> {
        Ok(())
    }

    fn instant<W: Write>(
        &mut self,
        _out: &mut W,
        _name: &str,
        _cat: &str,
        _args_json: &str,
        _process_scope: bool,
        _ts_us: u64,
        _tid: u64,
    ) -> std::io::Result<()> {
        Ok(())
    }

    fn end<W: Write>(&mut self, _out: &mut W) -> std::io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn run_export<B: EmitBackend, R: BufRead, W: Write>(
    mut backend: B,
    input: &mut R,
    out: &mut W,
    options: &ExportOptions,
) -> Result<ExportReport, ExportError> {
    let mut report = ExportReport::default();
    let mut tids: HashMap<u64, TidState> = HashMap::new();
    backend.begin(out)?;

    let mut line = String::new();
    loop {
        line.clear();
        let read = input.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        report.lines += 1;
        let complete = line.ends_with('\n');
        let parsed = match parse_line(&line) {
            Ok(None) => continue,
            Ok(Some(parsed)) => parsed,
            Err(reason) => {
                if complete {
                    report.corrupt += 1;
                } else {
                    // EOF mid-line: a torn write, not corruption.
                    report.truncated += 1;
                }
                if options.strict {
                    return Err(ExportError::Corrupt {
                        line: report.lines,
                        reason,
                    });
                }
                continue;
            }
        };
        report.events += 1;
        let state = tids.entry(parsed.tid).or_default();

        match parsed.kind {
            ParsedKind::SpanStart { name } => {
                if state.stack.len() >= MAX_DEPTH {
                    state.overflow += 1;
                    report.depth_overflow += 1;
                    continue;
                }
                let start_us = parsed.ts_us.unwrap_or(state.cursor_us);
                state.cursor_us = state.cursor_us.max(start_us);
                state.stack.push(Frame {
                    name,
                    start_us,
                    children_us: 0,
                });
            }
            ParsedKind::SpanEnd { name, wall_us } => {
                if state.overflow > 0 {
                    state.overflow -= 1;
                    continue;
                }
                // An unmatched end (e.g. the start was in a lost buffer)
                // synthesizes a frame so the span still appears.
                let frame = match state.stack.pop() {
                    Some(frame) if frame.name == name => frame,
                    Some(other) => {
                        // Name mismatch: treat the popped frame as
                        // abandoned (its end was lost) and synthesize.
                        report.unclosed += 1;
                        let _ = other;
                        Frame {
                            name,
                            start_us: parsed
                                .ts_us
                                .map(|end| end.saturating_sub(wall_us))
                                .unwrap_or(state.cursor_us),
                            children_us: 0,
                        }
                    }
                    None => Frame {
                        name,
                        start_us: parsed
                            .ts_us
                            .map(|end| end.saturating_sub(wall_us))
                            .unwrap_or(state.cursor_us),
                        children_us: 0,
                    },
                };
                let end_us = parsed
                    .ts_us
                    .unwrap_or_else(|| frame.start_us.saturating_add(wall_us));
                state.cursor_us = state.cursor_us.max(end_us);
                if let Some(parent) = state.stack.last_mut() {
                    parent.children_us = parent.children_us.saturating_add(wall_us);
                }
                let self_us = wall_us.saturating_sub(frame.children_us);
                let mut names: Vec<&str> = state.stack.iter().map(|f| f.name.as_str()).collect();
                names.push(frame.name.as_str());
                let keep_stage = options
                    .stage
                    .as_deref()
                    .map(|stage| names.contains(&stage))
                    .unwrap_or(true);
                if !keep_stage || wall_us < options.min_us {
                    report.filtered += 1;
                } else {
                    backend.span(out, &names, parsed.tid, frame.start_us, wall_us, self_us)?;
                    report.spans += 1;
                }
            }
            ParsedKind::Counter { span, name, value } => {
                let keep = options
                    .stage
                    .as_deref()
                    .map(|stage| span == stage)
                    .unwrap_or(true);
                if keep {
                    let ts = parsed.ts_us.unwrap_or(state.cursor_us);
                    backend.counter(out, &span, &name, value, ts, parsed.tid)?;
                    report.counters += 1;
                }
            }
            ParsedKind::Rung {
                rung,
                stage,
                reason,
            } => {
                let keep = options
                    .stage
                    .as_deref()
                    .map(|want| stage == want)
                    .unwrap_or(true);
                if keep {
                    let ts = parsed.ts_us.unwrap_or(state.cursor_us);
                    let args =
                        format!("{{\"stage\": {}, \"reason\": {}}}", js(&stage), js(&reason));
                    backend.instant(
                        out,
                        &format!("rung: {rung}"),
                        "rung",
                        &args,
                        true,
                        ts,
                        parsed.tid,
                    )?;
                    report.instants += 1;
                }
            }
            ParsedKind::Mark {
                scope,
                name,
                detail,
            } => {
                if options.stage.is_none() {
                    let ts = parsed.ts_us.unwrap_or(state.cursor_us);
                    let args = format!("{{\"detail\": {}}}", js(&detail));
                    backend.instant(
                        out,
                        &format!("{scope}/{name}"),
                        "mark",
                        &args,
                        false,
                        ts,
                        parsed.tid,
                    )?;
                    report.instants += 1;
                }
            }
        }
    }

    for state in tids.values() {
        report.unclosed += state.stack.len() as u64 + state.overflow;
    }
    backend.end(out)?;
    out.flush()?;
    Ok(report)
}

/// Converts an obs JSONL stream into Chrome `trace_event` JSON.
///
/// Streaming: events are written as they decode; memory is bounded by
/// the deepest open-span stack, not the input size.
pub fn export_chrome<R: BufRead, W: Write>(
    input: &mut R,
    out: &mut W,
    options: &ExportOptions,
) -> Result<ExportReport, ExportError> {
    run_export(ChromeBackend::default(), input, out, options)
}

/// Converts an obs JSONL stream into folded flamegraph stacks
/// (`root;child;leaf self_us`, one line per closed span) for inferno /
/// speedscope. Self time is wall minus closed-children wall, clamped at
/// zero.
pub fn export_folded<R: BufRead, W: Write>(
    input: &mut R,
    out: &mut W,
    options: &ExportOptions,
) -> Result<ExportReport, ExportError> {
    run_export(FoldedBackend, input, out, options)
}

/// Format-dispatching convenience wrapper over the two exporters.
pub fn export<R: BufRead, W: Write>(
    format: ExportFormat,
    input: &mut R,
    out: &mut W,
    options: &ExportOptions,
) -> Result<ExportReport, ExportError> {
    match format {
        ExportFormat::Chrome => export_chrome(input, out, options),
        ExportFormat::Folded => export_folded(input, out, options),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsEvent;
    use std::time::Duration;

    fn sample_trace() -> String {
        // design { markov { } minimize { } } + counter + mark, stamped.
        let mut out = String::new();
        let events: [(ObsEvent, u64); 7] = [
            (
                ObsEvent::SpanStart {
                    name: "design",
                    id: 1,
                },
                0,
            ),
            (
                ObsEvent::SpanStart {
                    name: "markov",
                    id: 2,
                },
                10,
            ),
            (
                ObsEvent::Counter {
                    span: "markov",
                    name: "observations",
                    value: 64,
                },
                12,
            ),
            (
                ObsEvent::SpanEnd {
                    name: "markov",
                    id: 2,
                    wall: Duration::from_micros(40),
                },
                50,
            ),
            (
                ObsEvent::SpanStart {
                    name: "minimize",
                    id: 3,
                },
                60,
            ),
            (
                ObsEvent::SpanEnd {
                    name: "minimize",
                    id: 3,
                    wall: Duration::from_micros(30),
                },
                90,
            ),
            (
                ObsEvent::SpanEnd {
                    name: "design",
                    id: 1,
                    wall: Duration::from_micros(100),
                },
                100,
            ),
        ];
        for (event, ts) in &events {
            out.push_str(&event.to_jsonl_stamped(*ts, 1));
            out.push('\n');
        }
        out.push_str(
            &ObsEvent::Mark {
                scope: "farm".into(),
                name: "job_finished".into(),
                detail: "job 0".into(),
            }
            .to_jsonl_stamped(110, 1),
        );
        out.push('\n');
        out
    }

    fn chrome(input: &str, options: &ExportOptions) -> (String, ExportReport) {
        let mut out = Vec::new();
        let report = export_chrome(&mut input.as_bytes(), &mut out, options).unwrap();
        (String::from_utf8(out).unwrap(), report)
    }

    fn folded(input: &str, options: &ExportOptions) -> (String, ExportReport) {
        let mut out = Vec::new();
        let report = export_folded(&mut input.as_bytes(), &mut out, options).unwrap();
        (String::from_utf8(out).unwrap(), report)
    }

    #[test]
    fn chrome_emits_every_span_once() {
        let (text, report) = chrome(&sample_trace(), &ExportOptions::default());
        assert_eq!(report.spans, 3);
        assert_eq!(report.counters, 1);
        assert_eq!(report.instants, 1);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.unclosed, 0);
        assert_eq!(text.matches("\"ph\": \"X\"").count(), 3);
        assert!(text.starts_with("{\"displayTimeUnit\": \"ms\""), "{text}");
        assert!(text.contains("\"name\": \"markov\""), "{text}");
        assert!(text.contains("\"ts\": 10, \"dur\": 40"), "{text}");
        assert!(text.contains("\"markov.observations\""), "{text}");
    }

    #[test]
    fn folded_lines_match_span_count_and_self_time() {
        let (text, report) = folded(&sample_trace(), &ExportOptions::default());
        assert_eq!(report.spans, 3);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.contains(&"design;markov 40"), "{text}");
        assert!(lines.contains(&"design;minimize 30"), "{text}");
        // design self = 100 - 40 - 30.
        assert!(lines.contains(&"design 30"), "{text}");
        for line in &lines {
            let value: i64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= 0, "{line}");
        }
    }

    #[test]
    fn unstamped_traces_reconstruct_a_synthetic_timeline() {
        let stamped = sample_trace();
        // Strip the stamps: rebuild from plain to_jsonl lines.
        let unstamped: String = stamped
            .lines()
            .map(|l| {
                let cut = l.find(", \"ts_us\":").unwrap();
                format!("{}}}\n", &l[..cut])
            })
            .collect();
        let (text, report) = chrome(&unstamped, &ExportOptions::default());
        assert_eq!(report.spans, 3);
        // Synthetic clock: markov occupies [0, 40), minimize [40, 70).
        assert!(text.contains("\"ts\": 0, \"dur\": 40"), "{text}");
        assert!(text.contains("\"ts\": 40, \"dur\": 30"), "{text}");
        let (folded_text, folded_report) = folded(&unstamped, &ExportOptions::default());
        assert_eq!(folded_report.spans, 3);
        assert!(folded_text.lines().count() == 3, "{folded_text}");
    }

    #[test]
    fn corrupt_lines_skip_and_count() {
        let mut input = sample_trace();
        input.insert_str(0, "{\"garbage\": tru\n");
        input.push_str("not json at all\n");
        let (_, report) = chrome(&input, &ExportOptions::default());
        assert_eq!(report.corrupt, 2);
        assert_eq!(report.spans, 3);
    }

    #[test]
    fn torn_tail_counts_as_truncated_not_corrupt() {
        let mut input = sample_trace();
        input.push_str("{\"v\": 1, \"type\": \"span_st"); // no newline
        let (_, report) = chrome(&input, &ExportOptions::default());
        assert_eq!(report.truncated, 1);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.spans, 3);
    }

    #[test]
    fn complete_final_line_without_newline_is_fine() {
        let input = sample_trace();
        let trimmed = input.trim_end_matches('\n');
        let (_, report) = chrome(trimmed, &ExportOptions::default());
        assert_eq!(report.truncated, 0);
        assert_eq!(report.corrupt, 0);
        assert_eq!(report.spans, 3);
    }

    #[test]
    fn strict_mode_errors_on_first_corrupt_line() {
        let mut input = String::from("junk{{{\n");
        input.push_str(&sample_trace());
        let options = ExportOptions {
            strict: true,
            ..ExportOptions::default()
        };
        let mut out = Vec::new();
        let err = export_chrome(&mut input.as_bytes(), &mut out, &options).unwrap_err();
        match err {
            ExportError::Corrupt { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn stage_filter_keeps_matching_subtrees() {
        let options = ExportOptions {
            stage: Some("markov".into()),
            ..ExportOptions::default()
        };
        let (text, report) = folded(&sample_trace(), &options);
        // Only the markov span's stack contains "markov"; design's own
        // close and minimize are filtered.
        assert_eq!(report.spans, 1);
        assert_eq!(report.filtered, 2);
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("design;markov "), "{text}");
    }

    #[test]
    fn min_us_filter_drops_short_spans() {
        let options = ExportOptions {
            min_us: 50,
            ..ExportOptions::default()
        };
        let (_, report) = chrome(&sample_trace(), &options);
        // markov (40 µs) and minimize (30 µs) drop; design (100 µs) stays.
        assert_eq!(report.spans, 1);
        assert_eq!(report.filtered, 2);
    }

    #[test]
    fn unmatched_end_is_synthesized_and_counted() {
        let line = ObsEvent::SpanEnd {
            name: "orphan",
            id: 99,
            wall: Duration::from_micros(25),
        }
        .to_jsonl_stamped(200, 3);
        let (text, report) = chrome(&format!("{line}\n"), &ExportOptions::default());
        assert_eq!(report.spans, 1);
        assert!(text.contains("\"ts\": 175, \"dur\": 25"), "{text}");
    }

    #[test]
    fn unclosed_spans_are_reported() {
        let line = ObsEvent::SpanStart {
            name: "design",
            id: 1,
        }
        .to_jsonl_stamped(0, 1);
        let (_, report) = chrome(&format!("{line}\n"), &ExportOptions::default());
        assert_eq!(report.unclosed, 1);
        assert_eq!(report.spans, 0);
    }

    #[test]
    fn depth_guard_drops_hostile_nesting_without_panicking() {
        let mut input = String::new();
        for i in 0..(MAX_DEPTH + 10) {
            input.push_str(
                &ObsEvent::SpanStart {
                    name: "deep",
                    id: i as u64,
                }
                .to_jsonl_stamped(i as u64, 1),
            );
            input.push('\n');
        }
        for i in (0..(MAX_DEPTH + 10)).rev() {
            input.push_str(
                &ObsEvent::SpanEnd {
                    name: "deep",
                    id: i as u64,
                    wall: Duration::from_micros(1),
                }
                .to_jsonl_stamped((MAX_DEPTH + 20 + i) as u64, 1),
            );
            input.push('\n');
        }
        let (_, report) = chrome(&input, &ExportOptions::default());
        assert_eq!(report.depth_overflow, 10);
        assert_eq!(report.spans, MAX_DEPTH as u64);
        assert_eq!(report.unclosed, 0);
    }

    #[test]
    fn threads_get_independent_tracks() {
        let mut input = String::new();
        for tid in [1u64, 2] {
            input.push_str(
                &ObsEvent::SpanStart {
                    name: "design",
                    id: tid,
                }
                .to_jsonl_stamped(0, tid),
            );
            input.push('\n');
        }
        for tid in [1u64, 2] {
            input.push_str(
                &ObsEvent::SpanEnd {
                    name: "design",
                    id: tid,
                    wall: Duration::from_micros(5),
                }
                .to_jsonl_stamped(5, tid),
            );
            input.push('\n');
        }
        let (text, report) = chrome(&input, &ExportOptions::default());
        assert_eq!(report.spans, 2);
        assert!(text.contains("\"tid\": 1"), "{text}");
        assert!(text.contains("\"tid\": 2"), "{text}");
    }

    #[test]
    fn report_display_mentions_corrupt_count() {
        let report = ExportReport {
            corrupt: 1,
            ..ExportReport::default()
        };
        assert!(report.to_string().contains("1 corrupt"), "{report}");
    }
}
