//! Lightweight span/event observability for the fsmgen design flow.
//!
//! The paper's pipeline is a fixed sequence of stages (Markov model →
//! pattern sets → logic minimization → regex → NFA → DFA → Hopcroft →
//! start-state reduction → Moore predictor). This crate gives every stage
//! a name and a wall clock without pulling in an external `tracing`
//! dependency: library crates emit [`ObsEvent`]s through a tiny global
//! recorder, and anything interested installs an [`ObsSink`] to receive
//! them.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero disabled cost.** With no sink installed every
//!    instrumentation call is a single relaxed atomic load; no
//!    timestamps are taken and no allocation happens. The
//!    `farm_throughput` benchmark pins this with an assertion.
//! 2. **No dependencies.** The crate sits below `fsmgen-logicmin` (the
//!    previously dependency-free leaf) so every layer of the workspace
//!    can emit events.
//! 3. **Thread-scoped by default.** [`recorder::install`] wires a sink
//!    to the current thread only (tests run in parallel);
//!    [`recorder::install_global`] additionally covers worker threads
//!    (the farm, CLI trace export).
//!
//! The event stream aggregates into a [`PipelineProfile`] with text,
//! JSONL-event and JSON-summary renderers; all JSON carries an explicit
//! schema version ([`SCHEMA_VERSION`]). For tail latency (which
//! sum-only stage timings hide) there is a lock-free fixed-bucket
//! [`LatencyHistogram`] with nearest-rank p50/p95/p99 reads.
//!
//! JSONL traces written by [`JsonlObsSink`] (which stamps `ts_us`/`tid`
//! and flushes whenever a thread's root span closes) convert to Chrome
//! `trace_event` JSON and folded flamegraph stacks through the
//! streaming exporters in [`trace`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod event;
mod hist;
pub mod json;
mod profile;
pub mod recorder;
mod sink;
pub mod trace;
mod window;

pub use event::{ObsEvent, SCHEMA_VERSION};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use profile::{PipelineProfile, RungRecord, StageProfile};
pub use recorder::{
    clear_global, counter, emit, enabled, install, install_global, mark, profiled, profiled_events,
    rung, span, SinkGuard, Span,
};
pub use sink::{current_tid, CollectingObsSink, JsonlObsSink, NullObsSink, ObsSink};
pub use trace::{ExportError, ExportFormat, ExportOptions, ExportReport};
pub use window::{CollapseEvent, CollapseMonitor, WindowedAccuracy};
