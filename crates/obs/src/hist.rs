//! A fixed-bucket latency histogram for tail quantiles.
//!
//! Sum-only timings (the stage profiles' totals) hide the tail; this
//! histogram records every observation into one of 32 power-of-two
//! microsecond buckets with relaxed atomics, so concurrent writers
//! (e.g. the design service's connection handlers) never contend on a
//! lock and readers get p50/p95/p99 within a factor of two.
//!
//! Bucket `i` holds values `v` (in µs) with `2^(i-1) <= v < 2^i`
//! (bucket 0 holds `v = 0`); the last bucket absorbs everything from
//! ~36 minutes up. Quantiles are nearest-rank over the bucket counts
//! and report the matched bucket's inclusive upper bound — a
//! conservative (never under-reporting) estimate.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: 0, then 31 power-of-two decades of microseconds.
const BUCKETS: usize = 32;

/// A concurrent fixed-bucket histogram of durations, in microseconds.
///
/// Cheap enough for per-request recording: one saturating conversion
/// and two relaxed atomic increments per [`record`](Self::record).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }
}

/// The bucket index for a value in microseconds: 0 for 0, otherwise
/// `bit_length(us)` clamped into the table.
fn bucket_index(us: u64) -> usize {
    ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The inclusive upper bound (µs) of bucket `i`.
fn bucket_upper_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i == BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts, for consistent
    /// multi-quantile reads.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// The `q`-quantile (e.g. `0.95`) in microseconds; see
    /// [`HistogramSnapshot::quantile_us`]. Prefer taking one
    /// [`snapshot`](Self::snapshot) when reading several quantiles.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        self.snapshot().quantile_us(q)
    }
}

/// A plain (non-atomic) copy of a histogram's buckets.
///
/// Besides being the consistent-read view of a concurrent
/// [`LatencyHistogram`], it doubles as a single-threaded accumulator:
/// [`record`](Self::record) files observations into the same bucket
/// layout without atomics, which is what per-stage profile aggregation
/// uses (one event stream, one thread, no contention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        HistogramSnapshot::default()
    }

    /// Records one observation (single-threaded counterpart of
    /// [`LatencyHistogram::record`], same buckets and quantile rules).
    pub fn record(&mut self, latency: Duration) {
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Total observations in the snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The nearest-rank `q`-quantile in microseconds, reported as the
    /// matched bucket's inclusive upper bound (conservative). Returns 0
    /// for an empty snapshot; `q` is clamped to `[0, 1]`.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_us(i);
            }
        }
        bucket_upper_us(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_us(1), 1);
        assert_eq!(bucket_upper_us(2), 3);
        assert_eq!(bucket_upper_us(10), 1023);
        assert_eq!(bucket_upper_us(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 0);
        }
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::new();
        // 90 fast requests (~100 µs), 9 at ~5 ms, 1 at ~80 ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..9 {
            h.record(Duration::from_millis(5));
        }
        h.record(Duration::from_millis(80));
        assert_eq!(h.count(), 100);

        let snap = h.snapshot();
        let p50 = snap.quantile_us(0.50);
        let p95 = snap.quantile_us(0.95);
        let p99 = snap.quantile_us(0.99);
        // 100 µs falls in bucket (64, 127]; 5 ms in (4096, 8191];
        // 80 ms in (65536, 131071].
        assert_eq!(p50, 127);
        assert_eq!(p95, 8191);
        assert_eq!(p99, 8191);
        assert_eq!(snap.quantile_us(1.0), 131_071);
        assert!(p50 <= p95 && p95 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn single_observation_serves_every_quantile() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(3));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), 3);
        }
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = std::sync::Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    h.record(Duration::from_micros(i));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count(), 4000);
    }
}
