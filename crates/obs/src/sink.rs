//! Sinks: where recorded events go.

use crate::event::ObsEvent;
use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Next thread id handed out by [`current_tid`]. Starts at 1 so traces
/// never contain a 0 tid (0 reads as "unknown" to downstream tools).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static OBS_TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique integer identifying the calling thread, stable
/// for the thread's lifetime. Used by [`JsonlObsSink`] to stamp per-line
/// `"tid"` fields so trace exporters can reconstruct per-thread tracks.
#[must_use]
pub fn current_tid() -> u64 {
    OBS_TID.with(|tid| *tid)
}

/// Receives every event emitted while the sink is installed.
///
/// Implementations must be cheap and non-blocking where possible: the
/// recorder calls [`record`](ObsSink::record) inline from the
/// instrumented hot path.
pub trait ObsSink: Send + Sync {
    /// Handle one event.
    fn record(&self, event: &ObsEvent);
}

/// Discards every event. Useful as a placeholder sink in tests that
/// only exercise the enabled code path.
#[derive(Debug, Default)]
pub struct NullObsSink;

impl ObsSink for NullObsSink {
    fn record(&self, _event: &ObsEvent) {}
}

/// Buffers events in memory for later inspection or profile building.
#[derive(Debug, Default)]
pub struct CollectingObsSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl CollectingObsSink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Drains and returns the recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl ObsSink for CollectingObsSink {
    fn record(&self, event: &ObsEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Streams each event as one line of versioned JSON to a writer.
///
/// Every line is stamped with `"ts_us"` (microseconds since the sink was
/// created) and `"tid"` (see [`current_tid`]) so the trace exporters can
/// lay events out on a real timeline with per-thread tracks.
///
/// The sink tracks span nesting depth per thread and flushes the writer
/// whenever a thread returns to depth zero (a root span closed, or a
/// point event fired outside any span). That keeps `tail -f` workflows
/// live and bounds data loss from a killed process to the spans still
/// open at the instant of death — completed root spans are always on
/// disk.
///
/// Write errors are swallowed: observability must never fail the
/// pipeline it observes.
#[derive(Debug)]
pub struct JsonlObsSink<W: Write + Send> {
    inner: Mutex<StampedWriter<W>>,
    epoch: Instant,
}

#[derive(Debug)]
struct StampedWriter<W> {
    out: W,
    /// Open-span depth per tid; an entry returning to 0 triggers a flush.
    depth: HashMap<u64, u64>,
}

impl<W: Write + Send> JsonlObsSink<W> {
    /// Wraps a writer; the stamping epoch is now.
    pub fn new(out: W) -> Self {
        Self {
            inner: Mutex::new(StampedWriter {
                out,
                depth: HashMap::new(),
            }),
            epoch: Instant::now(),
        }
    }

    /// Flushes the inner writer (best effort — errors are swallowed,
    /// matching the sink's write discipline).
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = inner.out.flush();
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let inner = self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut out = inner.out;
        let _ = out.flush();
        out
    }
}

impl<W: Write + Send> ObsSink for JsonlObsSink<W> {
    fn record(&self, event: &ObsEvent) {
        let ts_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let tid = current_tid();
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        match event {
            ObsEvent::SpanStart { .. } => {
                *inner.depth.entry(tid).or_insert(0) += 1;
            }
            ObsEvent::SpanEnd { .. } => {
                if let Some(depth) = inner.depth.get_mut(&tid) {
                    *depth = depth.saturating_sub(1);
                }
            }
            _ => {}
        }
        let _ = writeln!(inner.out, "{}", event.to_jsonl_stamped(ts_us, tid));
        if inner.depth.get(&tid).copied().unwrap_or(0) == 0 {
            let _ = inner.out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_round_trips() {
        let sink = CollectingObsSink::new();
        sink.record(&ObsEvent::SpanStart {
            name: "design",
            id: 1,
        });
        sink.record(&ObsEvent::Counter {
            span: "design",
            name: "x",
            value: 2,
        });
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlObsSink::new(Vec::new());
        sink.record(&ObsEvent::SpanStart {
            name: "design",
            id: 1,
        });
        sink.record(&ObsEvent::Mark {
            scope: "farm".into(),
            name: "job_queued".into(),
            detail: "job 3".into(),
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"v\": 1")));
    }

    #[test]
    fn jsonl_sink_stamps_ts_and_tid() {
        let sink = JsonlObsSink::new(Vec::new());
        sink.record(&ObsEvent::SpanStart { name: "nfa", id: 9 });
        sink.record(&ObsEvent::SpanEnd {
            name: "nfa",
            id: 9,
            wall: std::time::Duration::from_micros(42),
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        for line in text.lines() {
            // Stamps are appended, so the schema-v1 prefix is untouched.
            assert!(line.starts_with("{\"v\": 1, \"type\": "), "{line}");
            assert!(line.contains("\"ts_us\": "), "{line}");
            assert!(line.contains("\"tid\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
    }

    /// A writer that counts flushes, for asserting root-close flushing.
    struct FlushCounter {
        flushes: std::sync::Arc<AtomicU64>,
    }

    impl Write for FlushCounter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.flushes.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_root_span_close() {
        let flushes = std::sync::Arc::new(AtomicU64::new(0));
        let sink = JsonlObsSink::new(FlushCounter {
            flushes: std::sync::Arc::clone(&flushes),
        });
        let wall = std::time::Duration::from_micros(1);
        sink.record(&ObsEvent::SpanStart {
            name: "design",
            id: 1,
        });
        sink.record(&ObsEvent::SpanStart {
            name: "minimize",
            id: 2,
        });
        assert_eq!(flushes.load(Ordering::Relaxed), 0, "open spans buffer");
        sink.record(&ObsEvent::SpanEnd {
            name: "minimize",
            id: 2,
            wall,
        });
        assert_eq!(flushes.load(Ordering::Relaxed), 0, "child close buffers");
        sink.record(&ObsEvent::SpanEnd {
            name: "design",
            id: 1,
            wall,
        });
        assert_eq!(flushes.load(Ordering::Relaxed), 1, "root close flushes");
        sink.record(&ObsEvent::Mark {
            scope: "farm".into(),
            name: "job_finished".into(),
            detail: String::new(),
        });
        assert_eq!(
            flushes.load(Ordering::Relaxed),
            2,
            "point events at depth 0 flush"
        );
    }

    #[test]
    fn tids_are_distinct_across_threads() {
        let here = current_tid();
        assert!(here > 0);
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, there);
        assert_eq!(here, current_tid(), "tid is stable per thread");
    }
}
