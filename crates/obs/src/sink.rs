//! Sinks: where recorded events go.

use crate::event::ObsEvent;
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// Receives every event emitted while the sink is installed.
///
/// Implementations must be cheap and non-blocking where possible: the
/// recorder calls [`record`](ObsSink::record) inline from the
/// instrumented hot path.
pub trait ObsSink: Send + Sync {
    /// Handle one event.
    fn record(&self, event: &ObsEvent);
}

/// Discards every event. Useful as a placeholder sink in tests that
/// only exercise the enabled code path.
#[derive(Debug, Default)]
pub struct NullObsSink;

impl ObsSink for NullObsSink {
    fn record(&self, _event: &ObsEvent) {}
}

/// Buffers events in memory for later inspection or profile building.
#[derive(Debug, Default)]
pub struct CollectingObsSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl CollectingObsSink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything recorded so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Drains and returns the recorded events.
    #[must_use]
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl ObsSink for CollectingObsSink {
    fn record(&self, event: &ObsEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Streams each event as one line of versioned JSON to a writer.
///
/// Write errors are swallowed: observability must never fail the
/// pipeline it observes.
#[derive(Debug)]
pub struct JsonlObsSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> JsonlObsSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
        }
    }

    /// Flushes and returns the inner writer.
    pub fn into_inner(self) -> W {
        let mut out = self
            .out
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let _ = out.flush();
        out
    }
}

impl<W: Write + Send> ObsSink for JsonlObsSink<W> {
    fn record(&self, event: &ObsEvent) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = writeln!(out, "{}", event.to_jsonl());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_sink_round_trips() {
        let sink = CollectingObsSink::new();
        sink.record(&ObsEvent::SpanStart {
            name: "design",
            id: 1,
        });
        sink.record(&ObsEvent::Counter {
            span: "design",
            name: "x",
            value: 2,
        });
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlObsSink::new(Vec::new());
        sink.record(&ObsEvent::SpanStart {
            name: "design",
            id: 1,
        });
        sink.record(&ObsEvent::Mark {
            scope: "farm".into(),
            name: "job_queued".into(),
            detail: "job 3".into(),
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with("{\"v\": 1")));
    }
}
