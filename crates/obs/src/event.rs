//! The event vocabulary shared by the recorder, sinks and profiles.

use std::time::Duration;

/// Version stamped into every JSON rendering this crate emits (the
/// per-line `"v"` field of JSONL traces and the `"version"` field of
/// profile summaries). Bump on any incompatible schema change and
/// update the schema documentation in `DESIGN.md`.
pub const SCHEMA_VERSION: u32 = 1;

/// One observation from an instrumented pipeline.
///
/// Span names are `'static` because instrumentation sites name their
/// stage with a literal; everything data-dependent (rung names, farm
/// detail strings) is owned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObsEvent {
    /// A named span opened. `id` pairs the start with its end and is
    /// unique per process run.
    SpanStart {
        /// Stage name (e.g. `"minimize"`, `"design"`).
        name: &'static str,
        /// Process-unique span id.
        id: u64,
    },
    /// A named span closed after `wall` elapsed.
    SpanEnd {
        /// Stage name matching the start event.
        name: &'static str,
        /// Span id matching the start event.
        id: u64,
        /// Wall clock between open and close.
        wall: Duration,
    },
    /// A named quantity observed inside a span (states, cubes,
    /// observations, …). Attributed to the stage named `span`.
    Counter {
        /// Stage the counter belongs to.
        span: &'static str,
        /// Counter name (e.g. `"states_out"`).
        name: &'static str,
        /// Observed value; repeated counters accumulate by addition.
        value: u64,
    },
    /// The degradation ladder took a rung.
    Rung {
        /// Rung display name (e.g. `"saturating-counter fallback"`).
        rung: String,
        /// Stage whose budget failure triggered the rung.
        stage: String,
        /// Human-readable reason recorded by the ladder.
        reason: String,
    },
    /// A free-form point event (farm job lifecycle, annotations).
    Mark {
        /// Event namespace (e.g. `"farm"`).
        scope: String,
        /// Event kind inside the namespace (e.g. `"job_finished"`).
        name: String,
        /// Detail payload, already human-readable.
        detail: String,
    },
}

impl ObsEvent {
    /// Renders the event as one line of versioned JSON (no trailing
    /// newline). Every line is a self-contained object carrying
    /// `"v": 1` so consumers can validate streams without context.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let v = SCHEMA_VERSION;
        match self {
            ObsEvent::SpanStart { name, id } => {
                format!(
                    "{{\"v\": {v}, \"type\": \"span_start\", \"name\": {}, \"id\": {id}}}",
                    json_string(name)
                )
            }
            ObsEvent::SpanEnd { name, id, wall } => {
                format!(
                    "{{\"v\": {v}, \"type\": \"span_end\", \"name\": {}, \"id\": {id}, \"wall_ms\": {:.6}}}",
                    json_string(name),
                    wall.as_secs_f64() * 1e3
                )
            }
            ObsEvent::Counter { span, name, value } => {
                format!(
                    "{{\"v\": {v}, \"type\": \"counter\", \"span\": {}, \"name\": {}, \"value\": {value}}}",
                    json_string(span),
                    json_string(name)
                )
            }
            ObsEvent::Rung {
                rung,
                stage,
                reason,
            } => {
                format!(
                    "{{\"v\": {v}, \"type\": \"rung\", \"rung\": {}, \"stage\": {}, \"reason\": {}}}",
                    json_string(rung),
                    json_string(stage),
                    json_string(reason)
                )
            }
            ObsEvent::Mark {
                scope,
                name,
                detail,
            } => {
                format!(
                    "{{\"v\": {v}, \"type\": \"mark\", \"scope\": {}, \"name\": {}, \"detail\": {}}}",
                    json_string(scope),
                    json_string(name),
                    json_string(detail)
                )
            }
        }
    }
}

impl ObsEvent {
    /// Renders the event as one line of versioned JSON carrying two
    /// additional trailing fields: `"ts_us"` (microseconds since the
    /// writing sink's epoch) and `"tid"` (a small process-unique integer
    /// naming the emitting thread). These are *additive* to schema v1 —
    /// consumers that predate them ignore unknown fields, and the trace
    /// exporters fall back to a synthetic clock when they are absent.
    #[must_use]
    pub fn to_jsonl_stamped(&self, ts_us: u64, tid: u64) -> String {
        let mut line = self.to_jsonl();
        // `to_jsonl` always renders one object ending in '}'.
        line.truncate(line.len() - 1);
        line.push_str(&format!(", \"ts_us\": {ts_us}, \"tid\": {tid}}}"));
        line
    }
}

/// Quotes and escapes a string for JSON output.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_lines_are_versioned_and_single_line() {
        let events = [
            ObsEvent::SpanStart {
                name: "design",
                id: 7,
            },
            ObsEvent::SpanEnd {
                name: "design",
                id: 7,
                wall: Duration::from_micros(1500),
            },
            ObsEvent::Counter {
                span: "minimize",
                name: "cubes_out",
                value: 3,
            },
            ObsEvent::Rung {
                rung: "saturating-counter fallback".into(),
                stage: "minimize".into(),
                reason: "injected".into(),
            },
            ObsEvent::Mark {
                scope: "farm".into(),
                name: "job_finished".into(),
                detail: "job 0".into(),
            },
        ];
        for event in &events {
            let line = event.to_jsonl();
            assert!(line.starts_with("{\"v\": 1, \"type\": "), "{line}");
            assert!(!line.contains('\n'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn span_end_reports_wall_in_ms() {
        let line = ObsEvent::SpanEnd {
            name: "nfa",
            id: 1,
            wall: Duration::from_micros(250),
        }
        .to_jsonl();
        assert!(line.contains("\"wall_ms\": 0.250000"), "{line}");
    }

    #[test]
    fn escaping_handles_quotes() {
        let line = ObsEvent::Mark {
            scope: "farm".into(),
            name: "note".into(),
            detail: "say \"hi\"\n".into(),
        }
        .to_jsonl();
        assert!(line.contains("say \\\"hi\\\"\\n"), "{line}");
    }
}
