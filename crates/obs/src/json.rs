//! A minimal JSON reader shared across the workspace.
//!
//! The workspace's vendored `serde` stub has no serializer or
//! deserializer, and every crate hand-rolls its JSON *emitters*; the
//! design service and the scenario engine additionally need to *read*
//! JSON (wire frames, scenario plan files). This is a small
//! recursive-descent parser for the full JSON grammar with two
//! protocol-motivated limits: a nesting-depth cap (stack safety against
//! adversarial input) and numbers parsed as `f64` (every quantity in the
//! schema fits losslessly). It lives in `fsmgen-obs` — the workspace's
//! shared bottom layer — so both consumers use the same grammar.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by [`parse`]. Protocol messages are
/// flat objects; anything deeper than this is adversarial input.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps key iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` when this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer (rejects fractions and
    /// anything that cannot round-trip through `f64`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why a frame failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.at)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            at: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not paired up; the protocol
                            // never emits them, so map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let taken = std::str::from_utf8(&rest[..step.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(taken);
                    self.pos += step;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Quotes and escapes a string for JSON output (the emitting twin of
/// [`parse`], matching the conventions of the farm/obs emitters).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v =
            parse(r#"{"v": 1, "kind": "design_request", "history": 4, "trace": "0101"}"#).unwrap();
        assert_eq!(v.get("v").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("design_request"));
        assert_eq!(v.get("history").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse(r#"[1, "a\nb", {"k": false}]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("a\nb".into()),
                Json::Obj([("k".to_string(), Json::Bool(false))].into()),
            ])
        );
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"abc",
            "{\"a\": }",
            "nullx",
            "\u{1}",
            "\"\u{1}\"",
            "[1] [2]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_absurd_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert!(err.reason.contains("deep"), "{err}");
    }

    #[test]
    fn u64_conversion_is_strict() {
        assert_eq!(parse("4").unwrap().as_u64(), Some(4));
        assert_eq!(parse("4.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_escaped_strings() {
        let original = "say \"hi\"\t\\now\n";
        let encoded = json_string(original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn multibyte_utf8_survives() {
        let v = parse("\"héllo → 世界\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → 世界"));
    }
}
