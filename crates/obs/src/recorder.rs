//! The process-wide recorder: sink installation and the emit fast path.
//!
//! Mirrors the structure of `fsmgen`'s failpoint registry: a
//! thread-local sink stack for test isolation plus one optional
//! process-global sink for multi-threaded consumers (the farm's worker
//! pool, CLI trace export). A single relaxed atomic counts installed
//! sinks; when it is zero every instrumentation call returns after one
//! atomic load — no timestamps, no locks, no allocation.

use crate::event::ObsEvent;
use crate::profile::PipelineProfile;
use crate::sink::{CollectingObsSink, ObsSink};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Number of currently installed sinks (thread-local entries across all
/// threads plus the global slot). Zero means the disabled fast path.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Monotonic span-id source; 0 is reserved for disabled spans.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// The optional process-global sink (seen by every thread).
static GLOBAL: Mutex<Option<Arc<dyn ObsSink>>> = Mutex::new(None);

thread_local! {
    /// Sinks installed on this thread, innermost last.
    static LOCAL: RefCell<Vec<Arc<dyn ObsSink>>> = const { RefCell::new(Vec::new()) };
}

/// True when at least one sink is installed anywhere in the process.
///
/// This is the disabled-recorder fast path: instrumentation sites call
/// it (directly or via [`span`]/[`counter`]) before doing any work.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// Installs `sink` for the current thread until the returned guard is
/// dropped. Installs nest: all live thread-local sinks plus the global
/// sink receive each event.
#[must_use = "events are only recorded while the guard is alive"]
pub fn install(sink: Arc<dyn ObsSink>) -> SinkGuard {
    LOCAL.with(|local| local.borrow_mut().push(Arc::clone(&sink)));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    SinkGuard { sink }
}

/// Installs `sink` process-globally (every thread, including farm
/// workers, reports to it) until [`clear_global`] runs. Replaces any
/// previously installed global sink.
pub fn install_global(sink: Arc<dyn ObsSink>) {
    let previous = GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .replace(sink);
    if previous.is_none() {
        ACTIVE.fetch_add(1, Ordering::Relaxed);
    }
}

/// Removes the process-global sink, if any.
pub fn clear_global() {
    let previous = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner).take();
    if previous.is_some() {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Uninstalls its thread-local sink on drop.
pub struct SinkGuard {
    sink: Arc<dyn ObsSink>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        LOCAL.with(|local| {
            let mut stack = local.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|s| Arc::ptr_eq(s, &self.sink)) {
                stack.remove(pos);
                ACTIVE.fetch_sub(1, Ordering::Relaxed);
            }
        });
    }
}

/// Delivers one event to every installed sink. No-op when disabled.
pub fn emit(event: &ObsEvent) {
    if !enabled() {
        return;
    }
    LOCAL.with(|local| {
        for sink in local.borrow().iter() {
            sink.record(event);
        }
    });
    let global = GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(sink) = global {
        sink.record(event);
    }
}

/// RAII span: emits `SpanStart` on creation (when enabled) and
/// `SpanEnd` with the elapsed wall clock on drop. Disabled spans carry
/// no timestamp and emit nothing.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct Span {
    name: &'static str,
    id: u64,
    start: Option<Instant>,
}

/// Opens a named span covering the enclosing scope.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            name,
            id: 0,
            start: None,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    emit(&ObsEvent::SpanStart { name, id });
    Span {
        name,
        id,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            emit(&ObsEvent::SpanEnd {
                name: self.name,
                id: self.id,
                wall: start.elapsed(),
            });
        }
    }
}

/// Records a counter attributed to the stage named `span`.
#[inline]
pub fn counter(span: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    emit(&ObsEvent::Counter { span, name, value });
}

/// Records a degradation-ladder rung event.
#[inline]
pub fn rung(rung: &str, stage: &str, reason: &str) {
    if !enabled() {
        return;
    }
    emit(&ObsEvent::Rung {
        rung: rung.to_string(),
        stage: stage.to_string(),
        reason: reason.to_string(),
    });
}

/// Records a free-form point event.
#[inline]
pub fn mark(scope: &str, name: &str, detail: &str) {
    if !enabled() {
        return;
    }
    emit(&ObsEvent::Mark {
        scope: scope.to_string(),
        name: name.to_string(),
        detail: detail.to_string(),
    });
}

/// Runs `f` with a collecting sink installed on the current thread and
/// returns its result together with the aggregated [`PipelineProfile`].
///
/// This is the profiling hook used by the experiment drivers and the
/// CLI's `--profile` surface.
pub fn profiled<R>(f: impl FnOnce() -> R) -> (R, PipelineProfile) {
    let (result, events) = profiled_events(f);
    (result, PipelineProfile::from_events(&events))
}

/// Like [`profiled`] but returns the raw event stream (for JSONL
/// export alongside the profile).
pub fn profiled_events<R>(f: impl FnOnce() -> R) -> (R, Vec<ObsEvent>) {
    let sink = Arc::new(CollectingObsSink::new());
    let guard = install(sink.clone());
    let result = f();
    drop(guard);
    (result, sink.take())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_span_emits_nothing_and_takes_no_timestamp() {
        // Another test thread may have a sink installed; only assert on
        // what this thread's spans record locally.
        let sink = Arc::new(CollectingObsSink::new());
        {
            let _span = span("unobserved");
        }
        assert!(sink.events().is_empty());
    }

    #[test]
    fn thread_local_sink_sees_spans_counters_and_rungs() {
        let sink = Arc::new(CollectingObsSink::new());
        let guard = install(sink.clone());
        {
            let _root = span("design");
            counter("design", "widgets", 3);
            rung("saturating-counter fallback", "minimize", "test");
            mark("test", "note", "detail");
        }
        drop(guard);
        let events = sink.events();
        assert_eq!(events.len(), 5, "{events:?}");
        assert!(matches!(
            events[0],
            ObsEvent::SpanStart { name: "design", .. }
        ));
        assert!(matches!(
            events[1],
            ObsEvent::Counter {
                span: "design",
                name: "widgets",
                value: 3
            }
        ));
        assert!(matches!(events[2], ObsEvent::Rung { .. }));
        assert!(matches!(events[3], ObsEvent::Mark { .. }));
        match &events[4] {
            ObsEvent::SpanEnd { name, wall, .. } => {
                assert_eq!(*name, "design");
                assert!(*wall < Duration::from_secs(5));
            }
            other => panic!("expected span end, got {other:?}"),
        }
        // After the guard drops, nothing more is recorded here.
        counter("design", "widgets", 1);
        assert_eq!(sink.events().len(), 5);
    }

    #[test]
    fn nested_installs_both_receive_events() {
        let outer = Arc::new(CollectingObsSink::new());
        let inner = Arc::new(CollectingObsSink::new());
        let outer_guard = install(outer.clone());
        {
            let inner_guard = install(inner.clone());
            counter("x", "n", 1);
            drop(inner_guard);
        }
        counter("x", "n", 2);
        drop(outer_guard);
        assert_eq!(inner.events().len(), 1);
        assert_eq!(outer.events().len(), 2);
    }

    #[test]
    fn global_sink_sees_other_threads() {
        // Global state: serialize against other tests of the global
        // slot by using a distinctive marker event and filtering.
        let sink = Arc::new(CollectingObsSink::new());
        install_global(sink.clone());
        let handle = std::thread::spawn(|| {
            mark("recorder-test", "cross-thread", "hello");
        });
        handle.join().unwrap();
        clear_global();
        let seen = sink
            .events()
            .iter()
            .any(|e| matches!(e, ObsEvent::Mark { scope, .. } if scope == "recorder-test"));
        assert!(seen);
        // Idempotent clear.
        clear_global();
    }

    #[test]
    fn span_ids_pair_start_and_end() {
        let sink = Arc::new(CollectingObsSink::new());
        let guard = install(sink.clone());
        {
            let _a = span("outer");
            let _b = span("inner");
        }
        drop(guard);
        let events = sink.events();
        let ids: Vec<(bool, u64)> = events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::SpanStart { id, .. } => Some((true, *id)),
                ObsEvent::SpanEnd { id, .. } => Some((false, *id)),
                _ => None,
            })
            .collect();
        assert_eq!(ids.len(), 4);
        // outer opens first, inner closes first (reverse drop order).
        assert_eq!(ids[0].1, ids[3].1);
        assert_eq!(ids[1].1, ids[2].1);
        assert_ne!(ids[0].1, ids[1].1);
    }

    #[test]
    fn profiled_returns_result_and_profile() {
        let (value, profile) = profiled(|| {
            let _root = span("design");
            let _stage = span("minimize");
            21 * 2
        });
        assert_eq!(value, 42);
        assert_eq!(profile.stage_names(), vec!["minimize".to_string()]);
    }
}
