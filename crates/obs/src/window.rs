//! Windowed hit-rate tracking with collapse detection.
//!
//! The paper designs predictors offline against a fixed workload model;
//! when the served workload drifts away from that model the predictor's
//! accuracy collapses, and the only way to notice at runtime is a
//! *windowed* hit rate (a lifetime average hides a regime change behind
//! thousands of old hits). [`WindowedAccuracy`] keeps the last `window`
//! hit/miss outcomes in a ring buffer; [`CollapseMonitor`] layers a
//! threshold with hysteresis on top, so one noisy window cannot trigger
//! a redesign storm: after a collapse fires the monitor disarms until
//! the rate recovers past `threshold + hysteresis`.
//!
//! Both types are plain single-threaded state — callers that share one
//! across threads (the design service's predict path) wrap it in their
//! own mutex, which they need anyway to keep the predictor state and
//! the window in lockstep.

/// A ring buffer of the last `capacity` hit/miss outcomes.
#[derive(Debug, Clone)]
pub struct WindowedAccuracy {
    ring: Vec<bool>,
    capacity: usize,
    next: usize,
    filled: usize,
    hits: usize,
}

impl WindowedAccuracy {
    /// Creates a window over the last `capacity` outcomes (at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        WindowedAccuracy {
            ring: vec![false; capacity],
            capacity,
            next: 0,
            filled: 0,
            hits: 0,
        }
    }

    /// Records one outcome, evicting the oldest when full.
    pub fn record(&mut self, hit: bool) {
        if self.filled == self.capacity {
            if self.ring[self.next] {
                self.hits -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.ring[self.next] = hit;
        if hit {
            self.hits += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Outcomes currently in the window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// True once the window holds `capacity` outcomes.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.filled == self.capacity
    }

    /// The window size this tracker was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hits currently in the window.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// The hit rate over the current window; `None` while empty.
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        if self.filled == 0 {
            None
        } else {
            Some(self.hits as f64 / self.filled as f64)
        }
    }

    /// Forgets every recorded outcome (e.g. after a predictor swap, so
    /// the post-swap rate reflects only the new predictor).
    pub fn reset(&mut self) {
        self.next = 0;
        self.filled = 0;
        self.hits = 0;
    }
}

/// What [`CollapseMonitor::record`] observed at one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollapseEvent {
    /// Nothing notable: window not full, or rate within band.
    None,
    /// The windowed rate fell below the threshold while armed; the
    /// monitor has disarmed itself (no repeat until re-armed).
    Collapsed,
    /// The rate recovered past `threshold + hysteresis` and the monitor
    /// re-armed.
    Rearmed,
}

/// A [`WindowedAccuracy`] with a collapse threshold and hysteresis.
#[derive(Debug, Clone)]
pub struct CollapseMonitor {
    window: WindowedAccuracy,
    threshold: f64,
    hysteresis: f64,
    armed: bool,
}

impl CollapseMonitor {
    /// A monitor that collapses when the windowed rate (over a full
    /// `window`-sized ring) drops below `threshold`, and re-arms once
    /// the rate climbs back past `threshold + hysteresis`.
    #[must_use]
    pub fn new(window: usize, threshold: f64, hysteresis: f64) -> Self {
        CollapseMonitor {
            window: WindowedAccuracy::new(window),
            threshold: threshold.clamp(0.0, 1.0),
            hysteresis: hysteresis.clamp(0.0, 1.0),
            armed: true,
        }
    }

    /// Records one outcome and reports what (if anything) changed.
    pub fn record(&mut self, hit: bool) -> CollapseEvent {
        self.window.record(hit);
        if !self.window.is_full() {
            return CollapseEvent::None;
        }
        let Some(rate) = self.window.rate() else {
            return CollapseEvent::None;
        };
        if self.armed {
            if rate < self.threshold {
                self.armed = false;
                return CollapseEvent::Collapsed;
            }
        } else if rate >= (self.threshold + self.hysteresis).min(1.0) {
            self.armed = true;
            return CollapseEvent::Rearmed;
        }
        CollapseEvent::None
    }

    /// The current windowed hit rate (`None` while empty).
    #[must_use]
    pub fn rate(&self) -> Option<f64> {
        self.window.rate()
    }

    /// True while a new collapse can fire.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// The underlying window.
    #[must_use]
    pub fn window(&self) -> &WindowedAccuracy {
        &self.window
    }

    /// Clears the window and re-arms (e.g. after a predictor swap).
    pub fn reset(&mut self) {
        self.window.reset();
        self.armed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_tracks_last_n() {
        let mut w = WindowedAccuracy::new(4);
        assert_eq!(w.rate(), None);
        for _ in 0..4 {
            w.record(true);
        }
        assert!(w.is_full());
        assert_eq!(w.rate(), Some(1.0));
        // Four misses push the hits out entirely.
        for _ in 0..4 {
            w.record(false);
        }
        assert_eq!(w.rate(), Some(0.0));
        w.record(true);
        assert_eq!(w.rate(), Some(0.25));
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut w = WindowedAccuracy::new(0);
        assert_eq!(w.capacity(), 1);
        w.record(true);
        assert_eq!(w.rate(), Some(1.0));
    }

    #[test]
    fn reset_forgets_everything() {
        let mut w = WindowedAccuracy::new(3);
        w.record(true);
        w.record(false);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.rate(), None);
    }

    #[test]
    fn collapse_fires_once_then_disarms() {
        let mut m = CollapseMonitor::new(4, 0.6, 0.2);
        let mut events = Vec::new();
        for _ in 0..8 {
            events.push(m.record(false));
        }
        let collapses = events
            .iter()
            .filter(|e| **e == CollapseEvent::Collapsed)
            .count();
        assert_eq!(collapses, 1, "{events:?}");
        assert!(!m.is_armed());
    }

    #[test]
    fn hysteresis_gates_rearm() {
        let mut m = CollapseMonitor::new(4, 0.5, 0.25);
        for _ in 0..4 {
            m.record(false);
        }
        assert!(!m.is_armed());
        // 2/4 = 0.5 >= threshold but < threshold + hysteresis: stays
        // disarmed.
        m.record(true);
        m.record(true);
        assert!(!m.is_armed());
        // 3/4 = 0.75 >= 0.75: re-arms.
        assert_eq!(m.record(true), CollapseEvent::Rearmed);
        assert!(m.is_armed());
    }

    #[test]
    fn no_collapse_before_window_fills() {
        let mut m = CollapseMonitor::new(8, 0.9, 0.05);
        for _ in 0..7 {
            assert_eq!(m.record(false), CollapseEvent::None);
        }
        assert_eq!(m.record(false), CollapseEvent::Collapsed);
    }
}
