//! Aggregating an ordered event stream into a per-stage profile.

use crate::event::{json_string, ObsEvent, SCHEMA_VERSION};
use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregated stats for one named span (or counter-only scope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageProfile {
    /// Stage name as emitted by the instrumentation site.
    pub name: String,
    /// How many spans with this name closed.
    pub calls: u64,
    /// Total wall clock across those spans.
    pub wall: Duration,
    /// Distribution of the individual span durations, in the shared
    /// latency-histogram buckets: `wall` hides the tail when a stage is
    /// entered many times, `durations.quantile_us(0.99)` does not.
    pub durations: HistogramSnapshot,
    /// Counters attributed to this stage, summed across events.
    pub counters: BTreeMap<String, u64>,
    /// True when the span was observed at nesting depth 0 (a pipeline
    /// root such as `design` or `bpred-simulate`), false for stages
    /// nested under a root.
    pub root: bool,
}

/// One degradation-ladder step observed in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungRecord {
    /// Rung display name.
    pub rung: String,
    /// Stage whose budget failure triggered it.
    pub stage: String,
    /// Ladder-recorded reason.
    pub reason: String,
}

/// Per-stage wall time, call counts and counters, aggregated from an
/// ordered single-threaded event stream (as produced by a thread-local
/// [`CollectingObsSink`](crate::CollectingObsSink)).
///
/// Nesting depth is reconstructed from span start/end pairing: depth-0
/// spans are pipeline roots (`design`, simulator loops), deeper spans
/// are stages. [`coverage`](Self::coverage) — the fraction of root
/// wall time accounted for by stages — is the acceptance metric for
/// "stage walls sum to within 10% of end-to-end design time".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineProfile {
    entries: Vec<StageProfile>,
    rungs: Vec<RungRecord>,
}

impl PipelineProfile {
    /// Builds a profile from an ordered event stream.
    #[must_use]
    pub fn from_events(events: &[ObsEvent]) -> Self {
        let mut profile = PipelineProfile::default();
        // Open spans, outermost first: (id, name).
        let mut stack: Vec<(u64, &str)> = Vec::new();
        for event in events {
            match event {
                ObsEvent::SpanStart { name, id } => {
                    // Touch the entry so display order follows span
                    // open order (root first), not close order.
                    let _ = profile.entry(name);
                    stack.push((*id, name));
                }
                ObsEvent::SpanEnd { name, id, wall } => {
                    let depth = match stack.iter().rposition(|(open, _)| open == id) {
                        Some(pos) => {
                            stack.remove(pos);
                            pos
                        }
                        // End without a start (sink installed mid-span):
                        // treat as a root so its time is not attributed
                        // to a stage it may not belong to.
                        None => 0,
                    };
                    let entry = profile.entry(name);
                    entry.calls += 1;
                    entry.wall += *wall;
                    entry.durations.record(*wall);
                    if depth == 0 {
                        entry.root = true;
                    }
                }
                ObsEvent::Counter { span, name, value } => {
                    *profile
                        .entry(span)
                        .counters
                        .entry((*name).to_string())
                        .or_insert(0) += value;
                }
                ObsEvent::Rung {
                    rung,
                    stage,
                    reason,
                } => profile.rungs.push(RungRecord {
                    rung: rung.clone(),
                    stage: stage.clone(),
                    reason: reason.clone(),
                }),
                ObsEvent::Mark { .. } => {}
            }
        }
        profile
    }

    fn entry(&mut self, name: &str) -> &mut StageProfile {
        if let Some(pos) = self.entries.iter().position(|e| e.name == name) {
            &mut self.entries[pos]
        } else {
            self.entries.push(StageProfile {
                name: name.to_string(),
                calls: 0,
                wall: Duration::ZERO,
                durations: HistogramSnapshot::new(),
                counters: BTreeMap::new(),
                root: false,
            });
            let last = self.entries.len() - 1;
            &mut self.entries[last]
        }
    }

    /// All aggregated entries in first-appearance order (roots and
    /// stages alike).
    #[must_use]
    pub fn entries(&self) -> &[StageProfile] {
        &self.entries
    }

    /// Non-root stage entries, in first-appearance order.
    pub fn stages(&self) -> impl Iterator<Item = &StageProfile> {
        self.entries.iter().filter(|e| !e.root)
    }

    /// Names of the non-root stages, in first-appearance order.
    #[must_use]
    pub fn stage_names(&self) -> Vec<String> {
        self.stages().map(|e| e.name.clone()).collect()
    }

    /// Degradation rungs observed in the stream, in order.
    #[must_use]
    pub fn rungs(&self) -> &[RungRecord] {
        &self.rungs
    }

    /// End-to-end wall time: the total wall of `design` roots when the
    /// stream contains any, otherwise of all roots.
    #[must_use]
    pub fn total(&self) -> Duration {
        let design: Vec<&StageProfile> = self
            .entries
            .iter()
            .filter(|e| e.root && e.name == "design")
            .collect();
        if design.is_empty() {
            self.entries.iter().filter(|e| e.root).map(|e| e.wall).sum()
        } else {
            design.iter().map(|e| e.wall).sum()
        }
    }

    /// Total wall time attributed to non-root stages.
    #[must_use]
    pub fn stage_sum(&self) -> Duration {
        self.stages().map(|e| e.wall).sum()
    }

    /// Fraction of end-to-end time covered by instrumented stages
    /// (0.0 when nothing was recorded). Values near 1.0 mean the stage
    /// breakdown accounts for essentially all of the pipeline's time.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total > 0.0 {
            self.stage_sum().as_secs_f64() / total
        } else {
            0.0
        }
    }

    /// Renders the profile as a human-readable table.
    #[must_use]
    pub fn to_text(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let total = self.total().as_secs_f64();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12} {:>8}  counters",
            "stage", "calls", "wall_ms", "share"
        );
        for entry in &self.entries {
            let share = if total > 0.0 && !entry.root {
                format!("{:.1}%", 100.0 * entry.wall.as_secs_f64() / total)
            } else if entry.root {
                "root".to_string()
            } else {
                "-".to_string()
            };
            let counters = entry
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>12.3} {:>8}  {}",
                entry.name,
                entry.calls,
                ms(entry.wall),
                share,
                counters
            );
        }
        let _ = writeln!(
            out,
            "total {:.3} ms, stages {:.3} ms, coverage {:.1}%",
            ms(self.total()),
            ms(self.stage_sum()),
            100.0 * self.coverage()
        );
        for rung in &self.rungs {
            let _ = writeln!(
                out,
                "rung: {} (stage {}, {})",
                rung.rung, rung.stage, rung.reason
            );
        }
        out
    }

    /// Renders the profile as one versioned JSON summary object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let mut stages = String::new();
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                stages.push_str(",\n");
            }
            let counters = entry
                .counters
                .iter()
                .map(|(k, v)| format!("{}: {v}", json_string(k)))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                stages,
                "    {{\"name\": {}, \"root\": {}, \"calls\": {}, \"wall_ms\": {:.6}, \"stage_us\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}}}, \"counters\": {{{counters}}}}}",
                json_string(&entry.name),
                entry.root,
                entry.calls,
                ms(entry.wall),
                entry.durations.quantile_us(0.50),
                entry.durations.quantile_us(0.95),
                entry.durations.quantile_us(0.99)
            );
        }
        let mut rungs = String::new();
        for (i, rung) in self.rungs.iter().enumerate() {
            if i > 0 {
                rungs.push_str(",\n");
            }
            let _ = write!(
                rungs,
                "    {{\"rung\": {}, \"stage\": {}, \"reason\": {}}}",
                json_string(&rung.rung),
                json_string(&rung.stage),
                json_string(&rung.reason)
            );
        }
        format!(
            "{{\n  \"version\": {},\n  \"kind\": \"pipeline_profile\",\n  \"total_ms\": {:.6},\n  \"stage_sum_ms\": {:.6},\n  \"coverage\": {:.4},\n  \"stages\": [\n{stages}\n  ],\n  \"rungs\": [\n{rungs}\n  ]\n}}\n",
            SCHEMA_VERSION,
            ms(self.total()),
            ms(self.stage_sum()),
            self.coverage()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> Vec<ObsEvent> {
        vec![
            ObsEvent::SpanStart {
                name: "design",
                id: 1,
            },
            ObsEvent::SpanStart {
                name: "markov",
                id: 2,
            },
            ObsEvent::Counter {
                span: "markov",
                name: "observations",
                value: 100,
            },
            ObsEvent::SpanEnd {
                name: "markov",
                id: 2,
                wall: Duration::from_micros(400),
            },
            ObsEvent::SpanStart {
                name: "minimize",
                id: 3,
            },
            ObsEvent::SpanEnd {
                name: "minimize",
                id: 3,
                wall: Duration::from_micros(500),
            },
            ObsEvent::Rung {
                rung: "heuristic minimizer".into(),
                stage: "minimize".into(),
                reason: "budget".into(),
            },
            ObsEvent::SpanStart {
                name: "minimize",
                id: 4,
            },
            ObsEvent::SpanEnd {
                name: "minimize",
                id: 4,
                wall: Duration::from_micros(100),
            },
            ObsEvent::SpanEnd {
                name: "design",
                id: 1,
                wall: Duration::from_micros(1100),
            },
        ]
    }

    #[test]
    fn aggregates_depth_calls_walls_and_counters() {
        let profile = PipelineProfile::from_events(&stream());
        assert_eq!(profile.stage_names(), vec!["markov", "minimize"]);
        let design = &profile.entries()[0];
        assert!(design.root && design.name == "design" && design.calls == 1);
        let minimize = profile.stages().find(|e| e.name == "minimize").unwrap();
        assert_eq!(minimize.calls, 2);
        assert_eq!(minimize.wall, Duration::from_micros(600));
        let markov = profile.stages().find(|e| e.name == "markov").unwrap();
        assert_eq!(markov.counters["observations"], 100);
        assert_eq!(profile.total(), Duration::from_micros(1100));
        assert_eq!(profile.stage_sum(), Duration::from_micros(1000));
        assert!((profile.coverage() - 1000.0 / 1100.0).abs() < 1e-9);
        assert_eq!(profile.rungs().len(), 1);
        assert_eq!(profile.rungs()[0].rung, "heuristic minimizer");
    }

    #[test]
    fn non_design_roots_count_when_no_design_present() {
        let events = vec![
            ObsEvent::SpanStart {
                name: "bpred-simulate",
                id: 1,
            },
            ObsEvent::SpanEnd {
                name: "bpred-simulate",
                id: 1,
                wall: Duration::from_micros(700),
            },
        ];
        let profile = PipelineProfile::from_events(&events);
        assert_eq!(profile.total(), Duration::from_micros(700));
        assert_eq!(profile.stage_sum(), Duration::ZERO);
    }

    #[test]
    fn simulator_roots_do_not_dilute_design_total() {
        let mut events = stream();
        events.push(ObsEvent::SpanStart {
            name: "bpred-simulate",
            id: 9,
        });
        events.push(ObsEvent::SpanEnd {
            name: "bpred-simulate",
            id: 9,
            wall: Duration::from_secs(1),
        });
        let profile = PipelineProfile::from_events(&events);
        assert_eq!(profile.total(), Duration::from_micros(1100));
    }

    #[test]
    fn renders_text_and_versioned_json() {
        let profile = PipelineProfile::from_events(&stream());
        let text = profile.to_text();
        assert!(text.contains("markov"));
        assert!(text.contains("coverage"));
        assert!(text.contains("rung: heuristic minimizer"));
        let json = profile.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"kind\": \"pipeline_profile\""));
        assert!(json.contains("\"name\": \"minimize\""));
        assert!(json.contains("\"observations\": 100"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn per_stage_duration_distribution_is_recorded_and_rendered() {
        let profile = PipelineProfile::from_events(&stream());
        let minimize = profile.stages().find(|e| e.name == "minimize").unwrap();
        // Two minimize spans: 500 µs and 100 µs. Bucketed upper bounds:
        // 500 -> 511, 100 -> 127.
        assert_eq!(minimize.durations.count(), 2);
        assert_eq!(minimize.durations.quantile_us(0.50), 127);
        assert_eq!(minimize.durations.quantile_us(0.99), 511);
        let json = profile.to_json();
        assert!(json.contains("\"stage_us\": {\"p50\": 127, \"p95\": 511, \"p99\": 511}"));
    }

    #[test]
    fn unmatched_span_end_is_treated_as_root() {
        let events = vec![ObsEvent::SpanEnd {
            name: "minimize",
            id: 77,
            wall: Duration::from_micros(10),
        }];
        let profile = PipelineProfile::from_events(&events);
        assert!(profile.entries()[0].root);
    }

    #[test]
    fn empty_stream_has_zero_coverage() {
        let profile = PipelineProfile::from_events(&[]);
        assert_eq!(profile.coverage(), 0.0);
        assert!(profile.to_json().contains("\"coverage\": 0.0000"));
    }
}
