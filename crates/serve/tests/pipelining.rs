//! Pipelining regression battery for the sharded event loop: a client
//! may write many frames before reading a single response, and the
//! server must answer every one of them, in request order, on both
//! codecs. A slow-loris half-frame parked on a pipelined connection
//! must time out alone — the shard's other connections keep flowing.

use fsmgen_serve::{proto, Codec, Request, Response, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const PIPELINED_FRAMES: u64 = 64;

struct Fixture {
    server: Arc<Server>,
    handle: ServerHandle,
    addr: String,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Fixture {
    fn start(config: ServeConfig) -> Fixture {
        let server = Arc::new(Server::bind(config).expect("bind"));
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || runner.run());
        Fixture {
            server,
            handle,
            addr,
            thread: Some(thread),
        }
    }

    fn sharded(read_timeout: Duration) -> Fixture {
        Fixture::start(ServeConfig {
            shards: 2,
            read_timeout,
            ..ServeConfig::default()
        })
    }

    fn raw_conn(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
    }

    fn stop(mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread joins")
                .expect("server exits clean");
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn design_request(id: u64) -> Request {
    Request::Design {
        id,
        trace: "0000 1000 1011 1101 1110 1111".into(),
        history: 2,
        threshold: None,
        dont_care: None,
    }
}

/// Writes `n` design frames back-to-back without reading, then reads
/// exactly `n` responses and asserts ids come back in request order.
fn pipeline_burst(stream: &mut TcpStream, codec: Codec, n: u64) {
    let mut burst = Vec::new();
    if codec == Codec::BinaryV2 {
        burst.extend_from_slice(&proto::binary_preamble());
    }
    for id in 0..n {
        let payload = design_request(id).encode_with(codec);
        let len: u32 = payload.len().try_into().unwrap();
        burst.extend_from_slice(&len.to_be_bytes());
        burst.extend_from_slice(&payload);
    }
    stream.write_all(&burst).expect("write the whole burst");
    stream.flush().expect("flush");
    for want in 0..n {
        let payload =
            proto::read_frame(stream, proto::DEFAULT_MAX_FRAME).expect("response frame arrives");
        let response = Response::decode_with(codec, &payload).expect("response decodes");
        match response {
            Response::DesignOk { id, states, .. } => {
                assert_eq!(
                    id, want,
                    "pipelined responses must come back in request order"
                );
                assert_eq!(states, 3);
            }
            other => panic!("frame {want}: unexpected response {other:?}"),
        }
    }
}

#[test]
fn sixty_four_pipelined_frames_answer_in_order_on_both_codecs() {
    let fixture = Fixture::sharded(Duration::from_secs(5));
    for codec in [Codec::JsonV1, Codec::BinaryV2] {
        let mut stream = fixture.raw_conn();
        pipeline_burst(&mut stream, codec, PIPELINED_FRAMES);
        // Nothing extra is buffered: a follow-up ping gets exactly a pong.
        let payload = Request::Ping.encode_with(codec);
        let len: u32 = payload.len().try_into().unwrap();
        stream.write_all(&len.to_be_bytes()).unwrap();
        stream.write_all(&payload).unwrap();
        let pong = proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME).expect("pong frame");
        assert!(matches!(
            Response::decode_with(codec, &pong),
            Ok(Response::Pong)
        ));
    }
    fixture.stop();
}

#[test]
fn slow_loris_half_frame_times_out_without_poisoning_the_shard() {
    // Short timeout so the loris dies quickly; 2 shards so the healthy
    // connection provably shares a shard with SOME loris (we park one
    // loris per shard via round-robin dispatch).
    let fixture = Fixture::sharded(Duration::from_millis(400));

    // Two lorises in a row land on shard 0 and shard 1 (round-robin):
    // each sends a length prefix advertising 100 bytes, then stalls.
    let mut lorises = Vec::new();
    for _ in 0..2 {
        let mut stream = fixture.raw_conn();
        stream.write_all(&100u32.to_be_bytes()).expect("prefix");
        stream.flush().unwrap();
        lorises.push(stream);
    }

    // A healthy pipelined connection keeps flowing while the lorises
    // starve: back-to-back bursts must complete, in order.
    let mut healthy = fixture.raw_conn();
    pipeline_burst(&mut healthy, Codec::JsonV1, 16);
    pipeline_burst(&mut healthy, Codec::JsonV1, 8);

    // Each loris gets the structured timeout reply, then a clean close.
    for mut loris in lorises {
        let payload = proto::read_frame(&mut loris, proto::DEFAULT_MAX_FRAME)
            .expect("loris gets a reply before the close");
        match Response::decode_with(Codec::JsonV1, &payload) {
            Ok(Response::ProtocolError { error }) => {
                assert!(error.contains("timed out"), "{error}");
            }
            other => panic!("expected a timeout protocol_error, got {other:?}"),
        }
        let mut rest = Vec::new();
        loris.read_to_end(&mut rest).expect("clean close");
        assert!(rest.is_empty(), "nothing follows the timeout reply");
    }

    // The shards survived the lorises: a fresh pipelined connection
    // completes a full burst.
    let mut fresh = fixture.raw_conn();
    pipeline_burst(&mut fresh, Codec::JsonV1, 8);
    let timeouts = fixture.server.metrics().snapshot().timeouts;
    assert!(
        timeouts >= 2,
        "both lorises must be counted, got {timeouts}"
    );
    fixture.stop();
}

#[test]
fn pipelined_connection_survives_a_malformed_frame_mid_burst() {
    let fixture = Fixture::sharded(Duration::from_secs(5));
    let mut stream = fixture.raw_conn();
    // good design, malformed JSON, good design — all written at once.
    let mut burst = Vec::new();
    for (id, payload) in [
        (0u64, design_request(0).encode_with(Codec::JsonV1)),
        (1, b"{\"not\": \"a request\"}".to_vec()),
        (2, design_request(2).encode_with(Codec::JsonV1)),
    ] {
        let _ = id;
        let len: u32 = payload.len().try_into().unwrap();
        burst.extend_from_slice(&len.to_be_bytes());
        burst.extend_from_slice(&payload);
    }
    stream.write_all(&burst).unwrap();
    stream.flush().unwrap();

    // In-order replies: design_ok(0), protocol_error, design_ok(2).
    let first = proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME).expect("first");
    assert!(matches!(
        Response::decode_with(Codec::JsonV1, &first),
        Ok(Response::DesignOk { id: 0, .. })
    ));
    let second = proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME).expect("second");
    assert!(matches!(
        Response::decode_with(Codec::JsonV1, &second),
        Ok(Response::ProtocolError { .. })
    ));
    let third = proto::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME).expect("third");
    assert!(matches!(
        Response::decode_with(Codec::JsonV1, &third),
        Ok(Response::DesignOk { id: 2, .. })
    ));
    fixture.stop();
}

#[test]
fn loadgen_swarm_completes_against_the_sharded_server() {
    use fsmgen_serve::{run_loadgen, LoadgenConfig};
    let fixture = Fixture::start(ServeConfig {
        shards: 2,
        max_connections: 512,
        ..ServeConfig::default()
    });
    let report = run_loadgen(&LoadgenConfig {
        addr: fixture.addr.clone(),
        connections: 32,
        requests_per_conn: 16,
        pipeline: 4,
        workers: 2,
        deadline: Duration::from_secs(30),
        ..LoadgenConfig::default()
    });
    assert_eq!(report.connect_errors, 0, "{report:?}");
    assert_eq!(report.completed_conns, 32, "{report:?}");
    assert_eq!(report.aborted, 0, "{report:?}");
    assert_eq!(report.requests_sent, 32 * 16, "{report:?}");
    assert_eq!(
        report.responses_ok + report.responses_failed,
        32 * 16,
        "every pipelined request must be answered: {report:?}"
    );
    assert_eq!(report.responses_failed, 0, "{report:?}");
    assert!(report.req_per_sec > 0.0);
    // The JSON rendering parses and echoes the counts.
    let parsed = fsmgen_serve::json::parse(&report.to_json()).expect("report JSON parses");
    assert_eq!(
        parsed.get("responses_ok").and_then(|j| j.as_u64()),
        Some(32 * 16)
    );
    fixture.stop();
}
