//! Hot-swap drill: a real `fsmgen-served` process with `--redesign`
//! under a live outcome stream. We induce a predictor collapse
//! (alternating outcomes starve the boot counter), watch the server
//! trigger a farm redesign on the fresh window and hot-swap the compiled
//! machine, and verify the swap drops zero requests (client-side
//! accounting: every predict frame sent gets its reply) and the windowed
//! hit rate recovers after the swap. A second drill SIGKILLs the server
//! mid-redesign and checks the restarted process comes back clean on the
//! same store and can run the whole collapse→swap cycle again.

use fsmgen_serve::json::{self, Json};
use fsmgen_serve::{Request, Response, ServeClient};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A running server process, killed on drop so a failing assertion never
/// leaks a listener.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fsmgen-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fsmgen-served");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a banner")
            .expect("banner is UTF-8");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    /// Unclean death: SIGKILL, no drain, no compaction.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL the server");
        let _ = self.child.wait();
        std::mem::forget(self);
    }

    /// Protocol-level shutdown, then wait for a clean exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        match client.call(&Request::Shutdown).expect("shutdown call") {
            Response::ShutdownAck => {}
            other => panic!("expected shutdown_ack, got {other:?}"),
        }
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited with {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-swap-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One predict chunk, strictly accounted: the reply must arrive, echo
/// the id and cover every bit sent. Returns (correct, generation,
/// swapped).
fn predict_chunk(client: &mut ServeClient, id: u64, bits: &str) -> (u64, u64, bool) {
    let sent = bits.chars().filter(|c| !c.is_whitespace()).count() as u64;
    match client
        .call(&Request::Predict {
            id,
            bits: bits.to_string(),
        })
        .expect("predict reply arrives")
    {
        Response::PredictOk {
            id: got,
            total,
            correct,
            generation,
            swapped,
        } => {
            assert_eq!(got, id, "response id echo");
            assert_eq!(total, sent, "every bit sent must be scored");
            (correct, generation, swapped)
        }
        other => panic!("unexpected predict reply: {other:?}"),
    }
}

fn stats(server: &ServerProc) -> Json {
    let mut client = server.client();
    match client.call(&Request::Stats).expect("stats call") {
        Response::Stats(text) => json::parse(&text).expect("stats JSON parses"),
        other => panic!("expected stats, got {other:?}"),
    }
}

fn counter(stats: &Json, block: &str, key: &str) -> u64 {
    stats
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{block}.{key} in stats"))
}

const WARMUP: &str = "1111111111111111111111111111111111111111111111111111111111111111";
const ALTERNATING: &str = "0101010101010101010101010101010101010101010101010101010101010101";

/// Streams chunks until a reply reports `swapped`, with client-side
/// request/response accounting. Returns (requests sent, post-trigger
/// chunk count, swap generation).
fn drive_until_swap(client: &mut ServeClient, start_id: u64, deadline: Duration) -> (u64, u64) {
    let started = Instant::now();
    let mut id = start_id;
    loop {
        let (_correct, generation, swapped) = predict_chunk(client, id, ALTERNATING);
        id += 1;
        if swapped {
            assert!(generation >= 1, "a swap must bump the generation");
            return (id, generation);
        }
        assert!(
            started.elapsed() < deadline,
            "no hot swap after {} chunks in {deadline:?}",
            id - start_id
        );
        // Give the background redesign thread a breath between chunks.
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn induced_collapse_triggers_redesign_and_swap_with_zero_dropped_requests() {
    collapse_drill("collapse", &[]);
}

/// The same collapse→redesign→hot-swap cycle against the sharded
/// event-driven server: predict frames stream through a shard's event
/// loop, and the swap must still drop zero in-flight requests.
#[test]
fn induced_collapse_swaps_cleanly_on_the_sharded_server() {
    collapse_drill("collapse-sharded", &["--shards", "2"]);
}

fn collapse_drill(tag: &str, arch_flags: &[&str]) {
    let dir = tmp_dir(tag);
    let jsonl = dir.join("swap-trace.jsonl");
    let mut flags = vec![
        "--redesign",
        "--redesign-window",
        "64",
        "--redesign-threshold",
        "0.6",
        "--redesign-history",
        "3",
        "--trace-jsonl",
        jsonl.to_str().unwrap(),
    ];
    flags.extend_from_slice(arch_flags);
    let server = ServerProc::spawn(&flags);
    let mut client = server.client();

    // Warm up confident: the boot 2-bit counter nails an all-taken
    // stream, so the collapse monitor arms at a high rate.
    let mut sent = 0u64;
    for _ in 0..2 {
        predict_chunk(&mut client, sent, WARMUP);
        sent += 1;
    }

    // Starve it: alternating outcomes collapse the counter. Every chunk
    // gets a reply (predict_chunk asserts it) — the swap must not drop
    // or stall a single in-flight request.
    let (sent, generation) = drive_until_swap(&mut client, sent, Duration::from_secs(60));
    assert!(generation >= 1);

    // Post-swap: the redesigned machine was trained on the alternating
    // window, so the windowed hit rate must recover.
    let mut post_total = 0u64;
    let mut post_correct = 0u64;
    let mut id = sent;
    for _ in 0..4 {
        let (correct, gen_now, _swapped) = predict_chunk(&mut client, id, ALTERNATING);
        assert_eq!(gen_now, generation, "no further swap expected");
        post_total += ALTERNATING.len() as u64;
        post_correct += correct;
        id += 1;
    }
    let recovered = post_correct as f64 / post_total as f64;
    assert!(
        recovered >= 0.85,
        "post-swap hit rate must recover, got {recovered:.3} ({post_correct}/{post_total})"
    );

    // Server-side accounting agrees with the client's: every request
    // counted, the trigger and the swap both happened and are visible in
    // the metrics' predictor block.
    let snapshot = stats(&server);
    assert_eq!(counter(&snapshot, "predictor", "predict_requests"), id);
    assert!(counter(&snapshot, "predictor", "redesigns_triggered") >= 1);
    assert!(counter(&snapshot, "predictor", "swaps") >= 1);
    assert!(counter(&snapshot, "predictor", "generation") >= 1);
    assert_eq!(
        counter(&snapshot, "predictor", "predict_bits"),
        id * WARMUP.len() as u64
    );
    server.shutdown();

    // The obs stream carries the lifecycle marks.
    let trace = std::fs::read_to_string(&jsonl).expect("trace jsonl written");
    assert!(trace.contains("redesign_triggered"), "{trace}");
    assert!(trace.contains("predictor_swapped"), "{trace}");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn predict_without_redesign_is_a_protocol_error_and_keeps_the_connection() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    // The client maps a protocol_error reply to ClientError::Rejected.
    match client.call(&Request::Predict {
        id: 1,
        bits: "0101".into(),
    }) {
        Err(fsmgen_serve::ClientError::Rejected(error)) => {
            assert!(error.contains("redesign"), "{error}");
        }
        other => panic!("expected a rejected protocol error, got {other:?}"),
    }
    // The frame was well-formed, so the connection survives.
    match client.call(&Request::Ping).expect("ping after error") {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn sigkill_during_redesign_restarts_clean_and_swaps_again() {
    let dir = tmp_dir("sigkill");
    let store_file = dir.join("swap-store.fsnap");
    let store_flag = store_file.to_str().unwrap();
    let redesign_flags = [
        "--redesign",
        "--redesign-window",
        "64",
        "--redesign-threshold",
        "0.6",
        "--redesign-history",
        "3",
        "--cache-file",
        store_flag,
        "--flush-every",
        "1",
    ];

    // Phase 1: drive the victim into collapse, then SIGKILL it right at
    // the point where the redesign may still be in flight.
    let victim = ServerProc::spawn(&redesign_flags);
    {
        let mut client = victim.client();
        let mut sent = 0u64;
        for _ in 0..2 {
            predict_chunk(&mut client, sent, WARMUP);
            sent += 1;
        }
        // Push chunks until the server reports the trigger fired, then
        // kill without waiting for the swap.
        let started = Instant::now();
        loop {
            predict_chunk(&mut client, sent, ALTERNATING);
            sent += 1;
            if counter(&stats(&victim), "predictor", "redesigns_triggered") >= 1 {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(60),
                "collapse never triggered"
            );
        }
    }
    victim.sigkill();

    // Phase 2: same store, fresh process. The restart must come back
    // clean (recovered store, live predictor at generation 0) and the
    // whole collapse→redesign→swap cycle must work again.
    let survivor = ServerProc::spawn(&redesign_flags);
    let mut client = survivor.client();
    let boot = stats(&survivor);
    assert_eq!(
        counter(&boot, "predictor", "generation"),
        0,
        "a restarted live predictor boots on the fallback machine"
    );
    let mut sent = 0u64;
    for _ in 0..2 {
        predict_chunk(&mut client, sent, WARMUP);
        sent += 1;
    }
    let (_sent, generation) = drive_until_swap(&mut client, sent, Duration::from_secs(60));
    assert!(generation >= 1, "the restarted server must swap again");
    survivor.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}
