//! Crash-drill differential harness: a real `fsmgen-served` process is
//! SIGKILL'd mid-traffic and must restart from its durable store,
//! recover (truncating the torn tail we inject), and serve designs
//! byte-identical to the uninterrupted local reference across the
//! workload×history matrix. A second drill checks the one-time
//! migration of a legacy PR 4 snapshot file into the log format.

use fsmgen::Designer;
use fsmgen_automata::machine_to_table;
use fsmgen_farm::{DesignJob, Farm, FarmConfig, STORE_MAGIC};
use fsmgen_serve::json::{self, Json};
use fsmgen_serve::{Request, Response, ServeClient};
use fsmgen_testkit::{workload_matrix, HISTORIES};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

/// A running server process, killed on drop so a failing assertion never
/// leaks a listener.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fsmgen-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fsmgen-served");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a banner")
            .expect("banner is UTF-8");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    /// Unclean death: SIGKILL, no drain, no compaction, no final fsync
    /// beyond what the append path already forced.
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL the server");
        let _ = self.child.wait();
        std::mem::forget(self);
    }

    /// Protocol-level shutdown, then wait for a clean exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        match client.call(&Request::Shutdown).expect("shutdown call") {
            Response::ShutdownAck => {}
            other => panic!("expected shutdown_ack, got {other:?}"),
        }
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited with {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-crash-{}-{tag}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The matrix as (request, locally-designed table text) pairs — the
/// uninterrupted reference every served design must match byte-for-byte.
fn matrix_with_expected_tables() -> Vec<(Request, String)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for (_name, trace) in workload_matrix() {
        for history in HISTORIES {
            let design = Designer::new(history)
                .design_from_trace(&trace)
                .expect("local design succeeds");
            out.push((
                Request::Design {
                    id,
                    trace: trace.iter().map(|b| if b { '1' } else { '0' }).collect(),
                    history,
                    threshold: None,
                    dont_care: None,
                },
                machine_to_table(design.fsm()),
            ));
            id += 1;
        }
    }
    out
}

/// Drives a slice of the matrix through one connection, byte-checking
/// every machine against the local reference. Returns cache-hit count.
fn drive(server: &ServerProc, matrix: &[(Request, String)], expect_all_cached: bool) -> usize {
    let mut client = server.client();
    let mut cached = 0usize;
    for (request, expected_table) in matrix {
        let response = client
            .design_with_retry(request, 20)
            .expect("design request");
        match response {
            Response::DesignOk {
                id,
                machine,
                cache_hit,
                ..
            } => {
                let Request::Design { id: want, .. } = request else {
                    unreachable!()
                };
                assert_eq!(id, *want, "response id echo");
                assert_eq!(
                    &machine, expected_table,
                    "served machine differs from the local reference for job {id}"
                );
                if cache_hit {
                    cached += 1;
                }
                if expect_all_cached {
                    assert!(cache_hit, "recovered server recomputed job {id}");
                }
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    cached
}

fn stats(server: &ServerProc) -> Json {
    let mut client = server.client();
    match client.call(&Request::Stats).expect("stats call") {
        Response::Stats(text) => json::parse(&text).expect("stats JSON parses"),
        other => panic!("expected stats, got {other:?}"),
    }
}

fn counter(stats: &Json, block: &str, key: &str) -> u64 {
    stats
        .get(block)
        .and_then(|b| b.get(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{block}.{key} in stats"))
}

#[test]
fn sigkilled_server_recovers_truncates_torn_tail_and_serves_identical_designs() {
    sigkill_drill("sigkill", &[]);
}

/// The same unclean-death drill against the sharded event-driven
/// architecture: shards share ONE durable log, and recovery must
/// re-partition it so a different shard count still serves everything
/// warm and byte-identical.
#[test]
fn sigkilled_sharded_server_recovers_from_the_shared_log() {
    sigkill_drill("sigkill-sharded", &["--shards", "4"]);
}

fn sigkill_drill(tag: &str, arch_flags: &[&str]) {
    let dir = tmp_dir(tag);
    let store_file = dir.join("crash-store.fsnap");
    let store_flag = store_file.to_str().unwrap();
    let matrix = matrix_with_expected_tables();

    // Phase 1: a server syncing every append (so the kill loses nothing)
    // serves the whole matrix, then dies by SIGKILL — no drain, no
    // compaction, no graceful anything.
    let mut victim_flags = vec!["--cache-file", store_flag, "--flush-every", "1"];
    victim_flags.extend_from_slice(arch_flags);
    let victim = ServerProc::spawn(&victim_flags);
    drive(&victim, &matrix, false);
    let victim_stats = stats(&victim);
    assert!(
        counter(&victim_stats, "store", "appends") >= matrix.len() as u64,
        "every unique design must have been appended before the kill"
    );
    victim.sigkill();
    assert!(store_file.exists(), "the store survives the kill");

    // Simulate the torn write a crash can leave behind: a partial frame
    // prefix at the tail (shorter than the 24-byte record framing).
    {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&store_file)
            .unwrap();
        file.write_all(&[0xAB; 12]).unwrap();
    }
    let torn_len = std::fs::metadata(&store_file).unwrap().len();

    // Phase 2: restart on the same store. Recovery must truncate the
    // torn tail (counted, not fatal) and serve every matrix job from the
    // recovered cache, byte-identical to the uninterrupted reference.
    let mut survivor_flags = vec!["--cache-file", store_flag];
    survivor_flags.extend_from_slice(arch_flags);
    let survivor = ServerProc::spawn(&survivor_flags);
    drive(&survivor, &matrix, true);
    let survivor_stats = stats(&survivor);
    assert!(
        counter(&survivor_stats, "store", "recovered") >= matrix.len() as u64,
        "all appended designs must be recovered: {survivor_stats:?}"
    );
    assert_eq!(
        counter(&survivor_stats, "store", "truncated"),
        1,
        "the torn tail must be counted in store.truncated"
    );
    assert!(
        counter(&survivor_stats, "cache", "snapshot_hits") >= matrix.len() as u64,
        "every matrix job must be served from the recovered store"
    );
    assert!(
        std::fs::metadata(&store_file).unwrap().len() < torn_len,
        "recovery must physically truncate the torn tail"
    );
    survivor.shutdown();

    // The graceful exit compacted: a third boot still serves everything.
    // Deliberately spawned WITHOUT the architecture flags: the sharded
    // variant's log, written by 4 shards, must recover into the
    // single-shard threaded server too (the shard count is not part of
    // the on-disk format).
    let third = ServerProc::spawn(&["--cache-file", store_flag]);
    drive(&third, &matrix, true);
    let third_stats = stats(&third);
    assert_eq!(
        counter(&third_stats, "store", "truncated"),
        0,
        "a compacted store has no torn tail left"
    );
    third.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn legacy_snapshot_file_is_migrated_once_and_served_warm() {
    let dir = tmp_dir("legacy");
    let store_file = dir.join("legacy.fsnap");
    let matrix = matrix_with_expected_tables();

    // Produce a genuine PR 4 snapshot-v1 file by running the same jobs
    // through a local farm and saving its cache the old way. Job ids are
    // not part of the fingerprint, so the server's lookups match.
    let farm = Farm::new(FarmConfig {
        workers: 2,
        cache_capacity: 1024,
    });
    let jobs: Vec<DesignJob> = workload_matrix()
        .into_iter()
        .flat_map(|(_name, trace)| {
            let trace = Arc::new(trace);
            HISTORIES
                .into_iter()
                .map(move |history| {
                    DesignJob::from_trace(0, Arc::clone(&trace), Designer::new(history))
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let _report = farm.design_batch(jobs);
    let saved = farm.save_cache_snapshot(&store_file).expect("legacy save");
    assert_eq!(saved, matrix.len(), "one snapshot record per unique job");

    // A server pointed at the legacy file migrates it in place and
    // serves every job from the migrated cache.
    let server = ServerProc::spawn(&["--cache-file", store_file.to_str().unwrap()]);
    drive(&server, &matrix, true);
    let migrated_stats = stats(&server);
    assert_eq!(
        counter(&migrated_stats, "store", "migrated"),
        matrix.len() as u64,
        "every legacy record must be migrated: {migrated_stats:?}"
    );
    assert!(
        counter(&migrated_stats, "cache", "snapshot_hits") >= matrix.len() as u64,
        "every job must be served from the migrated store"
    );
    server.shutdown();

    // The file is now a log — the migration happened exactly once.
    let bytes = std::fs::read(&store_file).unwrap();
    assert_eq!(&bytes[..8], &STORE_MAGIC, "migrated file must be log v1");

    std::fs::remove_dir_all(&dir).unwrap();
}
