//! End-to-end differential harness for the design service: spawn a real
//! `fsmgen-served` process, drive it with concurrent clients over the
//! canonical workload×history matrix, and assert that every Moore
//! machine returned over TCP is byte-identical to one designed locally
//! in this process. A second server run over the same snapshot file must
//! serve (nearly) everything from the warm cache.

use fsmgen::Designer;
use fsmgen_automata::machine_to_table;
use fsmgen_serve::json::{self, Json};
use fsmgen_serve::{Request, Response, ServeClient};
use fsmgen_testkit::{workload_matrix, HISTORIES};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;

/// A running server process, killed on drop so a failing assertion never
/// leaks a listener.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra_args: &[&str]) -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fsmgen-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fsmgen-served");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("server prints a banner")
            .expect("banner is UTF-8");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        ServerProc { child, addr }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    /// Protocol-level shutdown, then wait for a clean exit.
    fn shutdown(mut self) {
        let mut client = self.client();
        match client.call(&Request::Shutdown).expect("shutdown call") {
            Response::ShutdownAck => {}
            other => panic!("expected shutdown_ack, got {other:?}"),
        }
        let status = self.child.wait().expect("server exit");
        assert!(status.success(), "server exited with {status:?}");
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fsmgen-serve-e2e-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The matrix as (request, locally-designed table text) pairs. Ids are
/// stable across calls so the warm run re-requests identical work.
fn matrix_with_expected_tables() -> Vec<(Request, String)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for (_name, trace) in workload_matrix() {
        for history in HISTORIES {
            let design = Designer::new(history)
                .design_from_trace(&trace)
                .expect("local design succeeds");
            out.push((
                Request::Design {
                    id,
                    trace: trace.iter().map(|b| if b { '1' } else { '0' }).collect(),
                    history,
                    threshold: None,
                    dont_care: None,
                },
                machine_to_table(design.fsm()),
            ));
            id += 1;
        }
    }
    out
}

/// Drives the whole matrix through `CLIENTS` concurrent connections and
/// checks byte-identity of every returned machine. Returns the number of
/// requests answered with `cache_hit: true`.
fn drive_matrix(server: &ServerProc, expect_all_cached: bool) -> usize {
    let matrix = Arc::new(matrix_with_expected_tables());
    let mut handles = Vec::new();
    for worker in 0..CLIENTS {
        let matrix = Arc::clone(&matrix);
        let addr = server.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
            let mut cached = 0usize;
            // Each client walks the full matrix, offset so concurrent
            // clients collide on the same jobs (exercising dedup).
            for step in 0..matrix.len() {
                let (request, expected_table) = &matrix[(step + worker * 3) % matrix.len()];
                let response = client
                    .design_with_retry(request, 20)
                    .expect("design request");
                match response {
                    Response::DesignOk {
                        id,
                        machine,
                        cache_hit,
                        ..
                    } => {
                        let Request::Design { id: want, .. } = request else {
                            unreachable!()
                        };
                        assert_eq!(id, *want, "response id echo");
                        assert_eq!(
                            &machine, expected_table,
                            "served machine differs from the local design for job {id}"
                        );
                        if cache_hit {
                            cached += 1;
                        }
                        if expect_all_cached {
                            assert!(cache_hit, "warm server recomputed job {id}");
                        }
                    }
                    other => panic!("unexpected response: {other:?}"),
                }
            }
            cached
        }));
    }
    handles.into_iter().map(|h| h.join().expect("client")).sum()
}

fn stats(server: &ServerProc) -> Json {
    let mut client = server.client();
    match client.call(&Request::Stats).expect("stats call") {
        Response::Stats(text) => json::parse(&text).expect("stats JSON parses"),
        other => panic!("expected stats, got {other:?}"),
    }
}

fn cache_counters(stats: &Json) -> BTreeMap<&'static str, u64> {
    let cache = stats.get("cache").expect("cache block");
    ["hits", "snapshot_hits", "misses"]
        .into_iter()
        .map(|k| (k, cache.get(k).and_then(Json::as_u64).expect(k)))
        .collect()
}

#[test]
fn served_designs_are_bit_identical_and_warm_restart_stays_warm() {
    let dir = tmp_dir("matrix");
    let cache_file = dir.join("serve-cache.fsnap");
    let cache_flag = cache_file.to_str().unwrap();
    let metrics_file = dir.join("serve-metrics.json");
    let metrics_flag = metrics_file.to_str().unwrap();

    // Cold run: every unique job is designed exactly once (single-flight
    // dedup), every response is bit-identical to the local design.
    let cold = ServerProc::spawn(&["--cache-file", cache_flag, "--metrics-json", metrics_flag]);
    drive_matrix(&cold, false);
    let cold_stats = stats(&cold);
    let cold_cache = cache_counters(&cold_stats);
    let unique = workload_matrix().len() * HISTORIES.len();
    assert_eq!(
        cold_cache["misses"], unique as u64,
        "cold server must design each unique job exactly once: {cold_cache:?}"
    );
    assert!(
        cold_stats
            .get("requests_ok")
            .and_then(Json::as_u64)
            .unwrap() as usize
            >= CLIENTS * unique,
        "every request must succeed"
    );
    cold.shutdown();
    assert!(cache_file.exists(), "shutdown must persist the snapshot");
    assert!(metrics_file.exists(), "shutdown must write metrics JSON");

    // Warm restart over the same snapshot: ≥90% of lookups must be cache
    // hits (here: all of them), and the designs stay byte-identical.
    let warm = ServerProc::spawn(&["--cache-file", cache_flag]);
    drive_matrix(&warm, true);
    let warm_cache = cache_counters(&stats(&warm));
    let hits = warm_cache["hits"] + warm_cache["snapshot_hits"];
    let lookups = hits + warm_cache["misses"];
    assert!(
        hits as f64 >= 0.9 * lookups as f64,
        "warm restart must serve >=90% from cache: {warm_cache:?}"
    );
    assert!(
        warm_cache["snapshot_hits"] >= unique as u64,
        "every unique job must come from the snapshot: {warm_cache:?}"
    );
    warm.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ping_stats_and_design_share_one_connection() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    let request = Request::Design {
        id: 9,
        trace: "0000 1000 1011 1101 1110 1111".into(),
        history: 2,
        threshold: None,
        dont_care: None,
    };
    match client.call(&request).unwrap() {
        Response::DesignOk { id, states, .. } => {
            assert_eq!(id, 9);
            assert_eq!(states, 3, "the paper trace designs to 3 states at h=2");
        }
        other => panic!("unexpected: {other:?}"),
    }
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(text) => {
            let parsed = json::parse(&text).expect("stats parse");
            assert_eq!(
                parsed.get("kind").and_then(Json::as_str),
                Some("serve_metrics")
            );
            assert_eq!(parsed.get("version").and_then(Json::as_u64), Some(1));
        }
        other => panic!("unexpected: {other:?}"),
    }
    server.shutdown();
}

#[test]
fn design_errors_are_structured_not_fatal() {
    let server = ServerProc::spawn(&[]);
    let mut client = server.client();
    // history out of range must come back as a design error, not a
    // panic or disconnect...
    let bad = Request::Design {
        id: 1,
        trace: "1010".into(),
        history: 99,
        threshold: None,
        dont_care: None,
    };
    match client.call(&bad).unwrap() {
        Response::DesignError { id, error } => {
            assert_eq!(id, 1);
            assert!(error.contains("history"), "{error}");
        }
        other => panic!("unexpected: {other:?}"),
    }
    // ...and a bad trace likewise...
    let bad_trace = Request::Design {
        id: 2,
        trace: "10x1".into(),
        history: 2,
        threshold: None,
        dont_care: None,
    };
    match client.call(&bad_trace).unwrap() {
        Response::DesignError { id, error } => {
            assert_eq!(id, 2);
            assert!(error.contains("trace"), "{error}");
        }
        other => panic!("unexpected: {other:?}"),
    }
    // ...while the same connection keeps serving good requests.
    assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
    server.shutdown();
}
