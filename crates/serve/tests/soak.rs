//! Soak harness: concurrent well-behaved clients, hostile clients and
//! injected connection faults hammer one server while a sampler asserts
//! the metrics stay monotone. The pass criteria are: zero panics (the
//! server thread joins cleanly), progress (designs keep completing), and
//! every hostile interaction accounted for by a counter.
//!
//! The quick variant runs in the normal suite; the 30-second variant is
//! `#[ignore]`d and driven by CI's serve job with `-- --ignored`.

use fsmgen_serve::{Request, Response, ServeClient, ServeConfig, Server};
use fsmgen_testkit::{workload_matrix, HISTORIES};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn soak(duration: Duration, good_clients: usize, bad_clients: usize) {
    fsmgen::failpoints::configure_from_spec_global("serve-conn=error:5").expect("failpoint spec");
    let server = Arc::new(
        Server::bind(ServeConfig {
            workers: 2,
            read_timeout: Duration::from_millis(200),
            max_frame_bytes: 1 << 16,
            ..ServeConfig::default()
        })
        .expect("bind"),
    );
    let handle = server.handle();
    let addr = server.local_addr().to_string();
    let runner = Arc::clone(&server);
    let server_thread = std::thread::spawn(move || runner.run());

    let stop = Arc::new(AtomicBool::new(false));
    let designs_ok = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();

    // Well-behaved clients: walk the matrix on keep-alive connections,
    // reconnecting when an injected fault drops them.
    let requests: Arc<Vec<Request>> = Arc::new(
        workload_matrix()
            .into_iter()
            .flat_map(|(_, trace)| {
                let text: String = trace.iter().map(|b| if b { '1' } else { '0' }).collect();
                HISTORIES.map(|history| Request::Design {
                    id: history as u64,
                    trace: text.clone(),
                    history,
                    threshold: None,
                    dont_care: None,
                })
            })
            .collect(),
    );
    for worker in 0..good_clients {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        let requests = Arc::clone(&requests);
        let designs_ok = Arc::clone(&designs_ok);
        workers.push(std::thread::spawn(move || {
            let mut step = worker;
            while !stop.load(Ordering::Relaxed) {
                let Ok(mut client) = ServeClient::connect(&addr, Duration::from_secs(5)) else {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                // A burst per connection; a dropped (fault-injected)
                // connection just means reconnect.
                for _ in 0..8 {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let request = &requests[step % requests.len()];
                    step += 1;
                    match client.design_with_retry(request, 10) {
                        Ok(Response::DesignOk { .. }) => {
                            designs_ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(other) => panic!("good client got {other:?}"),
                        Err(_) => break, // dropped connection: reconnect
                    }
                }
            }
        }));
    }

    // Hostile clients: garbage, truncations, oversized prefixes.
    for worker in 0..bad_clients {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        workers.push(std::thread::spawn(move || {
            let mut round = worker as u32;
            while !stop.load(Ordering::Relaxed) {
                round = round.wrapping_mul(1664525).wrapping_add(1013904223);
                let Ok(mut stream) = TcpStream::connect(&addr) else {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                };
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                match round % 3 {
                    0 => {
                        // Unframed garbage.
                        let _ = stream.write_all(&round.to_be_bytes());
                    }
                    1 => {
                        // A truncated frame: promise 64 bytes, send 3.
                        let _ = stream.write_all(&64u32.to_be_bytes());
                        let _ = stream.write_all(b"abc");
                    }
                    _ => {
                        // An oversized prefix.
                        let _ = stream.write_all(&u32::MAX.to_be_bytes());
                    }
                }
                let mut sink = Vec::new();
                let _ = stream.read_to_end(&mut sink);
            }
        }));
    }

    // Sampler: metrics must be monotone for the whole run.
    let deadline = Instant::now() + duration;
    let mut last = server.metrics().snapshot();
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(50));
        let now = server.metrics().snapshot();
        assert!(
            now.is_monotone_since(&last),
            "metrics regressed: {last:?} -> {now:?}"
        );
        last = now;
    }

    stop.store(true, Ordering::Relaxed);
    for worker in workers {
        worker.join().expect("client thread must not panic");
    }
    fsmgen::failpoints::clear_global();

    // One last well-formed exchange: the server survived the storm.
    let mut client = ServeClient::connect(&addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Pong);
    drop(client);

    handle.shutdown();
    server_thread
        .join()
        .expect("server thread must not panic")
        .expect("server run");

    let end = server.metrics().snapshot();
    assert!(
        designs_ok.load(Ordering::Relaxed) > 0,
        "soak made no progress"
    );
    assert!(end.requests_ok > 0);
    assert_eq!(
        end.injected_faults, 5,
        "all armed faults must fire and be counted"
    );
    if bad_clients > 0 {
        assert!(
            end.malformed_frames + end.oversized_frames + end.timeouts > 0,
            "hostile traffic left no trace in the metrics: {end:?}"
        );
    }
}

/// Always-on smoke variant: a short burst of the same mixed traffic.
#[test]
fn soak_smoke_two_seconds() {
    soak(Duration::from_secs(2), 3, 2);
}

/// Kill-and-recover: a real server process backed by a durable store is
/// SIGKILL'd mid-soak; its replacement on the same store file must come
/// back warm (≥90% cache hits on the replayed requests) with monotone
/// metrics throughout the replay.
#[test]
fn soak_kill_and_recover_resumes_warm() {
    use std::io::BufRead as _;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("fsmgen-soak-kill-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::create_dir_all(&dir).unwrap();
    let store_file = dir.join("soak-store.fsnap");

    let spawn = || {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fsmgen-served"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .args(["--cache-file", store_file.to_str().unwrap()])
            .args(["--flush-every", "1"])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn fsmgen-served");
        let stdout = child.stdout.take().expect("stdout piped");
        let banner = std::io::BufReader::new(stdout)
            .lines()
            .next()
            .expect("banner")
            .expect("utf8");
        let addr = banner
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
            .to_string();
        (child, addr)
    };

    let requests: Arc<Vec<Request>> = Arc::new(
        workload_matrix()
            .into_iter()
            .flat_map(|(_, trace)| {
                let text: String = trace.iter().map(|b| if b { '1' } else { '0' }).collect();
                HISTORIES.map(|history| Request::Design {
                    id: history as u64,
                    trace: text.clone(),
                    history,
                    threshold: None,
                    dont_care: None,
                })
            })
            .collect(),
    );

    // Phase 1: seed every unique design (each append fsync'd), then keep
    // the server under concurrent fire and SIGKILL it mid-soak.
    let (mut victim, victim_addr) = spawn();
    {
        let mut client =
            ServeClient::connect(&victim_addr, Duration::from_secs(10)).expect("connect");
        for request in requests.iter() {
            match client.design_with_retry(request, 10).expect("seed design") {
                Response::DesignOk { .. } => {}
                other => panic!("seed got {other:?}"),
            }
        }
    }
    let mut stormers = Vec::new();
    for worker in 0..3usize {
        let addr = victim_addr.clone();
        let requests = Arc::clone(&requests);
        stormers.push(std::thread::spawn(move || {
            let mut step = worker;
            // Hammer until the kill severs the connection.
            loop {
                let Ok(mut client) = ServeClient::connect(&addr, Duration::from_secs(2)) else {
                    return;
                };
                for _ in 0..16 {
                    let request = &requests[step % requests.len()];
                    step += 1;
                    if client.design_with_retry(request, 2).is_err() {
                        return;
                    }
                }
            }
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    victim.kill().expect("SIGKILL mid-soak");
    let _ = victim.wait();
    for stormer in stormers {
        stormer.join().expect("storm client must not panic");
    }
    assert!(store_file.exists(), "the store survives the kill");

    // Phase 2: restart on the same store and replay the request set.
    // Metrics must be monotone across the replay and ≥90% of the
    // replayed requests must be warm hits.
    let (mut survivor, survivor_addr) = spawn();
    let mut client =
        ServeClient::connect(&survivor_addr, Duration::from_secs(10)).expect("connect");
    let monotone_counters = |client: &mut ServeClient| -> (u64, u64, u64) {
        let Response::Stats(text) = client.call(&Request::Stats).expect("stats") else {
            panic!("expected stats");
        };
        let field = |name: &str| -> u64 {
            let key = format!("\"{name}\":");
            let at = text
                .find(&key)
                .unwrap_or_else(|| panic!("{name} in {text}"));
            text[at + key.len()..]
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("integer counter")
        };
        (
            field("conns_accepted"),
            field("requests_ok"),
            field("stats_requests"),
        )
    };
    let mut last = monotone_counters(&mut client);
    let mut warm_hits = 0usize;
    for request in requests.iter() {
        match client
            .design_with_retry(request, 10)
            .expect("replay design")
        {
            Response::DesignOk { cache_hit, .. } => {
                if cache_hit {
                    warm_hits += 1;
                }
            }
            other => panic!("replay got {other:?}"),
        }
        let now = monotone_counters(&mut client);
        assert!(
            now.0 >= last.0 && now.1 >= last.1 && now.2 >= last.2,
            "metrics regressed after restart: {last:?} -> {now:?}"
        );
        last = now;
    }
    assert!(
        warm_hits * 10 >= requests.len() * 9,
        "restarted server must serve >=90% of replayed requests warm \
         ({warm_hits}/{})",
        requests.len()
    );

    // Clean exit for the survivor.
    match client.call(&Request::Shutdown).expect("shutdown") {
        Response::ShutdownAck => {}
        other => panic!("expected shutdown_ack, got {other:?}"),
    }
    drop(client);
    let status = survivor.wait().expect("survivor exit");
    assert!(status.success(), "survivor exited with {status:?}");

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The CI soak: 30 seconds of mixed traffic (run with `--ignored`).
#[test]
#[ignore = "30s soak, run explicitly (CI serve job)"]
fn soak_thirty_seconds() {
    soak(Duration::from_secs(30), 6, 3);
}
