//! Sharded-server e2e battery: with `--shards 4`, concurrent clients
//! whose jobs map across every shard must get machines byte-identical
//! to the threaded single-lock server AND to a local `fsmgen` design;
//! the per-shard counter blocks in `serve_metrics` must sum to the
//! global totals and stay monotone; and the binary v2 codec must serve
//! payload-identical designs to JSON v1 (the differential harness
//! refereeing the two codecs).

use fsmgen::Designer;
use fsmgen_automata::machine_to_table;
use fsmgen_serve::json::{self, Json};
use fsmgen_serve::{Codec, Request, Response, ServeClient, ServeConfig, Server, ServerHandle};
use fsmgen_testkit::{workload_matrix, HISTORIES};
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: usize = 4;

/// An in-process server on a run thread, torn down via the handle.
struct Fixture {
    server: Arc<Server>,
    handle: ServerHandle,
    addr: String,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Fixture {
    fn start(shards: usize) -> Fixture {
        let server = Arc::new(
            Server::bind(ServeConfig {
                shards,
                workers: 1,
                max_connections: 256,
                ..ServeConfig::default()
            })
            .expect("bind"),
        );
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || runner.run());
        Fixture {
            server,
            handle,
            addr,
            thread: Some(thread),
        }
    }

    fn client(&self) -> ServeClient {
        ServeClient::connect(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    fn client_with(&self, codec: Codec) -> ServeClient {
        ServeClient::connect_with(&self.addr, Duration::from_secs(10), codec).expect("connect")
    }

    fn stats(&self) -> Json {
        json::parse(&self.server.metrics_json()).expect("metrics JSON parses")
    }

    fn stop(mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread joins")
                .expect("server exits clean");
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The canonical matrix as (request, locally designed table) pairs.
fn matrix_with_expected_tables() -> Vec<(Request, String)> {
    let mut out = Vec::new();
    let mut id = 0u64;
    for (_name, trace) in workload_matrix() {
        for history in HISTORIES {
            let design = Designer::new(history)
                .design_from_trace(&trace)
                .expect("local design succeeds");
            out.push((
                Request::Design {
                    id,
                    trace: trace.iter().map(|b| if b { '1' } else { '0' }).collect(),
                    history,
                    threshold: None,
                    dont_care: None,
                },
                machine_to_table(design.fsm()),
            ));
            id += 1;
        }
    }
    out
}

fn design_machine(client: &mut ServeClient, request: &Request) -> String {
    match client.design_with_retry(request, 20).expect("design") {
        Response::DesignOk { id, machine, .. } => {
            let Request::Design { id: want, .. } = request else {
                unreachable!()
            };
            assert_eq!(id, *want, "response id echo");
            machine
        }
        other => panic!("unexpected response: {other:?}"),
    }
}

fn shard_entries(stats: &Json) -> Vec<&Json> {
    stats
        .get("shards")
        .and_then(Json::as_array)
        .expect("stats carries a shards array")
        .iter()
        .collect()
}

fn shard_sum(stats: &Json, key: &str) -> u64 {
    shard_entries(stats)
        .iter()
        .map(|entry| {
            entry
                .get(key)
                .and_then(Json::as_u64)
                .expect("shard counter")
        })
        .sum()
}

fn service_counter(stats: &Json, key: &str) -> u64 {
    stats
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("{key} in stats"))
}

#[test]
fn four_shard_server_matches_single_shard_and_local_designs() {
    let sharded = Fixture::start(4);
    let threaded = Fixture::start(0);
    let matrix = Arc::new(matrix_with_expected_tables());

    // Concurrent clients walk the matrix with offsets, so shards see
    // colliding and disjoint jobs at once.
    let mut handles = Vec::new();
    for worker in 0..CLIENTS {
        let matrix = Arc::clone(&matrix);
        let addr = sharded.addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = ServeClient::connect(&addr, Duration::from_secs(10)).expect("connect");
            for step in 0..matrix.len() {
                let (request, expected) = &matrix[(step + worker * 3) % matrix.len()];
                let machine = design_machine(&mut client, request);
                assert_eq!(
                    &machine, expected,
                    "sharded machine differs from the local reference"
                );
            }
        }));
    }
    for handle in handles {
        handle.join().expect("client thread");
    }

    // The threaded baseline serves the identical bytes.
    let mut client = threaded.client();
    for (request, expected) in matrix.iter() {
        let machine = design_machine(&mut client, request);
        assert_eq!(
            &machine, expected,
            "threaded and sharded architectures must agree"
        );
    }

    // Per-shard counters exist (4 entries), sum to the totals, and the
    // work actually spread beyond one shard.
    let stats = sharded.stats();
    assert_eq!(shard_entries(&stats).len(), 4);
    assert_eq!(
        shard_sum(&stats, "conns"),
        service_counter(&stats, "conns_accepted"),
        "shard conns must sum to the accepted total"
    );
    assert_eq!(
        shard_sum(&stats, "requests_ok"),
        service_counter(&stats, "requests_ok"),
        "shard requests_ok must sum to the total"
    );
    assert_eq!(
        shard_sum(&stats, "requests_failed"),
        service_counter(&stats, "requests_failed"),
    );
    let active_shards = shard_entries(&stats)
        .iter()
        .filter(|e| e.get("frames").and_then(Json::as_u64).unwrap_or(0) > 0)
        .count();
    assert!(
        active_shards >= 2,
        "round-robin dispatch must exercise multiple shards, got {active_shards}"
    );
    // The threaded server reports no shard blocks.
    assert!(shard_entries(&threaded.stats()).is_empty());

    sharded.stop();
    threaded.stop();
}

#[test]
fn per_shard_counters_stay_monotone_across_waves() {
    let fixture = Fixture::start(4);
    let matrix = matrix_with_expected_tables();
    let mut previous: Vec<(u64, u64, u64)> = vec![(0, 0, 0); 4];
    for wave in 0..3 {
        let mut client = fixture.client();
        for (request, _expected) in matrix.iter().take(6) {
            let _machine = design_machine(&mut client, request);
        }
        drop(client);
        let stats = fixture.stats();
        let entries = shard_entries(&stats);
        assert_eq!(entries.len(), 4);
        for (i, entry) in entries.iter().enumerate() {
            let now = (
                entry.get("conns").and_then(Json::as_u64).unwrap(),
                entry.get("frames").and_then(Json::as_u64).unwrap(),
                entry.get("requests_ok").and_then(Json::as_u64).unwrap(),
            );
            assert!(
                now.0 >= previous[i].0 && now.1 >= previous[i].1 && now.2 >= previous[i].2,
                "wave {wave}: shard {i} counters went backwards: {:?} -> {now:?}",
                previous[i]
            );
            previous[i] = now;
        }
        assert_eq!(
            shard_sum(&stats, "requests_ok"),
            service_counter(&stats, "requests_ok"),
            "wave {wave}: shard sums must keep matching the totals"
        );
    }
    fixture.stop();
}

#[test]
fn binary_v2_and_json_v1_serve_byte_identical_designs() {
    // Referee both architectures: codec choice must never change the
    // designed machine, sharded or threaded.
    for shards in [0usize, 2] {
        let fixture = Fixture::start(shards);
        let mut v1 = fixture.client_with(Codec::JsonV1);
        let mut v2 = fixture.client_with(Codec::BinaryV2);
        assert_eq!(v2.codec(), Codec::BinaryV2);
        for (request, expected) in matrix_with_expected_tables().iter().take(12) {
            let from_v1 = design_machine(&mut v1, request);
            let from_v2 = design_machine(&mut v2, request);
            assert_eq!(
                from_v1, from_v2,
                "codecs must serve identical machines (shards={shards})"
            );
            assert_eq!(&from_v1, expected, "and both must match the local design");
        }
        // Stats and ping flow over v2 as well.
        match v2.call(&Request::Ping).expect("binary ping") {
            Response::Pong => {}
            other => panic!("expected pong, got {other:?}"),
        }
        match v2.call(&Request::Stats).expect("binary stats") {
            Response::Stats(text) => {
                let stats = json::parse(&text).expect("stats parses");
                assert!(service_counter(&stats, "requests_ok") >= 12);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        fixture.stop();
    }
}
