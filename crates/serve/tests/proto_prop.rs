//! Protocol robustness: no sequence of hostile bytes — arbitrary
//! garbage, truncated frames, bit-flipped payloads, oversized length
//! prefixes, slow-loris dribbles, injected connection faults — may panic
//! or wedge the server. Every rejection must be observable: a structured
//! reply (or clean disconnect) on the wire, a matching [`ServeMetrics`]
//! counter, and a matching obs counter event.

use fsmgen_obs::{CollectingObsSink, ObsEvent};
use fsmgen_serve::{
    proto, write_frame, Codec, Request, Response, ServeClient, ServeConfig, ServeMetricsSnapshot,
    Server, ServerHandle,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// The serve-conn failpoint and the process-global obs sink are both
/// process-wide, so every test in this binary serializes on one lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// An in-process server plus the plumbing the assertions need.
struct Fixture {
    server: std::sync::Arc<Server>,
    handle: ServerHandle,
    addr: String,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Fixture {
    fn start(config: ServeConfig) -> Fixture {
        let server = std::sync::Arc::new(Server::bind(config).expect("bind"));
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let runner = std::sync::Arc::clone(&server);
        let thread = std::thread::spawn(move || runner.run());
        Fixture {
            server,
            handle,
            addr,
            thread: Some(thread),
        }
    }

    fn quick() -> Fixture {
        Fixture::quick_with(0)
    }

    /// `shards = 0` fuzzes the threaded architecture, `>= 1` the
    /// event-driven one — every hostile scenario runs against both.
    fn quick_with(shards: usize) -> Fixture {
        Fixture::start(ServeConfig {
            read_timeout: Duration::from_millis(300),
            max_frame_bytes: 4096,
            shards,
            ..ServeConfig::default()
        })
    }

    fn raw_conn(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
    }

    fn metrics(&self) -> ServeMetricsSnapshot {
        self.server.metrics().snapshot()
    }

    /// The liveness probe every hostile scenario ends with: the server
    /// must still answer a well-formed design request correctly.
    fn assert_still_serving(&self) {
        let mut client = ServeClient::connect(&self.addr, Duration::from_secs(5)).expect("connect");
        let response = client
            .design_with_retry(
                &Request::Design {
                    id: 7777,
                    trace: "0000 1000 1011 1101 1110 1111".into(),
                    history: 2,
                    threshold: None,
                    dont_care: None,
                },
                20,
            )
            .expect("server must still serve designs");
        match response {
            Response::DesignOk { id, states, .. } => {
                assert_eq!(id, 7777);
                assert_eq!(states, 3);
            }
            other => panic!("server wedged: {other:?}"),
        }
    }

    fn stop(mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread must not panic")
                .expect("server run");
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Reads whatever the server sends until it closes the connection.
fn drain(stream: &mut TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Raw garbage never panics the server: each connection ends in a
    /// structured reply or a clean disconnect, and the server keeps
    /// serving afterwards.
    #[test]
    fn arbitrary_bytes_never_wedge_the_server(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _serial = lock();
        let fixture = Fixture::quick();
        {
            let mut stream = fixture.raw_conn();
            let _ = stream.write_all(&garbage);
            let _ = stream.flush();
            // Close our write side by dropping after the read attempt;
            // whatever the server does — error frame, timeout, close —
            // must not be a panic.
            let _ = drain(&mut stream);
        }
        fixture.assert_still_serving();
        fixture.stop();
    }

    /// Well-framed but bit-flipped payloads: either the flip kept the
    /// request valid, or the server replies `protocol_error` and bumps
    /// the malformed-frame counter — never a panic, never a wedge.
    #[test]
    fn bit_flipped_frames_get_structured_errors(
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let _serial = lock();
        let fixture = Fixture::quick();
        let before = fixture.metrics();
        let mut payload = Request::Design {
            id: 3,
            trace: "0000 1000 1011".into(),
            history: 2,
            threshold: None,
            dont_care: None,
        }
        .encode();
        let index = flip_byte % payload.len();
        payload[index] ^= 1 << flip_bit;
        {
            let mut stream = fixture.raw_conn();
            write_frame(&mut stream, &payload).expect("write");
            let reply = drain(&mut stream);
            prop_assert!(!reply.is_empty(), "server must reply or serve, not hang");
        }
        let after = fixture.metrics();
        prop_assert!(after.is_monotone_since(&before));
        // Every path is accounted: the flipped frame was either served,
        // answered with a design error, or counted as malformed.
        let answered = (after.requests_ok + after.requests_failed + after.malformed_frames)
            > (before.requests_ok + before.requests_failed + before.malformed_frames);
        prop_assert!(answered, "flipped frame fell through unaccounted");
        fixture.assert_still_serving();
        fixture.stop();
    }

    /// Truncated frames (length prefix promises more than arrives) end in
    /// a clean disconnect once the read times out.
    #[test]
    fn truncated_frames_disconnect_cleanly(cut in 1usize..20) {
        let _serial = lock();
        let fixture = Fixture::quick();
        let payload = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("frame");
        wire.truncate(wire.len().saturating_sub(cut).max(1));
        {
            let mut stream = fixture.raw_conn();
            stream.write_all(&wire).expect("write");
            let _ = drain(&mut stream);
        }
        fixture.assert_still_serving();
        fixture.stop();
    }
}

#[test]
fn oversized_length_prefix_is_rejected_and_counted() {
    let _serial = lock();
    let fixture = Fixture::quick();
    let before = fixture.metrics();
    let reply = {
        let mut stream = fixture.raw_conn();
        // Advertise 16 MiB against a 4 KiB bound; never send the payload.
        stream
            .write_all(&(16u32 << 20).to_be_bytes())
            .expect("write prefix");
        drain(&mut stream)
    };
    let after = fixture.metrics();
    assert_eq!(
        after.oversized_frames,
        before.oversized_frames + 1,
        "oversized frame must be counted"
    );
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.contains("protocol_error") && text.contains("exceeds"),
        "want a structured protocol_error reply, got {text:?}"
    );
    fixture.assert_still_serving();
    fixture.stop();
}

#[test]
fn slow_loris_times_out_and_is_counted() {
    let _serial = lock();
    let fixture = Fixture::start(ServeConfig {
        read_timeout: Duration::from_millis(100),
        ..ServeConfig::default()
    });
    let before = fixture.metrics();
    {
        let mut stream = fixture.raw_conn();
        // Dribble half a length prefix, then stall past the timeout.
        stream.write_all(&[0u8, 0]).expect("write");
        stream.flush().expect("flush");
        let reply = drain(&mut stream);
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.contains("timed out"),
            "want a timeout protocol_error, got {text:?}"
        );
    }
    let after = fixture.metrics();
    assert_eq!(
        after.timeouts,
        before.timeouts + 1,
        "timeout must be counted"
    );
    fixture.assert_still_serving();
    fixture.stop();
}

#[test]
fn injected_conn_faults_drop_the_connection_and_are_counted() {
    let _serial = lock();
    fsmgen::failpoints::configure_from_spec_global("serve-conn=error:2").expect("failpoint spec");
    let fixture = Fixture::quick();
    let before = fixture.metrics();
    for _ in 0..2 {
        let mut stream = fixture.raw_conn();
        // The fault fires as soon as the handler picks the connection
        // up, so the drop can race this write: a broken pipe or reset
        // here IS the drop being tested, not a harness failure.
        match write_frame(&mut stream, &Request::Ping.encode()) {
            Ok(()) => {
                let reply = drain(&mut stream);
                assert!(
                    reply.is_empty(),
                    "a faulted connection is dropped without a reply, got {reply:?}"
                );
            }
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    std::io::ErrorKind::BrokenPipe | std::io::ErrorKind::ConnectionReset
                ),
                "unexpected write error on a faulted connection: {e}"
            ),
        }
    }
    fsmgen::failpoints::clear_global();
    let after = fixture.metrics();
    assert_eq!(
        after.injected_faults,
        before.injected_faults + 2,
        "both injected faults must be counted"
    );
    // The failpoint budget is exhausted: the server serves again.
    fixture.assert_still_serving();
    fixture.stop();
}

#[test]
fn backpressure_rejects_with_retry_after() {
    let _serial = lock();
    let fixture = Fixture::start(ServeConfig {
        queue_limit: 0, // every design is "one too many": deterministic saturation
        retry_after_ms: 123,
        ..ServeConfig::default()
    });
    let before = fixture.metrics();
    let mut client = ServeClient::connect(&fixture.addr, Duration::from_secs(5)).expect("connect");
    let response = client
        .call(&Request::Design {
            id: 5,
            trace: "1010".into(),
            history: 2,
            threshold: None,
            dont_care: None,
        })
        .expect("call");
    assert_eq!(
        response,
        Response::Rejected {
            id: 5,
            retry_after_ms: 123
        }
    );
    // Non-design requests still flow while designs are saturated.
    assert_eq!(client.call(&Request::Ping).expect("ping"), Response::Pong);
    let after = fixture.metrics();
    assert_eq!(
        after.rejected_backpressure,
        before.rejected_backpressure + 1
    );
    fixture.stop();
}

#[test]
fn connection_limit_turns_new_connections_away() {
    let _serial = lock();
    let fixture = Fixture::start(ServeConfig {
        max_connections: 1,
        ..ServeConfig::default()
    });
    // Pin the one admitted connection open (the pong proves the server
    // accepted and registered it).
    let mut first = ServeClient::connect(&fixture.addr, Duration::from_secs(5)).expect("connect");
    assert_eq!(first.call(&Request::Ping).expect("ping"), Response::Pong);
    // The second connection must be turned away with a retry hint.
    let reply = {
        let mut second = fixture.raw_conn();
        drain(&mut second)
    };
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.contains("rejected") && text.contains("retry_after_ms"),
        "want a rejected frame, got {text:?}"
    );
    assert!(fixture.metrics().conns_rejected >= 1);
    drop(first);
    fixture.stop();
}

#[test]
fn rejection_paths_emit_obs_counters() {
    let _serial = lock();
    let sink = std::sync::Arc::new(CollectingObsSink::new());
    fsmgen_obs::install_global(
        std::sync::Arc::clone(&sink) as std::sync::Arc<dyn fsmgen_obs::ObsSink>
    );
    let fixture = Fixture::quick();

    // One malformed frame, one oversized frame.
    {
        let mut stream = fixture.raw_conn();
        write_frame(&mut stream, b"{\"v\": 1}").expect("write");
        let _ = drain(&mut stream);
    }
    {
        let mut stream = fixture.raw_conn();
        stream
            .write_all(&(64u32 << 20).to_be_bytes())
            .expect("write prefix");
        let _ = drain(&mut stream);
    }
    fixture.assert_still_serving();
    fixture.stop();
    fsmgen_obs::clear_global();

    let mut counters: Vec<(&'static str, u64)> = Vec::new();
    let mut spans: Vec<&'static str> = Vec::new();
    for event in sink.events() {
        match event {
            ObsEvent::Counter {
                span: "serve",
                name,
                value,
            } => {
                counters.push((name, value));
            }
            ObsEvent::SpanStart { name, .. } => spans.push(name),
            _ => {}
        }
    }
    for want in [
        "malformed_frame",
        "oversized_frame",
        "conn_accepted",
        "request_ok",
    ] {
        assert!(
            counters.iter().any(|(name, _)| *name == want),
            "missing serve counter {want:?} in {counters:?}"
        );
    }
    for want in [
        "serve",
        "serve_request",
        "serve_parse",
        "serve_design",
        "serve_respond",
    ] {
        assert!(spans.contains(&want), "missing span {want:?} in {spans:?}");
    }
}

#[test]
fn shutdown_drains_and_double_shutdown_is_safe() {
    let _serial = lock();
    let fixture = Fixture::quick();
    let handle = fixture.handle.clone();
    assert!(!handle.is_shutting_down());
    fixture.stop();
    assert!(handle.is_shutting_down());
    handle.shutdown(); // idempotent
}

// ---------------------------------------------------------------------
// Binary framing v2: the same hostile battery, ported to the compact
// codec, against BOTH architectures (threaded and 2-shard event loop).
// Every scenario must end in a `protocol_error` reply or a clean close
// — never a panic, never a wedge.
// ---------------------------------------------------------------------

/// Writes the v2 preamble then `frames`, reads until close or quiet.
fn binary_session(fixture: &Fixture, frames: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = fixture.raw_conn();
    stream
        .write_all(&proto::binary_preamble())
        .expect("preamble");
    for payload in frames {
        let _ = write_frame(&mut stream, payload);
    }
    let _ = stream.flush();
    drain(&mut stream)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary bytes after a valid v2 preamble never wedge either
    /// architecture.
    #[test]
    fn binary_arbitrary_bytes_never_wedge_the_server(
        garbage in proptest::collection::vec(any::<u8>(), 0..512),
        shards in 0usize..3,
    ) {
        let _serial = lock();
        let fixture = Fixture::quick_with(shards);
        {
            let mut stream = fixture.raw_conn();
            let _ = stream.write_all(&proto::binary_preamble());
            let _ = stream.write_all(&garbage);
            let _ = stream.flush();
            let _ = drain(&mut stream);
        }
        fixture.assert_still_serving();
        fixture.stop();
    }

    /// Bit-flipped binary frames: either the flip kept the request
    /// decodable, or the server replies `protocol_error` — always
    /// accounted, never a panic.
    #[test]
    fn binary_bit_flipped_frames_get_structured_errors(
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
        shards in 0usize..3,
    ) {
        let _serial = lock();
        let fixture = Fixture::quick_with(shards);
        let before = fixture.metrics();
        let mut payload = Request::Design {
            id: 3,
            trace: "0000 1000 1011".into(),
            history: 2,
            threshold: None,
            dont_care: None,
        }
        .encode_with(Codec::BinaryV2);
        let index = flip_byte % payload.len();
        payload[index] ^= 1 << flip_bit;
        let reply = binary_session(&fixture, &[payload]);
        prop_assert!(!reply.is_empty(), "server must reply or serve, not hang");
        let after = fixture.metrics();
        prop_assert!(after.is_monotone_since(&before));
        let answered = (after.requests_ok + after.requests_failed + after.malformed_frames)
            > (before.requests_ok + before.requests_failed + before.malformed_frames);
        prop_assert!(answered, "flipped binary frame fell through unaccounted");
        fixture.assert_still_serving();
        fixture.stop();
    }

    /// Truncated binary frames (prefix promises more than arrives) end
    /// in a timeout reply and a clean close on both architectures.
    #[test]
    fn binary_truncated_frames_disconnect_cleanly(
        cut in 1usize..12,
        shards in 0usize..3,
    ) {
        let _serial = lock();
        let fixture = Fixture::quick_with(shards);
        let payload = Request::Ping.encode_with(Codec::BinaryV2);
        let mut wire = proto::binary_preamble().to_vec();
        let frame_at = wire.len();
        write_frame(&mut wire, &payload).expect("frame");
        // Cut into the frame, never into the preamble.
        wire.truncate((wire.len() - cut).max(frame_at + 1));
        {
            let mut stream = fixture.raw_conn();
            stream.write_all(&wire).expect("write");
            let _ = drain(&mut stream);
        }
        fixture.assert_still_serving();
        fixture.stop();
    }
}

#[test]
fn binary_oversized_prefix_is_rejected_and_counted_on_both_architectures() {
    let _serial = lock();
    for shards in [0usize, 2] {
        let fixture = Fixture::quick_with(shards);
        let before = fixture.metrics();
        let reply = {
            let mut stream = fixture.raw_conn();
            stream
                .write_all(&proto::binary_preamble())
                .expect("preamble");
            stream
                .write_all(&(16u32 << 20).to_be_bytes())
                .expect("write prefix");
            drain(&mut stream)
        };
        let after = fixture.metrics();
        assert_eq!(
            after.oversized_frames,
            before.oversized_frames + 1,
            "oversized binary frame must be counted (shards={shards})"
        );
        // The reply is a binary protocol_error frame: tag + error text.
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.contains("exceeds"),
            "want a structured reply, got {text:?} (shards={shards})"
        );
        fixture.assert_still_serving();
        fixture.stop();
    }
}

#[test]
fn wrong_preamble_version_is_a_structured_error_then_close() {
    let _serial = lock();
    for shards in [0usize, 2] {
        let fixture = Fixture::quick_with(shards);
        let reply = {
            let mut stream = fixture.raw_conn();
            let mut preamble = proto::binary_preamble();
            preamble[7] ^= 0xFF; // break the version, keep the magic
            stream.write_all(&preamble).expect("preamble");
            drain(&mut stream)
        };
        let text = String::from_utf8_lossy(&reply);
        assert!(
            text.contains("version"),
            "want a version error, got {text:?} (shards={shards})"
        );
        assert!(fixture.metrics().malformed_frames >= 1);
        fixture.assert_still_serving();
        fixture.stop();
    }
}

#[test]
fn codec_switch_mid_connection_never_panics() {
    let _serial = lock();
    for shards in [0usize, 2] {
        let fixture = Fixture::quick_with(shards);

        // JSON first, then the binary magic: the connection is already
        // v1, so `FSMB` reads as a ~1.2 GB length prefix — an oversized
        // frame, answered and closed, never a panic.
        {
            let mut stream = fixture.raw_conn();
            write_frame(&mut stream, &Request::Ping.encode()).expect("json ping");
            let pong = fsmgen_serve::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME)
                .expect("pong frame");
            assert!(matches!(Response::decode(&pong), Ok(Response::Pong)));
            // Just the magic: the version half would sit unread in the
            // socket when the server closes, and the kernel's RST could
            // race away the structured reply we want to observe.
            stream
                .write_all(&proto::BINARY_MAGIC)
                .expect("late preamble");
            let reply = drain(&mut stream);
            let text = String::from_utf8_lossy(&reply);
            assert!(
                text.contains("exceeds"),
                "late codec switch must be an oversized-frame error, got {text:?}"
            );
        }

        // Binary first, then a JSON payload: the frame is well-delimited
        // but undecodable as v2 — a protocol_error that KEEPS the
        // connection, proven by a binary ping afterwards.
        {
            let mut stream = fixture.raw_conn();
            stream
                .write_all(&proto::binary_preamble())
                .expect("preamble");
            write_frame(&mut stream, &Request::Ping.encode()).expect("json-in-binary");
            let err_frame = fsmgen_serve::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME)
                .expect("error frame");
            assert!(matches!(
                Response::decode_with(Codec::BinaryV2, &err_frame),
                Ok(Response::ProtocolError { .. })
            ));
            write_frame(&mut stream, &Request::Ping.encode_with(Codec::BinaryV2))
                .expect("binary ping");
            let pong = fsmgen_serve::read_frame(&mut stream, proto::DEFAULT_MAX_FRAME)
                .expect("pong frame");
            assert!(matches!(
                Response::decode_with(Codec::BinaryV2, &pong),
                Ok(Response::Pong)
            ));
        }

        fixture.assert_still_serving();
        fixture.stop();
    }
}
