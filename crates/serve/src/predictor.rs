//! The live predictor: online accuracy monitoring and hot-swap.
//!
//! With `--redesign` the server keeps a *live* compiled predictor that
//! clients stream outcome bits through ([`crate::Request::Predict`]).
//! A [`CollapseMonitor`] watches the windowed hit rate; when it falls
//! below the collapse threshold the server triggers a farm redesign on
//! the fresh window and publishes the new machine through an
//! atomically-swapped slot. In-flight predict chunks keep running on
//! the machine they started with and adopt the new generation at their
//! next chunk boundary — no request is dropped or stalled by a swap.
//!
//! The slot is a `RwLock<Arc<CompiledMachine>>` plus a generation
//! counter: writers (the redesign thread) hold the write lock only to
//! replace one `Arc`, readers clone it out on adoption, and the
//! generation number lets chunk responses report exactly which machine
//! finished serving them.

use fsmgen_automata::Dfa;
use fsmgen_exec::CompiledMachine;
use fsmgen_obs::{CollapseEvent, CollapseMonitor};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Online-redesign knobs, carried in
/// [`ServeConfig`](crate::ServeConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedesignConfig {
    /// Outcomes in the monitoring window (also the redesign training
    /// window).
    pub window: usize,
    /// Windowed hit rate below which the predictor has collapsed.
    pub collapse_threshold: f64,
    /// Extra rate above the threshold required to re-arm after a
    /// collapse (prevents trigger flapping at the boundary).
    pub hysteresis: f64,
    /// History order for the redesign.
    pub history: usize,
}

impl Default for RedesignConfig {
    fn default() -> Self {
        RedesignConfig {
            window: 512,
            collapse_threshold: 0.6,
            hysteresis: 0.1,
            history: 3,
        }
    }
}

/// The 2-bit saturating counter as a Moore machine — the fallback-grade
/// predictor the server boots with before any redesign has run.
#[must_use]
pub fn initial_machine() -> Dfa {
    let transitions: Vec<[u32; 2]> = (0u32..4)
        .map(|s| [s.saturating_sub(1), (s + 1).min(3)])
        .collect();
    Dfa::from_parts(transitions, vec![false, false, true, true], 0)
}

/// What one predict chunk produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkOutcome {
    /// Bits in the chunk.
    pub total: u64,
    /// Bits the live predictor got right.
    pub correct: u64,
    /// Generation of the machine that served the chunk's end.
    pub generation: u64,
    /// Whether this chunk adopted a newly swapped machine.
    pub swapped: bool,
    /// When a collapse fired in this chunk (and no redesign was already
    /// running): the window of recent outcomes to redesign from.
    pub redesign_window: Option<Vec<bool>>,
}

struct MonitorState {
    /// The machine this stream is currently walking.
    machine: Arc<CompiledMachine>,
    /// Generation of `machine` (lags the slot until adoption).
    generation: u64,
    /// Current automaton state.
    state: u32,
    /// Windowed hit rate + collapse edge detection.
    monitor: CollapseMonitor,
    /// The last `window` outcomes, for the redesign trainer.
    recent: VecDeque<bool>,
}

/// The shared live predictor behind the serve predict path.
pub struct LivePredictor {
    config: RedesignConfig,
    /// The published machine; replaced wholesale on swap.
    slot: RwLock<Arc<CompiledMachine>>,
    /// Bumped on every swap; chunk responses echo it.
    generation: AtomicU64,
    /// True while a redesign is running (at most one at a time).
    redesigning: AtomicBool,
    /// Serialized stream state (prediction is inherently sequential).
    monitor: Mutex<MonitorState>,
}

impl LivePredictor {
    /// Boots the live predictor on the 2-bit-counter machine.
    ///
    /// # Errors
    ///
    /// Returns the compile error message if the initial machine cannot
    /// be compiled (does not happen for [`initial_machine`]).
    pub fn new(config: RedesignConfig) -> Result<Self, String> {
        let compiled =
            Arc::new(CompiledMachine::compile(&initial_machine()).map_err(|e| e.to_string())?);
        let state = compiled.start();
        Ok(LivePredictor {
            slot: RwLock::new(Arc::clone(&compiled)),
            generation: AtomicU64::new(0),
            redesigning: AtomicBool::new(false),
            monitor: Mutex::new(MonitorState {
                machine: compiled,
                generation: 0,
                state,
                monitor: CollapseMonitor::new(
                    config.window,
                    config.collapse_threshold,
                    config.hysteresis,
                ),
                recent: VecDeque::with_capacity(config.window),
            }),
            config,
        })
    }

    /// The redesign knobs this predictor runs with.
    #[must_use]
    pub fn config(&self) -> &RedesignConfig {
        &self.config
    }

    /// The current machine generation (0 = boot machine).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Whether a redesign is currently in flight.
    #[must_use]
    pub fn redesign_in_flight(&self) -> bool {
        self.redesigning.load(Ordering::SeqCst)
    }

    /// Streams one chunk of outcomes through the live predictor.
    ///
    /// A newly published machine is adopted at the chunk boundary; when
    /// the collapse monitor fires (and no redesign is already running)
    /// the returned [`ChunkOutcome::redesign_window`] carries the
    /// training window and the caller owns starting the redesign.
    pub fn feed(&self, outcomes: impl IntoIterator<Item = bool>) -> ChunkOutcome {
        let mut st = self.monitor.lock().unwrap_or_else(PoisonError::into_inner);
        let slot_generation = self.generation.load(Ordering::SeqCst);
        let mut swapped = false;
        if st.generation != slot_generation {
            let machine = Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner));
            st.state = machine.start();
            st.machine = machine;
            st.generation = slot_generation;
            // The redesign was trained on the drifted regime; judge it
            // on a fresh window.
            st.monitor.reset();
            swapped = true;
        }
        let mut total = 0u64;
        let mut correct = 0u64;
        let mut redesign_window = None;
        let window = self.config.window.max(1);
        for outcome in outcomes {
            let prediction = st.machine.output(st.state);
            st.state = st.machine.step(st.state, outcome);
            let hit = prediction == outcome;
            total += 1;
            correct += u64::from(hit);
            if st.recent.len() == window {
                st.recent.pop_front();
            }
            st.recent.push_back(outcome);
            if st.monitor.record(hit) == CollapseEvent::Collapsed
                && redesign_window.is_none()
                && !self.redesigning.swap(true, Ordering::SeqCst)
            {
                redesign_window = Some(st.recent.iter().copied().collect());
            }
        }
        ChunkOutcome {
            total,
            correct,
            generation: st.generation,
            swapped,
            redesign_window,
        }
    }

    /// Publishes a redesigned machine: future chunks adopt it at their
    /// next boundary. Clears the redesign-in-flight flag.
    pub fn install(&self, machine: Arc<CompiledMachine>) -> u64 {
        let generation = {
            let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
            *slot = machine;
            // Bump under the write lock so a reader never pairs a new
            // generation number with the old machine.
            self.generation.fetch_add(1, Ordering::SeqCst) + 1
        };
        self.redesigning.store(false, Ordering::SeqCst);
        generation
    }

    /// Abandons an in-flight redesign (design failed); the collapse
    /// monitor's hysteresis decides when the next trigger may fire.
    pub fn abort_redesign(&self) {
        self.redesigning.store(false, Ordering::SeqCst);
    }

    /// The live windowed hit rate (None until the window fills enough
    /// to report).
    #[must_use]
    pub fn windowed_rate(&self) -> Option<f64> {
        self.monitor
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .monitor
            .rate()
    }
}

impl std::fmt::Debug for LivePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LivePredictor")
            .field("config", &self.config)
            .field("generation", &self.generation())
            .field("redesigning", &self.redesign_in_flight())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(window: usize) -> LivePredictor {
        LivePredictor::new(RedesignConfig {
            window,
            collapse_threshold: 0.6,
            hysteresis: 0.1,
            history: 2,
        })
        .expect("boot")
    }

    #[test]
    fn counter_boot_machine_tracks_bias() {
        let live = predictor(64);
        let outcome = live.feed(std::iter::repeat_n(true, 200));
        assert_eq!(outcome.total, 200);
        assert!(outcome.correct >= 197, "{}", outcome.correct);
        assert_eq!(outcome.generation, 0);
        assert!(!outcome.swapped);
        assert!(outcome.redesign_window.is_none());
    }

    #[test]
    fn collapse_fires_once_and_carries_the_window() {
        let live = predictor(32);
        // Warm up confident, then alternate: the counter collapses.
        live.feed(std::iter::repeat_n(true, 64));
        let outcome = live.feed((0..256).map(|i| i % 2 == 0));
        let window = outcome.redesign_window.expect("collapse should fire");
        assert_eq!(window.len(), 32);
        assert!(live.redesign_in_flight());
        // While the redesign runs, no second trigger fires.
        let again = live.feed((0..256).map(|i| i % 2 == 0));
        assert!(again.redesign_window.is_none());
    }

    #[test]
    fn install_swaps_at_the_next_chunk_boundary() {
        let live = predictor(16);
        live.feed(std::iter::repeat_n(true, 32));
        // Publish an always-taken machine (state 0, output true).
        let always = Dfa::from_parts(vec![[0, 0]], vec![true], 0);
        let compiled = Arc::new(CompiledMachine::compile(&always).expect("compile"));
        let generation = live.install(compiled);
        assert_eq!(generation, 1);
        assert!(!live.redesign_in_flight());
        let outcome = live.feed(std::iter::repeat_n(true, 10));
        assert!(outcome.swapped);
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.correct, 10);
        // Next chunk: no further swap.
        assert!(!live.feed(std::iter::repeat_n(true, 1)).swapped);
    }

    #[test]
    fn abort_reallows_triggers_after_rearm() {
        let live = predictor(16);
        live.feed(std::iter::repeat_n(true, 32));
        let fired = live.feed((0..128).map(|i| i % 2 == 0));
        assert!(fired.redesign_window.is_some());
        live.abort_redesign();
        // Recover (re-arm), then collapse again -> a fresh trigger.
        live.feed(std::iter::repeat_n(true, 64));
        let refired = live.feed((0..128).map(|i| i % 2 == 0));
        assert!(refired.redesign_window.is_some());
    }
}
