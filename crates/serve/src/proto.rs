//! The wire protocol: length-prefixed frames, two codecs (JSON v1 and
//! compact binary v2) and the typed request/response vocabulary.
//!
//! Every message on the wire is one *frame*: a 4-byte big-endian payload
//! length followed by that many payload bytes. Frames larger than the
//! receiver's configured bound are rejected *before* the payload is
//! read, so an adversarial length prefix can never force an allocation.
//!
//! The payload is one of two codecs, negotiated per connection:
//!
//! - **JSON v1** (the default): a single JSON object carrying the shared
//!   schema conventions of the obs/farm JSON (versioned via a `"v"`
//!   field equal to [`fsmgen_obs::SCHEMA_VERSION`], discriminated via
//!   `"kind"`).
//! - **Binary v2**: the same message set in a compact tagged layout — a
//!   one-byte message tag, big-endian fixed-width integers and
//!   `u32`-length-prefixed UTF-8 strings (see [`Codec`]). A client opts
//!   in by sending the 8-byte preamble [`binary_preamble`] (`FSMB` magic
//!   followed by the protocol version) as its very first bytes. The magic read as
//!   a JSON length prefix would advertise a ~1.18 GB frame — far beyond
//!   any sane frame bound — so the two codecs can never be confused.
//!
//! Both codecs carry identical semantics: the differential harness pins
//! byte-identical design payloads whichever codec carried the request.

use crate::json::{self, Json};
use std::fmt;
use std::io::{self, Read, Write};

/// Default upper bound on a frame payload, in bytes (1 MiB). A design
/// request carrying a million-bit trace fits comfortably.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// The protocol's schema version — the same stamp the obs/farm JSON
/// carries, because the messages share that schema's conventions.
pub const PROTOCOL_VERSION: u32 = fsmgen_obs::SCHEMA_VERSION;

/// The magic a client sends first to negotiate binary framing v2.
pub const BINARY_MAGIC: [u8; 4] = *b"FSMB";

/// Length of the binary-negotiation preamble: magic + version.
pub const BINARY_PREAMBLE_LEN: usize = 8;

/// The 8-byte preamble a binary-v2 client sends before its first frame:
/// [`BINARY_MAGIC`] followed by the big-endian [`PROTOCOL_VERSION`].
#[must_use]
pub fn binary_preamble() -> [u8; BINARY_PREAMBLE_LEN] {
    let mut out = [0u8; BINARY_PREAMBLE_LEN];
    out[..4].copy_from_slice(&BINARY_MAGIC);
    out[4..].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    out
}

/// Which payload codec a connection speaks. Negotiated once, at the
/// first bytes of the connection; every subsequent frame on that
/// connection uses the same codec in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Length-prefixed JSON objects (protocol v1, the default).
    #[default]
    JsonV1,
    /// Length-prefixed compact tagged binary (protocol v2).
    BinaryV2,
}

impl Codec {
    /// A stable name for reports and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Codec::JsonV1 => "json-v1",
            Codec::BinaryV2 => "binary-v2",
        }
    }

    /// Parses a CLI spelling (`v1`/`json` vs `v2`/`binary`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized spelling.
    pub fn parse(text: &str) -> Result<Codec, String> {
        match text {
            "v1" | "json" | "json-v1" => Ok(Codec::JsonV1),
            "v2" | "binary" | "binary-v2" => Ok(Codec::BinaryV2),
            other => Err(format!(
                "unknown codec {other:?} (expected v1|json or v2|binary)"
            )),
        }
    }
}

/// Why a frame could not be read or understood.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary (not an error
    /// in spirit: this is the clean end of a session).
    Disconnected,
    /// An I/O failure mid-frame, including read timeouts.
    Io(io::Error),
    /// The length prefix exceeds the receiver's frame bound.
    Oversized {
        /// The advertised payload length.
        advertised: usize,
        /// The receiver's bound.
        limit: usize,
    },
    /// The payload was not valid UTF-8 JSON of the expected shape.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Disconnected => f.write_str("peer disconnected"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Oversized { advertised, limit } => {
                write!(
                    f,
                    "frame of {advertised} bytes exceeds the {limit}-byte limit"
                )
            }
            ProtoError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// True when the underlying cause is a read timeout (the slow-loris
    /// guard) rather than a hard I/O failure.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

/// Reads one frame payload. Returns [`ProtoError::Disconnected`] on EOF
/// at a frame boundary and [`ProtoError::Oversized`] without consuming
/// the advertised payload.
///
/// # Errors
///
/// See [`ProtoError`]; timeouts surface as `Io` with a timeout kind.
pub fn read_frame(stream: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, ProtoError> {
    let prefix = read_prefix(stream)?;
    read_frame_after_prefix(stream, prefix, max_frame)
}

/// Reads the 4-byte frame length prefix (or the first 4 bytes of a
/// binary-negotiation preamble — the caller sniffs which). EOF before
/// any byte is [`ProtoError::Disconnected`]; a partial prefix is
/// mid-frame and must complete or fail.
///
/// # Errors
///
/// See [`ProtoError`].
pub fn read_prefix(stream: &mut impl Read) -> Result<[u8; 4], ProtoError> {
    let mut prefix = [0u8; 4];
    match stream.read(&mut prefix) {
        Ok(0) => return Err(ProtoError::Disconnected),
        Ok(n) => {
            // A partial length prefix is mid-frame: finish it or fail.
            stream
                .read_exact(&mut prefix[n..])
                .map_err(ProtoError::Io)?;
        }
        Err(e) => return Err(ProtoError::Io(e)),
    }
    Ok(prefix)
}

/// Finishes reading a frame whose 4-byte length prefix was already
/// consumed (the codec-sniffing path): validates the bound, then reads
/// the payload.
///
/// # Errors
///
/// See [`ProtoError`]; [`ProtoError::Oversized`] is returned without
/// consuming the advertised payload.
pub fn read_frame_after_prefix(
    stream: &mut impl Read,
    prefix: [u8; 4],
    max_frame: usize,
) -> Result<Vec<u8>, ProtoError> {
    let advertised = u32::from_be_bytes(prefix) as usize;
    if advertised > max_frame {
        return Err(ProtoError::Oversized {
            advertised,
            limit: max_frame,
        });
    }
    let mut payload = vec![0u8; advertised];
    stream.read_exact(&mut payload).map_err(ProtoError::Io)?;
    Ok(payload)
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Design a predictor for a 0/1 trace.
    Design {
        /// Caller-chosen id, echoed in the response.
        id: u64,
        /// The behaviour trace, in [`fsmgen_traces::BitTrace`] text form.
        trace: String,
        /// History order for the designer.
        history: usize,
        /// Pattern probability threshold (designer default when `None`).
        threshold: Option<f64>,
        /// Don't-care fraction (designer default when `None`).
        dont_care: Option<f64>,
    },
    /// Stream outcome bits through the server's live predictor (only
    /// answered when the server runs with online redesign enabled).
    Predict {
        /// Caller-chosen id, echoed in the response.
        id: u64,
        /// A chunk of 0/1 outcome bits (whitespace ignored).
        bits: String,
    },
    /// Liveness probe.
    Ping,
    /// Ask for the server's metrics JSON.
    Stats,
    /// Ask the server to drain in-flight requests and exit.
    Shutdown,
}

impl Request {
    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason (bad JSON, wrong version, unknown
    /// kind, missing or ill-typed fields).
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let value = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        let version = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("missing \"v\" field")?;
        if version != u64::from(PROTOCOL_VERSION) {
            return Err(format!(
                "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION})"
            ));
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\" field")?;
        match kind {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "design_request" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                let trace = value
                    .get("trace")
                    .and_then(Json::as_str)
                    .ok_or("design_request needs a \"trace\" string")?
                    .to_string();
                let history = value
                    .get("history")
                    .and_then(Json::as_u64)
                    .ok_or("design_request needs an integer \"history\"")?;
                let history = usize::try_from(history).map_err(|_| "history out of range")?;
                let float_field = |name: &str| -> Result<Option<f64>, String> {
                    match value.get(name) {
                        None => Ok(None),
                        Some(v) => v
                            .as_f64()
                            .map(Some)
                            .ok_or_else(|| format!("\"{name}\" must be a number")),
                    }
                };
                Ok(Request::Design {
                    id,
                    trace,
                    history,
                    threshold: float_field("threshold")?,
                    dont_care: float_field("dont_care")?,
                })
            }
            "predict_request" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                let bits = value
                    .get("bits")
                    .and_then(Json::as_str)
                    .ok_or("predict_request needs a \"bits\" string")?
                    .to_string();
                Ok(Request::Predict { id, bits })
            }
            other => Err(format!("unknown request kind {other:?}")),
        }
    }

    /// Renders the request as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let v = PROTOCOL_VERSION;
        match self {
            Request::Ping => format!("{{\"v\": {v}, \"kind\": \"ping\"}}").into_bytes(),
            Request::Stats => format!("{{\"v\": {v}, \"kind\": \"stats\"}}").into_bytes(),
            Request::Shutdown => format!("{{\"v\": {v}, \"kind\": \"shutdown\"}}").into_bytes(),
            Request::Design {
                id,
                trace,
                history,
                threshold,
                dont_care,
            } => {
                let mut out = format!(
                    "{{\"v\": {v}, \"kind\": \"design_request\", \"id\": {id}, \"history\": {history}"
                );
                if let Some(t) = threshold {
                    out.push_str(&format!(", \"threshold\": {t}"));
                }
                if let Some(d) = dont_care {
                    out.push_str(&format!(", \"dont_care\": {d}"));
                }
                out.push_str(&format!(", \"trace\": {}}}", json::json_string(trace)));
                out.into_bytes()
            }
            Request::Predict { id, bits } => format!(
                "{{\"v\": {v}, \"kind\": \"predict_request\", \"id\": {id}, \"bits\": {}}}",
                json::json_string(bits)
            )
            .into_bytes(),
        }
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A design succeeded.
    DesignOk {
        /// Echo of the request id.
        id: u64,
        /// States in the designed machine.
        states: usize,
        /// Whether the design was served from the farm's cache.
        cache_hit: bool,
        /// In-worker design wall clock, milliseconds.
        wall_ms: f64,
        /// The machine in `fsmgen-automata` table form (reloadable with
        /// `fsmgen predict`, byte-identical to a local design).
        machine: String,
    },
    /// A design failed with a typed error.
    DesignError {
        /// Echo of the request id.
        id: u64,
        /// The rendered error.
        error: String,
    },
    /// The server is saturated; retry after the given delay.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`Request::Predict`]: per-chunk accounting from the
    /// live predictor.
    PredictOk {
        /// Echo of the request id.
        id: u64,
        /// Bits in the chunk.
        total: u64,
        /// Bits the live predictor got right.
        correct: u64,
        /// Generation of the machine that served the *end* of the chunk
        /// (bumped by every hot swap).
        generation: u64,
        /// Whether a hot swap landed while this chunk was streaming.
        swapped: bool,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Stats`]: the server's metrics JSON, verbatim.
    Stats(String),
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// The frame itself could not be understood; the server closes the
    /// connection after sending this.
    ProtocolError {
        /// What was wrong with the frame.
        error: String,
    },
}

impl Response {
    /// Renders the response as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let v = PROTOCOL_VERSION;
        match self {
            Response::Pong => format!("{{\"v\": {v}, \"kind\": \"pong\"}}").into_bytes(),
            Response::ShutdownAck => {
                format!("{{\"v\": {v}, \"kind\": \"shutdown_ack\"}}").into_bytes()
            }
            Response::Stats(json_text) => format!(
                "{{\"v\": {v}, \"kind\": \"stats_response\", \"metrics\": {}}}",
                json_text.trim()
            )
            .into_bytes(),
            Response::ProtocolError { error } => format!(
                "{{\"v\": {v}, \"kind\": \"protocol_error\", \"error\": {}}}",
                json::json_string(error)
            )
            .into_bytes(),
            Response::DesignOk {
                id,
                states,
                cache_hit,
                wall_ms,
                machine,
            } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \"status\": \"ok\", \
                 \"states\": {states}, \"cache_hit\": {cache_hit}, \"wall_ms\": {wall_ms:.3}, \
                 \"machine\": {}}}",
                json::json_string(machine)
            )
            .into_bytes(),
            Response::DesignError { id, error } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \
                 \"status\": \"error\", \"error\": {}}}",
                json::json_string(error)
            )
            .into_bytes(),
            Response::Rejected { id, retry_after_ms } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \
                 \"status\": \"rejected\", \"retry_after_ms\": {retry_after_ms}}}"
            )
            .into_bytes(),
            Response::PredictOk {
                id,
                total,
                correct,
                generation,
                swapped,
            } => format!(
                "{{\"v\": {v}, \"kind\": \"predict_response\", \"id\": {id}, \
                 \"total\": {total}, \"correct\": {correct}, \
                 \"generation\": {generation}, \"swapped\": {swapped}}}"
            )
            .into_bytes(),
        }
    }

    /// Parses a response payload (the client half of the protocol).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the payload is not a valid
    /// response object.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let value = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\" field")?;
        match kind {
            "pong" => Ok(Response::Pong),
            "shutdown_ack" => Ok(Response::ShutdownAck),
            "predict_response" => Ok(Response::PredictOk {
                id: value.get("id").and_then(Json::as_u64).unwrap_or(0),
                total: value
                    .get("total")
                    .and_then(Json::as_u64)
                    .ok_or("missing total")?,
                correct: value
                    .get("correct")
                    .and_then(Json::as_u64)
                    .ok_or("missing correct")?,
                generation: value.get("generation").and_then(Json::as_u64).unwrap_or(0),
                swapped: value
                    .get("swapped")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }),
            "stats_response" => {
                // Keep the metrics as text: it is the last field, so it
                // runs from after its key to the outer object's final
                // closing brace.
                let at = text.find("\"metrics\":").ok_or("missing metrics")?;
                let body = text[at + "\"metrics\":".len()..]
                    .trim()
                    .strip_suffix('}')
                    .ok_or("unterminated stats_response")?
                    .trim()
                    .to_string();
                Ok(Response::Stats(body))
            }
            "protocol_error" => Ok(Response::ProtocolError {
                error: value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }),
            "design_response" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                match value.get("status").and_then(Json::as_str) {
                    Some("ok") => Ok(Response::DesignOk {
                        id,
                        states: value
                            .get("states")
                            .and_then(Json::as_u64)
                            .ok_or("missing states")? as usize,
                        cache_hit: value
                            .get("cache_hit")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                        wall_ms: value.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                        machine: value
                            .get("machine")
                            .and_then(Json::as_str)
                            .ok_or("missing machine")?
                            .to_string(),
                    }),
                    Some("error") => Ok(Response::DesignError {
                        id,
                        error: value
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                    }),
                    Some("rejected") => Ok(Response::Rejected {
                        id,
                        retry_after_ms: value
                            .get("retry_after_ms")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                    }),
                    other => Err(format!("unknown design_response status {other:?}")),
                }
            }
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------
// Binary codec v2: one tag byte, big-endian fixed-width integers,
// u32-length-prefixed UTF-8 strings. Floats travel as raw IEEE-754 bits
// so binary round trips are exact. Decoding is a bounds-checked cursor
// that can never panic: any truncation, bad tag, bad UTF-8 or trailing
// garbage is a typed `Err`, which the server answers with
// `protocol_error` and a close.

mod tag {
    pub const PING: u8 = 0x01;
    pub const STATS: u8 = 0x02;
    pub const SHUTDOWN: u8 = 0x03;
    pub const DESIGN: u8 = 0x10;
    pub const PREDICT: u8 = 0x11;
    pub const PONG: u8 = 0x81;
    pub const SHUTDOWN_ACK: u8 = 0x82;
    pub const STATS_RESPONSE: u8 = 0x83;
    pub const DESIGN_OK: u8 = 0x84;
    pub const DESIGN_ERROR: u8 = 0x85;
    pub const REJECTED: u8 = 0x86;
    pub const PREDICT_OK: u8 = 0x87;
    pub const PROTOCOL_ERROR: u8 = 0x88;
}

/// Bit flags for optional design-request fields.
const DESIGN_HAS_THRESHOLD: u8 = 0b01;
const DESIGN_HAS_DONT_CARE: u8 = 0b10;

fn put_str(out: &mut Vec<u8>, text: &str) {
    out.extend_from_slice(&(text.len() as u32).to_be_bytes());
    out.extend_from_slice(text.as_bytes());
}

/// A never-panicking binary payload cursor.
struct BinReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BinReader { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("binary payload truncated at byte {}", self.at))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("bool byte must be 0 or 1, got {other}")),
        }
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|e| format!("string is not UTF-8: {e}"))
    }

    /// Rejects trailing garbage: a valid message consumes its payload
    /// exactly.
    fn finish(self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.at
            ))
        }
    }
}

impl Request {
    /// Renders the request as a frame payload in the given codec.
    #[must_use]
    pub fn encode_with(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::JsonV1 => self.encode(),
            Codec::BinaryV2 => self.encode_binary(),
        }
    }

    /// Parses a request payload in the given codec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason; never panics on adversarial
    /// bytes.
    pub fn decode_with(codec: Codec, payload: &[u8]) -> Result<Request, String> {
        match codec {
            Codec::JsonV1 => Request::decode(payload),
            Codec::BinaryV2 => Request::decode_binary(payload),
        }
    }

    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(tag::PING),
            Request::Stats => out.push(tag::STATS),
            Request::Shutdown => out.push(tag::SHUTDOWN),
            Request::Design {
                id,
                trace,
                history,
                threshold,
                dont_care,
            } => {
                out.push(tag::DESIGN);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&(*history as u64).to_be_bytes());
                let mut flags = 0u8;
                if threshold.is_some() {
                    flags |= DESIGN_HAS_THRESHOLD;
                }
                if dont_care.is_some() {
                    flags |= DESIGN_HAS_DONT_CARE;
                }
                out.push(flags);
                if let Some(t) = threshold {
                    out.extend_from_slice(&t.to_bits().to_be_bytes());
                }
                if let Some(d) = dont_care {
                    out.extend_from_slice(&d.to_bits().to_be_bytes());
                }
                put_str(&mut out, trace);
            }
            Request::Predict { id, bits } => {
                out.push(tag::PREDICT);
                out.extend_from_slice(&id.to_be_bytes());
                put_str(&mut out, bits);
            }
        }
        out
    }

    fn decode_binary(payload: &[u8]) -> Result<Request, String> {
        let mut r = BinReader::new(payload);
        let request = match r.u8().map_err(|_| "empty binary payload".to_string())? {
            tag::PING => Request::Ping,
            tag::STATS => Request::Stats,
            tag::SHUTDOWN => Request::Shutdown,
            tag::DESIGN => {
                let id = r.u64()?;
                let history = usize::try_from(r.u64()?).map_err(|_| "history out of range")?;
                let flags = r.u8()?;
                if flags & !(DESIGN_HAS_THRESHOLD | DESIGN_HAS_DONT_CARE) != 0 {
                    return Err(format!("unknown design flags {flags:#04x}"));
                }
                let threshold = if flags & DESIGN_HAS_THRESHOLD != 0 {
                    Some(r.f64()?)
                } else {
                    None
                };
                let dont_care = if flags & DESIGN_HAS_DONT_CARE != 0 {
                    Some(r.f64()?)
                } else {
                    None
                };
                let trace = r.str()?;
                Request::Design {
                    id,
                    trace,
                    history,
                    threshold,
                    dont_care,
                }
            }
            tag::PREDICT => {
                let id = r.u64()?;
                let bits = r.str()?;
                Request::Predict { id, bits }
            }
            other => return Err(format!("unknown binary request tag {other:#04x}")),
        };
        r.finish()?;
        Ok(request)
    }
}

impl Response {
    /// Renders the response as a frame payload in the given codec.
    #[must_use]
    pub fn encode_with(&self, codec: Codec) -> Vec<u8> {
        match codec {
            Codec::JsonV1 => self.encode(),
            Codec::BinaryV2 => self.encode_binary(),
        }
    }

    /// Parses a response payload in the given codec (the client half).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason; never panics on adversarial
    /// bytes.
    pub fn decode_with(codec: Codec, payload: &[u8]) -> Result<Response, String> {
        match codec {
            Codec::JsonV1 => Response::decode(payload),
            Codec::BinaryV2 => Response::decode_binary(payload),
        }
    }

    fn encode_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(tag::PONG),
            Response::ShutdownAck => out.push(tag::SHUTDOWN_ACK),
            Response::Stats(json_text) => {
                out.push(tag::STATS_RESPONSE);
                put_str(&mut out, json_text);
            }
            Response::ProtocolError { error } => {
                out.push(tag::PROTOCOL_ERROR);
                put_str(&mut out, error);
            }
            Response::DesignOk {
                id,
                states,
                cache_hit,
                wall_ms,
                machine,
            } => {
                out.push(tag::DESIGN_OK);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&(*states as u64).to_be_bytes());
                out.push(u8::from(*cache_hit));
                out.extend_from_slice(&wall_ms.to_bits().to_be_bytes());
                put_str(&mut out, machine);
            }
            Response::DesignError { id, error } => {
                out.push(tag::DESIGN_ERROR);
                out.extend_from_slice(&id.to_be_bytes());
                put_str(&mut out, error);
            }
            Response::Rejected { id, retry_after_ms } => {
                out.push(tag::REJECTED);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&retry_after_ms.to_be_bytes());
            }
            Response::PredictOk {
                id,
                total,
                correct,
                generation,
                swapped,
            } => {
                out.push(tag::PREDICT_OK);
                out.extend_from_slice(&id.to_be_bytes());
                out.extend_from_slice(&total.to_be_bytes());
                out.extend_from_slice(&correct.to_be_bytes());
                out.extend_from_slice(&generation.to_be_bytes());
                out.push(u8::from(*swapped));
            }
        }
        out
    }

    fn decode_binary(payload: &[u8]) -> Result<Response, String> {
        let mut r = BinReader::new(payload);
        let response = match r.u8().map_err(|_| "empty binary payload".to_string())? {
            tag::PONG => Response::Pong,
            tag::SHUTDOWN_ACK => Response::ShutdownAck,
            tag::STATS_RESPONSE => Response::Stats(r.str()?),
            tag::PROTOCOL_ERROR => Response::ProtocolError { error: r.str()? },
            tag::DESIGN_OK => {
                let id = r.u64()?;
                let states = usize::try_from(r.u64()?).map_err(|_| "states out of range")?;
                let cache_hit = r.bool()?;
                let wall_ms = r.f64()?;
                let machine = r.str()?;
                Response::DesignOk {
                    id,
                    states,
                    cache_hit,
                    wall_ms,
                    machine,
                }
            }
            tag::DESIGN_ERROR => {
                let id = r.u64()?;
                let error = r.str()?;
                Response::DesignError { id, error }
            }
            tag::REJECTED => {
                let id = r.u64()?;
                let retry_after_ms = r.u64()?;
                Response::Rejected { id, retry_after_ms }
            }
            tag::PREDICT_OK => {
                let id = r.u64()?;
                let total = r.u64()?;
                let correct = r.u64()?;
                let generation = r.u64()?;
                let swapped = r.bool()?;
                Response::PredictOk {
                    id,
                    total,
                    correct,
                    generation,
                    swapped,
                }
            }
            other => return Err(format!("unknown binary response tag {other:#04x}")),
        };
        r.finish()?;
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(ProtoError::Disconnected)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(wire);
        match read_frame(&mut cursor, 1024) {
            Err(ProtoError::Oversized { advertised, limit }) => {
                assert_eq!(advertised, u32::MAX as usize);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Design {
                id: 42,
                trace: "0000 1000 1011".into(),
                history: 3,
                threshold: Some(0.75),
                dont_care: None,
            },
            Request::Predict {
                id: 43,
                bits: "0101 1100".into(),
            },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Pong,
            Response::ShutdownAck,
            Response::DesignOk {
                id: 7,
                states: 3,
                cache_hit: true,
                wall_ms: 1.25,
                machine: "start 0\n0 1 2 0\n".into(),
            },
            Response::DesignError {
                id: 8,
                error: "trace too short".into(),
            },
            Response::Rejected {
                id: 9,
                retry_after_ms: 50,
            },
            Response::PredictOk {
                id: 10,
                total: 128,
                correct: 97,
                generation: 2,
                swapped: true,
            },
            Response::ProtocolError {
                error: "bad frame".into(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn decode_rejects_wrong_version_and_kind() {
        assert!(Request::decode(b"{\"v\": 99, \"kind\": \"ping\"}")
            .unwrap_err()
            .contains("version"));
        assert!(Request::decode(b"{\"v\": 1, \"kind\": \"explode\"}")
            .unwrap_err()
            .contains("unknown request kind"));
        assert!(Request::decode(b"{\"v\": 1}").unwrap_err().contains("kind"));
        assert!(Request::decode(b"not json").unwrap_err().contains("JSON"));
        assert!(Request::decode(&[0xff, 0xfe])
            .unwrap_err()
            .contains("UTF-8"));
        assert!(
            Request::decode(b"{\"v\": 1, \"kind\": \"design_request\", \"history\": 2}")
                .unwrap_err()
                .contains("trace")
        );
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Design {
                id: 42,
                trace: "0000 1000 1011".into(),
                history: 3,
                threshold: Some(0.75),
                dont_care: None,
            },
            Request::Design {
                id: u64::MAX,
                trace: String::new(),
                history: 0,
                threshold: None,
                dont_care: Some(0.125),
            },
            Request::Predict {
                id: 43,
                bits: "0101 1100".into(),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::ShutdownAck,
            Response::Stats("{\"x\": 1}".into()),
            Response::DesignOk {
                id: 7,
                states: 3,
                cache_hit: true,
                wall_ms: 1.25,
                machine: "start 0\n0 1 2 0\n".into(),
            },
            Response::DesignError {
                id: 8,
                error: "trace too short".into(),
            },
            Response::Rejected {
                id: 9,
                retry_after_ms: 50,
            },
            Response::PredictOk {
                id: 10,
                total: 128,
                correct: 97,
                generation: 2,
                swapped: true,
            },
            Response::ProtocolError {
                error: "bad frame".into(),
            },
        ]
    }

    #[test]
    fn binary_messages_round_trip_exactly() {
        for request in sample_requests() {
            let payload = request.encode_with(Codec::BinaryV2);
            let decoded = Request::decode_with(Codec::BinaryV2, &payload).unwrap();
            assert_eq!(decoded, request);
        }
        for response in sample_responses() {
            let payload = response.encode_with(Codec::BinaryV2);
            let decoded = Response::decode_with(Codec::BinaryV2, &payload).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn binary_decode_rejects_truncation_at_every_length() {
        // Chopping a valid payload anywhere must be a typed error (or,
        // for a prefix that happens to be a complete shorter message,
        // a decode that is not the original) — never a panic.
        for request in sample_requests() {
            let payload = request.encode_with(Codec::BinaryV2);
            for cut in 0..payload.len() {
                let _ = Request::decode_with(Codec::BinaryV2, &payload[..cut]);
            }
            // Trailing garbage is always rejected.
            let mut padded = payload.clone();
            padded.push(0);
            assert!(Request::decode_with(Codec::BinaryV2, &padded).is_err());
        }
        for response in sample_responses() {
            let payload = response.encode_with(Codec::BinaryV2);
            for cut in 0..payload.len() {
                let _ = Response::decode_with(Codec::BinaryV2, &payload[..cut]);
            }
            let mut padded = payload.clone();
            padded.push(0);
            assert!(Response::decode_with(Codec::BinaryV2, &padded).is_err());
        }
    }

    #[test]
    fn binary_decode_rejects_bad_tags_lengths_and_bools() {
        assert!(Request::decode_with(Codec::BinaryV2, &[])
            .unwrap_err()
            .contains("empty"));
        assert!(Request::decode_with(Codec::BinaryV2, &[0x7f])
            .unwrap_err()
            .contains("unknown binary request tag"));
        assert!(Response::decode_with(Codec::BinaryV2, &[0x01])
            .unwrap_err()
            .contains("unknown binary response tag"));
        // A string length far beyond the payload is truncation, not an
        // allocation.
        let mut huge = vec![tag::PROTOCOL_ERROR];
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(Response::decode_with(Codec::BinaryV2, &huge)
            .unwrap_err()
            .contains("truncated"));
        // Non-UTF-8 strings are rejected.
        let mut bad_utf8 = vec![tag::PROTOCOL_ERROR];
        bad_utf8.extend_from_slice(&2u32.to_be_bytes());
        bad_utf8.extend_from_slice(&[0xff, 0xfe]);
        assert!(Response::decode_with(Codec::BinaryV2, &bad_utf8)
            .unwrap_err()
            .contains("UTF-8"));
        // Bool bytes other than 0/1 are rejected (PredictOk.swapped).
        let response = Response::PredictOk {
            id: 1,
            total: 2,
            correct: 1,
            generation: 0,
            swapped: false,
        };
        let mut payload = response.encode_with(Codec::BinaryV2);
        let last = payload.len() - 1;
        payload[last] = 2;
        assert!(Response::decode_with(Codec::BinaryV2, &payload)
            .unwrap_err()
            .contains("bool"));
    }

    #[test]
    fn binary_preamble_is_unmistakable_for_a_frame() {
        let preamble = binary_preamble();
        assert_eq!(&preamble[..4], b"FSMB");
        assert_eq!(preamble.len(), BINARY_PREAMBLE_LEN);
        // Read as a JSON length prefix, the magic advertises a frame far
        // beyond any configured bound — the sniff is unambiguous.
        let as_len = u32::from_be_bytes(BINARY_MAGIC) as usize;
        assert!(as_len > DEFAULT_MAX_FRAME * 100);
        assert_eq!(
            u32::from_be_bytes([preamble[4], preamble[5], preamble[6], preamble[7]]),
            PROTOCOL_VERSION
        );
    }

    #[test]
    fn codec_parse_spellings() {
        assert_eq!(Codec::parse("v1").unwrap(), Codec::JsonV1);
        assert_eq!(Codec::parse("json").unwrap(), Codec::JsonV1);
        assert_eq!(Codec::parse("v2").unwrap(), Codec::BinaryV2);
        assert_eq!(Codec::parse("binary").unwrap(), Codec::BinaryV2);
        assert!(Codec::parse("v3").is_err());
        assert_eq!(Codec::BinaryV2.name(), "binary-v2");
    }

    #[test]
    fn every_encoded_message_is_versioned() {
        for payload in [
            Request::Ping.encode(),
            Response::Pong.encode(),
            Response::ProtocolError { error: "x".into() }.encode(),
        ] {
            let text = String::from_utf8(payload).unwrap();
            assert!(text.starts_with("{\"v\": 1, \"kind\": "), "{text}");
        }
    }
}
