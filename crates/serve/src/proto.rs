//! The wire protocol: length-prefixed JSON frames and the typed
//! request/response vocabulary.
//!
//! Every message on the wire is one *frame*: a 4-byte big-endian payload
//! length followed by that many bytes of UTF-8 JSON. Each payload is a
//! single JSON object carrying the shared schema conventions of the
//! obs/farm JSON (versioned via a `"v"` field equal to
//! [`fsmgen_obs::SCHEMA_VERSION`], discriminated via `"kind"`). Frames
//! larger than the receiver's configured bound are rejected *before* the
//! payload is read, so an adversarial length prefix can never force an
//! allocation.

use crate::json::{self, Json};
use std::fmt;
use std::io::{self, Read, Write};

/// Default upper bound on a frame payload, in bytes (1 MiB). A design
/// request carrying a million-bit trace fits comfortably.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// The protocol's schema version — the same stamp the obs/farm JSON
/// carries, because the messages share that schema's conventions.
pub const PROTOCOL_VERSION: u32 = fsmgen_obs::SCHEMA_VERSION;

/// Why a frame could not be read or understood.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a frame boundary (not an error
    /// in spirit: this is the clean end of a session).
    Disconnected,
    /// An I/O failure mid-frame, including read timeouts.
    Io(io::Error),
    /// The length prefix exceeds the receiver's frame bound.
    Oversized {
        /// The advertised payload length.
        advertised: usize,
        /// The receiver's bound.
        limit: usize,
    },
    /// The payload was not valid UTF-8 JSON of the expected shape.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Disconnected => f.write_str("peer disconnected"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Oversized { advertised, limit } => {
                write!(
                    f,
                    "frame of {advertised} bytes exceeds the {limit}-byte limit"
                )
            }
            ProtoError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// True when the underlying cause is a read timeout (the slow-loris
    /// guard) rather than a hard I/O failure.
    #[must_use]
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
        )
    }
}

/// Reads one frame payload. Returns [`ProtoError::Disconnected`] on EOF
/// at a frame boundary and [`ProtoError::Oversized`] without consuming
/// the advertised payload.
///
/// # Errors
///
/// See [`ProtoError`]; timeouts surface as `Io` with a timeout kind.
pub fn read_frame(stream: &mut impl Read, max_frame: usize) -> Result<Vec<u8>, ProtoError> {
    let mut len_bytes = [0u8; 4];
    match stream.read(&mut len_bytes) {
        Ok(0) => return Err(ProtoError::Disconnected),
        Ok(n) => {
            // A partial length prefix is mid-frame: finish it or fail.
            stream
                .read_exact(&mut len_bytes[n..])
                .map_err(ProtoError::Io)?;
        }
        Err(e) => return Err(ProtoError::Io(e)),
    }
    let advertised = u32::from_be_bytes(len_bytes) as usize;
    if advertised > max_frame {
        return Err(ProtoError::Oversized {
            advertised,
            limit: max_frame,
        });
    }
    let mut payload = vec![0u8; advertised];
    stream.read_exact(&mut payload).map_err(ProtoError::Io)?;
    Ok(payload)
}

/// Writes one frame (length prefix + payload).
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Design a predictor for a 0/1 trace.
    Design {
        /// Caller-chosen id, echoed in the response.
        id: u64,
        /// The behaviour trace, in [`fsmgen_traces::BitTrace`] text form.
        trace: String,
        /// History order for the designer.
        history: usize,
        /// Pattern probability threshold (designer default when `None`).
        threshold: Option<f64>,
        /// Don't-care fraction (designer default when `None`).
        dont_care: Option<f64>,
    },
    /// Stream outcome bits through the server's live predictor (only
    /// answered when the server runs with online redesign enabled).
    Predict {
        /// Caller-chosen id, echoed in the response.
        id: u64,
        /// A chunk of 0/1 outcome bits (whitespace ignored).
        bits: String,
    },
    /// Liveness probe.
    Ping,
    /// Ask for the server's metrics JSON.
    Stats,
    /// Ask the server to drain in-flight requests and exit.
    Shutdown,
}

impl Request {
    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason (bad JSON, wrong version, unknown
    /// kind, missing or ill-typed fields).
    pub fn decode(payload: &[u8]) -> Result<Request, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let value = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        let version = value
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("missing \"v\" field")?;
        if version != u64::from(PROTOCOL_VERSION) {
            return Err(format!(
                "unsupported protocol version {version} (this server speaks {PROTOCOL_VERSION})"
            ));
        }
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\" field")?;
        match kind {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "design_request" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                let trace = value
                    .get("trace")
                    .and_then(Json::as_str)
                    .ok_or("design_request needs a \"trace\" string")?
                    .to_string();
                let history = value
                    .get("history")
                    .and_then(Json::as_u64)
                    .ok_or("design_request needs an integer \"history\"")?;
                let history = usize::try_from(history).map_err(|_| "history out of range")?;
                let float_field = |name: &str| -> Result<Option<f64>, String> {
                    match value.get(name) {
                        None => Ok(None),
                        Some(v) => v
                            .as_f64()
                            .map(Some)
                            .ok_or_else(|| format!("\"{name}\" must be a number")),
                    }
                };
                Ok(Request::Design {
                    id,
                    trace,
                    history,
                    threshold: float_field("threshold")?,
                    dont_care: float_field("dont_care")?,
                })
            }
            "predict_request" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                let bits = value
                    .get("bits")
                    .and_then(Json::as_str)
                    .ok_or("predict_request needs a \"bits\" string")?
                    .to_string();
                Ok(Request::Predict { id, bits })
            }
            other => Err(format!("unknown request kind {other:?}")),
        }
    }

    /// Renders the request as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let v = PROTOCOL_VERSION;
        match self {
            Request::Ping => format!("{{\"v\": {v}, \"kind\": \"ping\"}}").into_bytes(),
            Request::Stats => format!("{{\"v\": {v}, \"kind\": \"stats\"}}").into_bytes(),
            Request::Shutdown => format!("{{\"v\": {v}, \"kind\": \"shutdown\"}}").into_bytes(),
            Request::Design {
                id,
                trace,
                history,
                threshold,
                dont_care,
            } => {
                let mut out = format!(
                    "{{\"v\": {v}, \"kind\": \"design_request\", \"id\": {id}, \"history\": {history}"
                );
                if let Some(t) = threshold {
                    out.push_str(&format!(", \"threshold\": {t}"));
                }
                if let Some(d) = dont_care {
                    out.push_str(&format!(", \"dont_care\": {d}"));
                }
                out.push_str(&format!(", \"trace\": {}}}", json::json_string(trace)));
                out.into_bytes()
            }
            Request::Predict { id, bits } => format!(
                "{{\"v\": {v}, \"kind\": \"predict_request\", \"id\": {id}, \"bits\": {}}}",
                json::json_string(bits)
            )
            .into_bytes(),
        }
    }
}

/// A server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A design succeeded.
    DesignOk {
        /// Echo of the request id.
        id: u64,
        /// States in the designed machine.
        states: usize,
        /// Whether the design was served from the farm's cache.
        cache_hit: bool,
        /// In-worker design wall clock, milliseconds.
        wall_ms: f64,
        /// The machine in `fsmgen-automata` table form (reloadable with
        /// `fsmgen predict`, byte-identical to a local design).
        machine: String,
    },
    /// A design failed with a typed error.
    DesignError {
        /// Echo of the request id.
        id: u64,
        /// The rendered error.
        error: String,
    },
    /// The server is saturated; retry after the given delay.
    Rejected {
        /// Echo of the request id.
        id: u64,
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// Reply to [`Request::Predict`]: per-chunk accounting from the
    /// live predictor.
    PredictOk {
        /// Echo of the request id.
        id: u64,
        /// Bits in the chunk.
        total: u64,
        /// Bits the live predictor got right.
        correct: u64,
        /// Generation of the machine that served the *end* of the chunk
        /// (bumped by every hot swap).
        generation: u64,
        /// Whether a hot swap landed while this chunk was streaming.
        swapped: bool,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Stats`]: the server's metrics JSON, verbatim.
    Stats(String),
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// The frame itself could not be understood; the server closes the
    /// connection after sending this.
    ProtocolError {
        /// What was wrong with the frame.
        error: String,
    },
}

impl Response {
    /// Renders the response as a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let v = PROTOCOL_VERSION;
        match self {
            Response::Pong => format!("{{\"v\": {v}, \"kind\": \"pong\"}}").into_bytes(),
            Response::ShutdownAck => {
                format!("{{\"v\": {v}, \"kind\": \"shutdown_ack\"}}").into_bytes()
            }
            Response::Stats(json_text) => format!(
                "{{\"v\": {v}, \"kind\": \"stats_response\", \"metrics\": {}}}",
                json_text.trim()
            )
            .into_bytes(),
            Response::ProtocolError { error } => format!(
                "{{\"v\": {v}, \"kind\": \"protocol_error\", \"error\": {}}}",
                json::json_string(error)
            )
            .into_bytes(),
            Response::DesignOk {
                id,
                states,
                cache_hit,
                wall_ms,
                machine,
            } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \"status\": \"ok\", \
                 \"states\": {states}, \"cache_hit\": {cache_hit}, \"wall_ms\": {wall_ms:.3}, \
                 \"machine\": {}}}",
                json::json_string(machine)
            )
            .into_bytes(),
            Response::DesignError { id, error } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \
                 \"status\": \"error\", \"error\": {}}}",
                json::json_string(error)
            )
            .into_bytes(),
            Response::Rejected { id, retry_after_ms } => format!(
                "{{\"v\": {v}, \"kind\": \"design_response\", \"id\": {id}, \
                 \"status\": \"rejected\", \"retry_after_ms\": {retry_after_ms}}}"
            )
            .into_bytes(),
            Response::PredictOk {
                id,
                total,
                correct,
                generation,
                swapped,
            } => format!(
                "{{\"v\": {v}, \"kind\": \"predict_response\", \"id\": {id}, \
                 \"total\": {total}, \"correct\": {correct}, \
                 \"generation\": {generation}, \"swapped\": {swapped}}}"
            )
            .into_bytes(),
        }
    }

    /// Parses a response payload (the client half of the protocol).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the payload is not a valid
    /// response object.
    pub fn decode(payload: &[u8]) -> Result<Response, String> {
        let text =
            std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
        let value = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing \"kind\" field")?;
        match kind {
            "pong" => Ok(Response::Pong),
            "shutdown_ack" => Ok(Response::ShutdownAck),
            "predict_response" => Ok(Response::PredictOk {
                id: value.get("id").and_then(Json::as_u64).unwrap_or(0),
                total: value
                    .get("total")
                    .and_then(Json::as_u64)
                    .ok_or("missing total")?,
                correct: value
                    .get("correct")
                    .and_then(Json::as_u64)
                    .ok_or("missing correct")?,
                generation: value.get("generation").and_then(Json::as_u64).unwrap_or(0),
                swapped: value
                    .get("swapped")
                    .and_then(Json::as_bool)
                    .unwrap_or(false),
            }),
            "stats_response" => {
                // Keep the metrics as text: it is the last field, so it
                // runs from after its key to the outer object's final
                // closing brace.
                let at = text.find("\"metrics\":").ok_or("missing metrics")?;
                let body = text[at + "\"metrics\":".len()..]
                    .trim()
                    .strip_suffix('}')
                    .ok_or("unterminated stats_response")?
                    .trim()
                    .to_string();
                Ok(Response::Stats(body))
            }
            "protocol_error" => Ok(Response::ProtocolError {
                error: value
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            }),
            "design_response" => {
                let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
                match value.get("status").and_then(Json::as_str) {
                    Some("ok") => Ok(Response::DesignOk {
                        id,
                        states: value
                            .get("states")
                            .and_then(Json::as_u64)
                            .ok_or("missing states")? as usize,
                        cache_hit: value
                            .get("cache_hit")
                            .and_then(Json::as_bool)
                            .unwrap_or(false),
                        wall_ms: value.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0),
                        machine: value
                            .get("machine")
                            .and_then(Json::as_str)
                            .ok_or("missing machine")?
                            .to_string(),
                    }),
                    Some("error") => Ok(Response::DesignError {
                        id,
                        error: value
                            .get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                    }),
                    Some("rejected") => Ok(Response::Rejected {
                        id,
                        retry_after_ms: value
                            .get("retry_after_ms")
                            .and_then(Json::as_u64)
                            .unwrap_or(0),
                    }),
                    other => Err(format!("unknown design_response status {other:?}")),
                }
            }
            other => Err(format!("unknown response kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(ProtoError::Disconnected)
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_without_reading_payload() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut cursor = io::Cursor::new(wire);
        match read_frame(&mut cursor, 1024) {
            Err(ProtoError::Oversized { advertised, limit }) => {
                assert_eq!(advertised, u32::MAX as usize);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut cursor = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor, 64),
            Err(ProtoError::Io(_))
        ));
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Design {
                id: 42,
                trace: "0000 1000 1011".into(),
                history: 3,
                threshold: Some(0.75),
                dont_care: None,
            },
            Request::Predict {
                id: 43,
                bits: "0101 1100".into(),
            },
        ];
        for request in requests {
            let decoded = Request::decode(&request.encode()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Pong,
            Response::ShutdownAck,
            Response::DesignOk {
                id: 7,
                states: 3,
                cache_hit: true,
                wall_ms: 1.25,
                machine: "start 0\n0 1 2 0\n".into(),
            },
            Response::DesignError {
                id: 8,
                error: "trace too short".into(),
            },
            Response::Rejected {
                id: 9,
                retry_after_ms: 50,
            },
            Response::PredictOk {
                id: 10,
                total: 128,
                correct: 97,
                generation: 2,
                swapped: true,
            },
            Response::ProtocolError {
                error: "bad frame".into(),
            },
        ];
        for response in responses {
            let decoded = Response::decode(&response.encode()).unwrap();
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn decode_rejects_wrong_version_and_kind() {
        assert!(Request::decode(b"{\"v\": 99, \"kind\": \"ping\"}")
            .unwrap_err()
            .contains("version"));
        assert!(Request::decode(b"{\"v\": 1, \"kind\": \"explode\"}")
            .unwrap_err()
            .contains("unknown request kind"));
        assert!(Request::decode(b"{\"v\": 1}").unwrap_err().contains("kind"));
        assert!(Request::decode(b"not json").unwrap_err().contains("JSON"));
        assert!(Request::decode(&[0xff, 0xfe])
            .unwrap_err()
            .contains("UTF-8"));
        assert!(
            Request::decode(b"{\"v\": 1, \"kind\": \"design_request\", \"history\": 2}")
                .unwrap_err()
                .contains("trace")
        );
    }

    #[test]
    fn every_encoded_message_is_versioned() {
        for payload in [
            Request::Ping.encode(),
            Response::Pong.encode(),
            Response::ProtocolError { error: "x".into() }.encode(),
        ] {
            let text = String::from_utf8(payload).unwrap();
            assert!(text.starts_with("{\"v\": 1, \"kind\": "), "{text}");
        }
    }
}
