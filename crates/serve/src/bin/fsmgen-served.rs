//! Standalone design-service daemon: a thin flag parser over
//! [`fsmgen_serve::Server`]. The CLI's `fsmgen serve` offers the same
//! surface; this binary exists so the serve crate's own e2e tests can
//! spawn a real server process.

use fsmgen_serve::{RedesignConfig, ServeConfig, Server};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: fsmgen-served [flags]

  --addr HOST:PORT        bind address (default 127.0.0.1:0; port 0 = OS pick)
  --workers N             farm worker threads (default 1)
  --shards N              event-loop shards; 0 = threaded architecture
                          (default 0)
  --cache-capacity N      design-cache bound in designs (default 1024)
  --max-connections N     concurrent connection bound (default 64)
  --queue-limit N         in-flight design bound before backpressure (default 256)
  --read-timeout-ms N     per-read timeout in milliseconds (default 5000)
  --max-frame-bytes N     largest accepted frame payload (default 1 MiB)
  --retry-after-ms N      backoff hint on backpressure rejections (default 50)
  --cache-file PATH       durable design store: recover on start, append
                          while serving, compact on shutdown
  --flush-every N         store appends per forced fsync (default 8; 1 = every)
  --flush-interval-ms N   max time an append may sit unsynced (default 200)
  --metrics-json PATH     write serve_metrics JSON here on shutdown
  --fail SPEC             arm failpoints process-wide (e.g. serve-conn=error:1)
  --trace-jsonl PATH      append obs events as JSONL
  --redesign              enable the live predictor with online redesign
  --redesign-window N     monitoring/training window in outcomes (default 512)
  --redesign-threshold X  windowed hit rate that counts as collapse (default 0.6)
  --redesign-hysteresis X extra rate required to re-arm after collapse (default 0.1)
  --redesign-history N    history order for triggered redesigns (default 3)

prints `listening on HOST:PORT` on stdout once ready; stop it with a
`shutdown` protocol request.";

fn parse_flags(args: &[String]) -> Result<(ServeConfig, Option<String>, Option<String>), String> {
    let mut config = ServeConfig::default();
    let mut fail_spec = None;
    let mut trace_jsonl = None;
    let mut redesign = RedesignConfig::default();
    let mut redesign_enabled = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        // Presence-only flags take no value token.
        if flag == "--redesign" {
            redesign_enabled = true;
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag {flag} needs a value"))?;
        let parse_usize = |v: &str| -> Result<usize, String> {
            v.parse().map_err(|_| format!("bad {flag}: {v}"))
        };
        let parse_f64 = |v: &str| -> Result<f64, String> {
            match v.parse::<f64>() {
                Ok(x) if x.is_finite() && (0.0..=1.0).contains(&x) => Ok(x),
                _ => Err(format!("bad {flag}: {v} (want a rate in 0..=1)")),
            }
        };
        match flag.as_str() {
            "--addr" => config.addr = value.clone(),
            "--workers" => config.workers = parse_usize(value)?,
            "--shards" => config.shards = parse_usize(value)?,
            "--cache-capacity" => config.cache_capacity = parse_usize(value)?,
            "--max-connections" => config.max_connections = parse_usize(value)?,
            "--queue-limit" => config.queue_limit = parse_usize(value)?,
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_usize(value)? as u64);
            }
            "--max-frame-bytes" => config.max_frame_bytes = parse_usize(value)?,
            "--retry-after-ms" => config.retry_after_ms = parse_usize(value)? as u64,
            "--flush-every" => config.flush_every = parse_usize(value)?,
            "--flush-interval-ms" => {
                config.flush_interval = Duration::from_millis(parse_usize(value)? as u64);
            }
            "--cache-file" => config.cache_file = Some(value.into()),
            "--metrics-json" => config.metrics_json = Some(value.into()),
            "--fail" => fail_spec = Some(value.clone()),
            "--trace-jsonl" => trace_jsonl = Some(value.clone()),
            // The knob flags imply --redesign: asking to tune the live
            // predictor is asking for one.
            "--redesign-window" => {
                redesign.window = parse_usize(value)?.max(1);
                redesign_enabled = true;
            }
            "--redesign-threshold" => {
                redesign.collapse_threshold = parse_f64(value)?;
                redesign_enabled = true;
            }
            "--redesign-hysteresis" => {
                redesign.hysteresis = parse_f64(value)?;
                redesign_enabled = true;
            }
            "--redesign-history" => {
                let history = parse_usize(value)?;
                if history == 0 || history > fsmgen::MAX_ORDER {
                    return Err(format!(
                        "bad {flag}: {value} (want 1..={})",
                        fsmgen::MAX_ORDER
                    ));
                }
                redesign.history = history;
                redesign_enabled = true;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if redesign_enabled {
        config.redesign = Some(redesign);
    }
    Ok((config, fail_spec, trace_jsonl))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, fail_spec, trace_jsonl) = match parse_flags(&args) {
        Ok(parsed) => parsed,
        Err(reason) => {
            if reason.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("fsmgen-served: {reason}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(spec) = fail_spec {
        if let Err(reason) = fsmgen::failpoints::configure_from_spec_global(&spec) {
            eprintln!("fsmgen-served: bad --fail spec: {reason}");
            return ExitCode::from(2);
        }
    }
    if let Some(path) = trace_jsonl {
        match std::fs::File::create(&path) {
            Ok(file) => {
                fsmgen_obs::install_global(std::sync::Arc::new(fsmgen_obs::JsonlObsSink::new(file)))
            }
            Err(err) => {
                eprintln!("fsmgen-served: cannot open {path}: {err}");
                return ExitCode::from(1);
            }
        }
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("fsmgen-served: bind failed: {err}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", server.local_addr());
    let _flushed = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            fsmgen_obs::clear_global();
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("fsmgen-served: {err}");
            ExitCode::from(1)
        }
    }
}
