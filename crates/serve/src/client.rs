//! A small blocking client for the design service — the counterpart the
//! CLI's `fsmgen client` command and the e2e tests are built on.

use crate::proto::{self, ProtoError, Request, Response, DEFAULT_MAX_FRAME};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the connection died mid-exchange.
    Io(io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// The server reported our frame as unintelligible and closed.
    Rejected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Rejected(reason) => write!(f, "server rejected the frame: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client holding one request/response TCP session. The
/// connection is keep-alive: any number of requests may be exchanged
/// before dropping it.
pub struct ServeClient {
    stream: TcpStream,
    max_frame: usize,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7450`) with a read/write
    /// timeout applied to every exchange.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str, timeout: Duration) -> Result<ServeClient, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(ServeClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// I/O failures, undecodable replies, or a server-side
    /// `protocol_error` (mapped to [`ClientError::Rejected`]).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.stream, &request.encode())?;
        let payload = match proto::read_frame(&mut self.stream, self.max_frame) {
            Ok(payload) => payload,
            Err(ProtoError::Io(e)) => return Err(ClientError::Io(e)),
            Err(ProtoError::Disconnected) => {
                return Err(ClientError::Protocol("server closed the connection".into()))
            }
            Err(other) => return Err(ClientError::Protocol(other.to_string())),
        };
        let response = Response::decode(&payload).map_err(ClientError::Protocol)?;
        if let Response::ProtocolError { error } = &response {
            return Err(ClientError::Rejected(error.clone()));
        }
        Ok(response)
    }

    /// Convenience: a design request with retry-on-backpressure. Retries
    /// a [`Response::Rejected`] up to `retries` times, honouring the
    /// server's `retry_after_ms` hint between attempts.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::call`]; also a protocol error when the server is
    /// still saturated after the last retry.
    pub fn design_with_retry(
        &mut self,
        request: &Request,
        retries: usize,
    ) -> Result<Response, ClientError> {
        for _attempt in 0..=retries {
            match self.call(request)? {
                Response::Rejected { retry_after_ms, .. } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(1_000)));
                }
                other => return Ok(other),
            }
        }
        Err(ClientError::Protocol(format!(
            "server still saturated after {retries} retries"
        )))
    }
}
