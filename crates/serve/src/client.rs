//! A small blocking client for the design service — the counterpart the
//! CLI's `fsmgen client` command and the e2e tests are built on.

use crate::proto::{self, Codec, ProtoError, Request, Response, DEFAULT_MAX_FRAME};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Cap on any single backoff sleep.
const MAX_BACKOFF_MS: u64 = 1_000;

/// A tiny deterministic xorshift64* generator for backoff jitter — no
/// dependency, no global state, seedable for tests.
#[derive(Debug, Clone)]
struct BackoffRng(u64);

impl BackoffRng {
    fn new(seed: u64) -> Self {
        // A zero state would be a fixed point; force a bit on.
        BackoffRng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-enough value in `0..n` (`0` for `n = 0`).
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The jittered exponential backoff schedule: attempt `k` doubles the
/// server's `retry_after_ms` hint `k` times (capped at
/// [`MAX_BACKOFF_MS`]), then draws uniformly from `[base/2, base]` so a
/// fleet of clients rejected together does not reconnect in lockstep
/// (the thundering-herd fix).
fn backoff_delay(hint_ms: u64, attempt: u32, rng: &mut BackoffRng) -> Duration {
    let base = hint_ms
        .max(1)
        .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
        .min(MAX_BACKOFF_MS);
    let low = base / 2;
    Duration::from_millis(low + rng.below(base - low + 1))
}

/// Per-process client counter feeding connection-unique RNG seeds.
static CLIENT_SEQ: AtomicU64 = AtomicU64::new(0);

fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    let seq = CLIENT_SEQ.fetch_add(1, Ordering::Relaxed);
    nanos ^ (seq << 32) ^ (std::process::id() as u64)
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect or the connection died mid-exchange.
    Io(io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// The server reported our frame as unintelligible and closed.
    Rejected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(reason) => write!(f, "protocol error: {reason}"),
            ClientError::Rejected(reason) => write!(f, "server rejected the frame: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected client holding one request/response TCP session. The
/// connection is keep-alive: any number of requests may be exchanged
/// before dropping it.
pub struct ServeClient {
    stream: TcpStream,
    max_frame: usize,
    codec: Codec,
    rng: BackoffRng,
}

impl ServeClient {
    /// Connects to `addr` (e.g. `127.0.0.1:7450`) with a read/write
    /// timeout applied to every exchange, speaking JSON v1.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: &str, timeout: Duration) -> Result<ServeClient, ClientError> {
        Self::connect_with(addr, timeout, Codec::JsonV1)
    }

    /// Connects speaking `codec`. Binary v2 announces itself by sending
    /// the `FSMB` preamble before the first frame; JSON v1 sends nothing
    /// extra (the default the server assumes).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_with(
        addr: &str,
        timeout: Duration,
        codec: Codec,
    ) -> Result<ServeClient, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        if codec == Codec::BinaryV2 {
            use std::io::Write as _;
            stream.write_all(&proto::binary_preamble())?;
        }
        Ok(ServeClient {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            codec,
            rng: BackoffRng::new(jitter_seed()),
        })
    }

    /// The codec this connection negotiated at connect time.
    #[must_use]
    pub fn codec(&self) -> Codec {
        self.codec
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// I/O failures, undecodable replies, or a server-side
    /// `protocol_error` (mapped to [`ClientError::Rejected`]).
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.stream, &request.encode_with(self.codec))?;
        let payload = match proto::read_frame(&mut self.stream, self.max_frame) {
            Ok(payload) => payload,
            Err(ProtoError::Io(e)) => return Err(ClientError::Io(e)),
            Err(ProtoError::Disconnected) => {
                return Err(ClientError::Protocol("server closed the connection".into()))
            }
            Err(other) => return Err(ClientError::Protocol(other.to_string())),
        };
        let response =
            Response::decode_with(self.codec, &payload).map_err(ClientError::Protocol)?;
        if let Response::ProtocolError { error } = &response {
            return Err(ClientError::Rejected(error.clone()));
        }
        Ok(response)
    }

    /// Convenience: a design request with retry-on-backpressure. Retries
    /// a [`Response::Rejected`] up to `retries` times, sleeping a
    /// jittered exponential backoff seeded from the server's
    /// `retry_after_ms` hint: attempt `k` waits uniformly within
    /// `[hint·2^k / 2, hint·2^k]` (capped at 1 s), so a fleet of
    /// clients rejected at the same instant spreads out instead of
    /// stampeding back in lockstep.
    ///
    /// # Errors
    ///
    /// As [`ServeClient::call`]; also a protocol error when the server is
    /// still saturated after the last retry.
    pub fn design_with_retry(
        &mut self,
        request: &Request,
        retries: usize,
    ) -> Result<Response, ClientError> {
        for attempt in 0..=retries {
            match self.call(request)? {
                Response::Rejected { retry_after_ms, .. } => {
                    let delay = backoff_delay(retry_after_ms, attempt as u32, &mut self.rng);
                    std::thread::sleep(delay);
                }
                other => return Ok(other),
            }
        }
        Err(ClientError::Protocol(format!(
            "server still saturated after {retries} retries"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full schedule for one hint/seed pair.
    fn schedule(hint_ms: u64, seed: u64, attempts: u32) -> Vec<u64> {
        let mut rng = BackoffRng::new(seed);
        (0..attempts)
            .map(|k| backoff_delay(hint_ms, k, &mut rng).as_millis() as u64)
            .collect()
    }

    #[test]
    fn backoff_schedule_is_deterministic_for_a_seed() {
        assert_eq!(schedule(50, 42, 8), schedule(50, 42, 8));
        // This exact schedule is pinned so an accidental change to the
        // RNG or the base computation shows up as a test diff.
        assert_eq!(schedule(50, 42, 6), vec![46, 83, 169, 349, 555, 947]);
    }

    #[test]
    fn backoff_stays_within_the_jitter_window() {
        for seed in [1u64, 7, 42, 0xDEAD_BEEF] {
            let mut rng = BackoffRng::new(seed);
            for attempt in 0..10u32 {
                let base = 50u64
                    .saturating_mul(1 << attempt.min(32))
                    .min(MAX_BACKOFF_MS);
                let delay = backoff_delay(50, attempt, &mut rng).as_millis() as u64;
                assert!(
                    delay >= base / 2 && delay <= base,
                    "attempt {attempt}: {delay} ms outside [{}, {base}]",
                    base / 2
                );
            }
        }
    }

    #[test]
    fn backoff_is_capped_even_for_huge_hints_and_attempts() {
        let mut rng = BackoffRng::new(3);
        for attempt in [0, 5, 31, 63, u32::MAX] {
            let delay = backoff_delay(u64::MAX, attempt, &mut rng);
            assert!(delay <= Duration::from_millis(MAX_BACKOFF_MS));
        }
        // A zero hint still makes progress (base clamps to >= 1 ms).
        let delay = backoff_delay(0, 0, &mut rng);
        assert!(delay <= Duration::from_millis(1));
    }

    #[test]
    fn different_seeds_desynchronize_the_fleet() {
        // Two clients rejected at the same instant must not sleep an
        // identical schedule — the whole point of the jitter.
        assert_ne!(schedule(50, 1, 8), schedule(50, 2, 8));
    }
}
