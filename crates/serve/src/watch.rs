//! Shared delta/rate computation for stats pollers.
//!
//! Both `fsmgen top` and `fsmgen client --stats --watch` poll the serve
//! `stats` endpoint and turn successive `serve_metrics` documents into
//! rates (req/s, windowed hit rate, flush activity) and restart-aware
//! deltas. That computation lives here — in one module — so the two
//! front-ends cannot drift apart.
//!
//! Restart handling: counters in the stats document are monotone for
//! the lifetime of one server process, but a restarted server rewinds
//! them all to zero. [`RateTracker`] detects the rewind (via `seq` /
//! `uptime_ms` when present, or any counter going backwards otherwise),
//! flags the frame as `restarted`, and re-baselines so the next window
//! is computed against the new process rather than reporting nonsense
//! negative rates.

use crate::json::{self, Json};
use std::time::Instant;

/// One parsed `serve_metrics` document (the payload of a stats
/// response). All fields are absent-tolerant: a document from an older
/// server that lacks `uptime_ms`/`seq` parses with those as `None`, and
/// missing counters read as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StatsSample {
    /// `uptime_ms` field, when the server is new enough to send it.
    pub uptime_ms: Option<u64>,
    /// `seq` render counter, when present.
    pub seq: Option<u64>,
    /// `conns_accepted`.
    pub conns_accepted: u64,
    /// `requests_ok`.
    pub requests_ok: u64,
    /// `requests_failed`.
    pub requests_failed: u64,
    /// `rejected_backpressure`.
    pub rejected_backpressure: u64,
    /// `timeouts`.
    pub timeouts: u64,
    /// `malformed_frames`.
    pub malformed_frames: u64,
    /// `latency_us.count`.
    pub latency_count: u64,
    /// `latency_us.p50` (µs).
    pub latency_p50: u64,
    /// `latency_us.p95` (µs).
    pub latency_p95: u64,
    /// `latency_us.p99` (µs).
    pub latency_p99: u64,
    /// `cache.hits + cache.snapshot_hits`.
    pub cache_hits: u64,
    /// `cache.misses`.
    pub cache_misses: u64,
    /// `store.appends`.
    pub store_appends: u64,
    /// `store.flushes`.
    pub store_flushes: u64,
    /// `store.compacted`.
    pub store_compacted: u64,
}

impl StatsSample {
    /// True when `self` (a later sample) has rewound relative to
    /// `earlier` — the restart signal. Prefers `seq`/`uptime_ms`, falls
    /// back to the request counters for old servers.
    #[must_use]
    pub fn is_rewound_from(&self, earlier: &StatsSample) -> bool {
        if let (Some(now), Some(then)) = (self.seq, earlier.seq) {
            if now < then {
                return true;
            }
        }
        if let (Some(now), Some(then)) = (self.uptime_ms, earlier.uptime_ms) {
            if now < then {
                return true;
            }
        }
        self.requests_ok < earlier.requests_ok
            || self.conns_accepted < earlier.conns_accepted
            || self.latency_count < earlier.latency_count
    }
}

/// Parses a `serve_metrics` JSON document into a [`StatsSample`].
///
/// # Errors
/// Returns a description when the text is not JSON or is not a
/// `serve_metrics` document. Missing individual fields are tolerated.
pub fn parse_stats(text: &str) -> Result<StatsSample, String> {
    let value = json::parse(text).map_err(|e| format!("stats payload is not JSON: {e}"))?;
    match value.get("kind").and_then(Json::as_str) {
        Some("serve_metrics") => {}
        other => return Err(format!("unexpected stats kind {other:?}")),
    }
    let num = |key: &str| value.get(key).and_then(Json::as_u64).unwrap_or(0);
    let nested = |block: &str, key: &str| {
        value
            .get(block)
            .and_then(|b| b.get(key))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    Ok(StatsSample {
        uptime_ms: value.get("uptime_ms").and_then(Json::as_u64),
        seq: value.get("seq").and_then(Json::as_u64),
        conns_accepted: num("conns_accepted"),
        requests_ok: num("requests_ok"),
        requests_failed: num("requests_failed"),
        rejected_backpressure: num("rejected_backpressure"),
        timeouts: num("timeouts"),
        malformed_frames: num("malformed_frames"),
        latency_count: nested("latency_us", "count"),
        latency_p50: nested("latency_us", "p50"),
        latency_p95: nested("latency_us", "p95"),
        latency_p99: nested("latency_us", "p99"),
        cache_hits: nested("cache", "hits") + nested("cache", "snapshot_hits"),
        cache_misses: nested("cache", "misses"),
        store_appends: nested("store", "appends"),
        store_flushes: nested("store", "flushes"),
        store_compacted: nested("store", "compacted"),
    })
}

/// One computed frame: the latest sample plus rates over the window
/// since the previous sample. Rates are zero on the first frame and on
/// the frame where a restart was detected (no valid window exists).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WatchFrame {
    /// The sample the frame was computed from.
    pub sample: StatsSample,
    /// Seconds covered by the window (0 on first/restart frames).
    pub window_secs: f64,
    /// Successful designs per second over the window.
    pub req_per_s: f64,
    /// Failed + backpressure-rejected requests per second.
    pub reject_per_s: f64,
    /// Timeouts per second.
    pub timeout_per_s: f64,
    /// Malformed frames per second.
    pub malformed_per_s: f64,
    /// Cache hit rate: windowed when the window saw lookups, lifetime
    /// otherwise. In `[0, 1]`; 0 when no lookups ever happened.
    pub hit_rate: f64,
    /// Store appends per second over the window.
    pub appends_per_s: f64,
    /// Store flushes per second over the window.
    pub flushes_per_s: f64,
    /// Compactions that happened during the window.
    pub compactions: u64,
    /// True when this sample rewound relative to the previous one — the
    /// server restarted mid-watch. The tracker re-baselined.
    pub restarted: bool,
}

/// Computes restart-aware rate frames from successive samples.
#[derive(Debug, Default)]
pub struct RateTracker {
    prev: Option<(StatsSample, Instant)>,
}

impl RateTracker {
    /// New tracker with no baseline.
    #[must_use]
    pub fn new() -> Self {
        RateTracker::default()
    }

    /// Folds in a sample taken now.
    pub fn observe(&mut self, sample: StatsSample) -> WatchFrame {
        self.observe_at(sample, Instant::now())
    }

    /// Folds in a sample taken at `now` (injectable for tests).
    pub fn observe_at(&mut self, sample: StatsSample, now: Instant) -> WatchFrame {
        let mut frame = WatchFrame {
            sample,
            ..WatchFrame::default()
        };
        let lifetime_lookups = sample.cache_hits + sample.cache_misses;
        if lifetime_lookups > 0 {
            frame.hit_rate = sample.cache_hits as f64 / lifetime_lookups as f64;
        }
        if let Some((prev, prev_at)) = self.prev {
            if sample.is_rewound_from(&prev) {
                frame.restarted = true;
            } else {
                let dt = now.saturating_duration_since(prev_at).as_secs_f64();
                if dt > 0.0 {
                    frame.window_secs = dt;
                    let delta = |now: u64, then: u64| now.saturating_sub(then) as f64 / dt;
                    frame.req_per_s = delta(sample.requests_ok, prev.requests_ok);
                    frame.reject_per_s = delta(
                        sample.requests_failed + sample.rejected_backpressure,
                        prev.requests_failed + prev.rejected_backpressure,
                    );
                    frame.timeout_per_s = delta(sample.timeouts, prev.timeouts);
                    frame.malformed_per_s = delta(sample.malformed_frames, prev.malformed_frames);
                    frame.appends_per_s = delta(sample.store_appends, prev.store_appends);
                    frame.flushes_per_s = delta(sample.store_flushes, prev.store_flushes);
                    frame.compactions = sample.store_compacted.saturating_sub(prev.store_compacted);
                    let hits_d = sample.cache_hits.saturating_sub(prev.cache_hits);
                    let miss_d = sample.cache_misses.saturating_sub(prev.cache_misses);
                    if hits_d + miss_d > 0 {
                        frame.hit_rate = hits_d as f64 / (hits_d + miss_d) as f64;
                    }
                }
            }
        }
        self.prev = Some((sample, now));
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn doc(uptime: u64, seq: u64, ok: u64, hits: u64, misses: u64) -> String {
        format!(
            "{{\"version\": 1, \"kind\": \"serve_metrics\", \"uptime_ms\": {uptime}, \
             \"seq\": {seq}, \"conns_accepted\": {ok}, \"requests_ok\": {ok}, \
             \"requests_failed\": 0, \"rejected_backpressure\": 0, \"timeouts\": 0, \
             \"malformed_frames\": 0, \
             \"latency_us\": {{\"count\": {ok}, \"p50\": 127, \"p95\": 511, \"p99\": 1023}}, \
             \"store\": {{\"appends\": {ok}, \"flushes\": 1, \"compacted\": 0}}, \
             \"cache\": {{\"hits\": {hits}, \"snapshot_hits\": 0, \"misses\": {misses}}}}}"
        )
    }

    #[test]
    fn parse_extracts_counters_and_quantiles() {
        let sample = parse_stats(&doc(5000, 3, 40, 30, 10)).unwrap();
        assert_eq!(sample.uptime_ms, Some(5000));
        assert_eq!(sample.seq, Some(3));
        assert_eq!(sample.requests_ok, 40);
        assert_eq!(sample.latency_p50, 127);
        assert_eq!(sample.latency_p99, 1023);
        assert_eq!(sample.cache_hits, 30);
        assert_eq!(sample.cache_misses, 10);
    }

    #[test]
    fn parse_tolerates_missing_uptime_and_seq() {
        let old = "{\"version\": 1, \"kind\": \"serve_metrics\", \"requests_ok\": 7}";
        let sample = parse_stats(old).unwrap();
        assert_eq!(sample.uptime_ms, None);
        assert_eq!(sample.seq, None);
        assert_eq!(sample.requests_ok, 7);
        assert_eq!(sample.latency_p50, 0);
    }

    #[test]
    fn parse_rejects_non_stats_documents() {
        assert!(parse_stats("{\"kind\": \"design_response\"}").is_err());
        assert!(parse_stats("not json").is_err());
    }

    #[test]
    fn rates_come_from_the_window() {
        let mut tracker = RateTracker::new();
        let t0 = Instant::now();
        let first = tracker.observe_at(parse_stats(&doc(1000, 0, 10, 5, 5)).unwrap(), t0);
        assert_eq!(first.req_per_s, 0.0, "no window on the first frame");
        assert!(!first.restarted);
        // Lifetime hit rate is still available on frame one.
        assert!((first.hit_rate - 0.5).abs() < 1e-9);

        let frame = tracker.observe_at(
            parse_stats(&doc(3000, 1, 30, 20, 10)).unwrap(),
            t0 + Duration::from_secs(2),
        );
        assert!((frame.window_secs - 2.0).abs() < 1e-9);
        assert!((frame.req_per_s - 10.0).abs() < 1e-9, "{frame:?}");
        // Windowed hit rate: Δhits 15 over Δlookups 20.
        assert!((frame.hit_rate - 0.75).abs() < 1e-9, "{frame:?}");
        assert!((frame.appends_per_s - 10.0).abs() < 1e-9);
    }

    #[test]
    fn restart_is_flagged_and_rebaselined() {
        let mut tracker = RateTracker::new();
        let t0 = Instant::now();
        tracker.observe_at(parse_stats(&doc(9000, 5, 100, 50, 50)).unwrap(), t0);
        // Server restarted: uptime, seq and counters all rewound.
        let restart = tracker.observe_at(
            parse_stats(&doc(200, 0, 2, 1, 1)).unwrap(),
            t0 + Duration::from_secs(1),
        );
        assert!(restart.restarted);
        assert_eq!(restart.req_per_s, 0.0, "no rate across the restart");
        // The next frame computes against the new process cleanly.
        let next = tracker.observe_at(
            parse_stats(&doc(1200, 1, 12, 6, 2)).unwrap(),
            t0 + Duration::from_secs(2),
        );
        assert!(!next.restarted);
        assert!((next.req_per_s - 10.0).abs() < 1e-9, "{next:?}");
    }

    #[test]
    fn restart_detection_falls_back_to_counters_for_old_servers() {
        let old = |ok: u64| {
            format!("{{\"version\": 1, \"kind\": \"serve_metrics\", \"requests_ok\": {ok}}}")
        };
        let mut tracker = RateTracker::new();
        let t0 = Instant::now();
        tracker.observe_at(parse_stats(&old(50)).unwrap(), t0);
        let frame = tracker.observe_at(parse_stats(&old(3)).unwrap(), t0 + Duration::from_secs(1));
        assert!(frame.restarted);
    }

    #[test]
    fn seq_tie_is_not_a_restart() {
        // Two polls racing the same render must not flag a restart.
        let mut tracker = RateTracker::new();
        let t0 = Instant::now();
        tracker.observe_at(parse_stats(&doc(1000, 4, 10, 0, 0)).unwrap(), t0);
        let frame = tracker.observe_at(
            parse_stats(&doc(1000, 4, 10, 0, 0)).unwrap(),
            t0 + Duration::from_millis(10),
        );
        assert!(!frame.restarted);
    }
}
