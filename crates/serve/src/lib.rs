//! `fsmgen-serve`: a networked design service over the farm.
//!
//! The paper's pipeline (trace → Markov model → logic minimization →
//! Moore predictor) is a pure function of its inputs, which makes it an
//! ideal service workload: the server fronts a shared [`fsmgen_farm::Farm`]
//! whose content-addressed cache and single-flight dedup turn repeated
//! requests into lookups, and a design served over the wire is
//! byte-identical to one computed locally — the correctness contract the
//! e2e differential tests pin. With `--cache-file` the cache is backed
//! by a durable append-only store: every insert is logged and
//! periodically fsync'd, so even a SIGKILL'd server restarts warm,
//! losing at most one flush interval of designs — the contract the
//! crash-drill tests pin.
//!
//! # Protocol
//!
//! One TCP connection carries any number of frames; each frame is a
//! 4-byte big-endian length followed by that many bytes of UTF-8 JSON
//! (see [`proto`]). Messages carry `"v"` (schema version, shared with
//! `fsmgen-obs`) and `"kind"` discriminators. The full wire-format spec
//! lives in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use fsmgen_serve::{Request, Response, ServeClient, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let handle = server.handle();
//! let addr = server.local_addr().to_string();
//! let thread = std::thread::spawn(move || server.run());
//!
//! let mut client = ServeClient::connect(&addr, Duration::from_secs(5)).unwrap();
//! let response = client
//!     .call(&Request::Design {
//!         id: 1,
//!         trace: "0000 1000 1011 1101 1110 1111".into(),
//!         history: 2,
//!         threshold: None,
//!         dont_care: None,
//!     })
//!     .unwrap();
//! match response {
//!     Response::DesignOk { states, .. } => assert!(states >= 2),
//!     other => panic!("unexpected response: {other:?}"),
//! }
//! handle.shutdown();
//! thread.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod loadgen;
pub mod metrics;
pub mod predictor;
pub mod proto;
pub mod server;
mod shard;
pub mod watch;

/// The shared JSON reader (re-exported from `fsmgen-obs`, where it moved
/// so the scenario engine can parse plan files with the same grammar the
/// wire protocol uses). Existing `fsmgen_serve::json` call sites keep
/// working unchanged.
pub mod json {
    pub use fsmgen_obs::json::{json_string, parse, Json, JsonError};
}

pub use client::{ClientError, ServeClient};
pub use loadgen::{run_loadgen, LoadReport, LoadgenConfig, TrafficMix};
pub use metrics::{ServeMetrics, ServeMetricsSnapshot, ShardMetrics};
pub use predictor::{initial_machine, ChunkOutcome, LivePredictor, RedesignConfig};
pub use proto::{
    read_frame, write_frame, Codec, ProtoError, Request, Response, DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
};
pub use server::{ServeConfig, Server, ServerHandle};
pub use watch::{parse_stats, RateTracker, StatsSample, WatchFrame};
