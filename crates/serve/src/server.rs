//! The TCP design server, in two interchangeable architectures over the
//! same protocol and farm:
//!
//! - **Threaded** (`shards = 0`): the original thread-per-connection
//!   accept loop — one blocking handler thread per peer. Kept as the
//!   bench baseline and for the lowest-latency single-client paths.
//! - **Sharded event-driven** (`shards >= 1`): N shard threads, each a
//!   non-blocking poll loop multiplexing many connections. The accept
//!   loop only dispatches sockets round-robin; each shard reads as many
//!   *pipelined* frames as a connection has sent, answers them in
//!   request order, and batches the writes. Design requests route to a
//!   fingerprint-partitioned [`ShardedFarm`], so the old single cache
//!   lock disappears while the durable store stays ONE log.
//!
//! Both architectures share bounded concurrency, per-connection
//! progress deadlines (the slow-loris guard), backpressure, codec
//! negotiation (JSON v1 / binary v2), graceful drain on shutdown and
//! the durable append-only design store: every cache insert is appended
//! (and periodically fsync'd) while serving, so an unclean death loses
//! at most one flush interval of designs; a graceful drain compacts the
//! log in place.
//!
//! The process has no dependency-free way to trap signals, so graceful
//! shutdown is driven two equivalent ways: a [`Request::Shutdown`]
//! protocol message, or [`ServerHandle::shutdown`] from the embedding
//! process. Both set a flag and nudge the blocked `accept()` with a
//! loopback connection.

use crate::metrics::ServeMetrics;
use crate::predictor::{LivePredictor, RedesignConfig};
use crate::proto::{self, Codec, ProtoError, Request, Response, DEFAULT_MAX_FRAME};
use crate::shard;
use fsmgen::{failpoints, Designer, MAX_ORDER};
use fsmgen_automata::machine_to_table;
use fsmgen_farm::{CompactPolicy, DesignJob, FarmConfig, ShardedFarm, StoreConfig};
use fsmgen_obs as obs;
use fsmgen_traces::BitTrace;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Everything that shapes a running server.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7450`. Port `0` asks the OS for a
    /// free port; read it back via [`Server::local_addr`].
    pub addr: String,
    /// Farm worker threads (`1` designs inline on the connection thread).
    pub workers: usize,
    /// Design-cache bound, in designs.
    pub cache_capacity: usize,
    /// Concurrent connections admitted before new ones are turned away.
    pub max_connections: usize,
    /// Design requests in flight before backpressure rejects with
    /// retry-after.
    pub queue_limit: usize,
    /// Per-read timeout: a peer that dribbles bytes slower than this is
    /// disconnected (the slow-loris guard). Also bounds idle keep-alive.
    pub read_timeout: Duration,
    /// Largest accepted frame payload, in bytes.
    pub max_frame_bytes: usize,
    /// Durable design store: recovered (or migrated from a legacy
    /// snapshot) before accepting, appended to on every cache insert
    /// while serving, compacted after draining.
    pub cache_file: Option<PathBuf>,
    /// Where to write the final `serve_metrics` JSON on shutdown.
    pub metrics_json: Option<PathBuf>,
    /// The backoff hint sent with backpressure rejections.
    pub retry_after_ms: u64,
    /// Store appends accumulated before an fsync is forced (`1` syncs
    /// every append).
    pub flush_every: usize,
    /// Upper bound on how long an appended design may sit unsynced —
    /// the most an unclean death can lose.
    pub flush_interval: Duration,
    /// Online redesign: when set, the server keeps a live predictor
    /// that clients stream outcomes through, monitors its windowed hit
    /// rate, and hot-swaps in a farm redesign on collapse.
    pub redesign: Option<RedesignConfig>,
    /// Event-loop shards. `0` runs the threaded thread-per-connection
    /// architecture (the baseline); `N >= 1` runs N non-blocking shard
    /// event loops with pipelined connections and a design cache
    /// partitioned by `fingerprint % N`.
    pub shards: usize,
}

impl Default for ServeConfig {
    /// Loopback on an OS-assigned port, modest bounds suitable for tests.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_capacity: 1024,
            max_connections: 64,
            queue_limit: 256,
            read_timeout: Duration::from_secs(5),
            max_frame_bytes: DEFAULT_MAX_FRAME,
            cache_file: None,
            metrics_json: None,
            retry_after_ms: 50,
            flush_every: 8,
            flush_interval: Duration::from_millis(200),
            redesign: None,
            shards: 0,
        }
    }
}

/// State shared between the accept loop, connection handlers (threads
/// or shard event loops) and handles.
pub(crate) struct Shared {
    pub(crate) config: ServeConfig,
    /// Always a sharded farm: the threaded architecture runs it with a
    /// single shard, which is exactly the old one-lock behaviour.
    pub(crate) farm: ShardedFarm,
    pub(crate) metrics: ServeMetrics,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) active_conns: AtomicUsize,
    pub(crate) in_flight: AtomicUsize,
    /// The hot-swappable live predictor (None without `redesign`).
    pub(crate) live: Option<LivePredictor>,
}

/// A bound, not-yet-running server. [`Server::run`] blocks until
/// shutdown; grab a [`ServerHandle`] first to stop it from another
/// thread.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cheap clone-able remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Requests shutdown: stop accepting, drain in-flight work, persist
    /// the snapshot. Idempotent.
    pub fn shutdown(&self) {
        signal_shutdown(&self.shared, self.addr);
    }

    /// True once shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }
}

pub(crate) fn signal_shutdown(shared: &Shared, addr: SocketAddr) {
    if !shared.shutting_down.swap(true, Ordering::SeqCst) {
        // Unblock the accept loop. A failed nudge is fine: the loop also
        // notices the flag on its next natural wakeup.
        let _nudge = TcpStream::connect(addr);
    }
}

/// Decrements a counter when dropped, so connection accounting survives
/// every early return.
pub(crate) struct CountGuard<'a>(pub(crate) &'a AtomicUsize);

impl Drop for CountGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds the listener, builds the farm and — when configured —
    /// attaches the durable design store, replaying its log into the
    /// cache. A missing store file is not an error (first boot creates
    /// it); a legacy snapshot is migrated in place; a torn tail is
    /// truncated and counted. A store that cannot be opened (e.g. a
    /// foreign file at the path) falls back to serving cold, with the
    /// failure reported through an obs mark.
    ///
    /// # Errors
    ///
    /// Only the TCP bind can fail.
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // The threaded architecture (shards = 0) runs a 1-shard farm —
        // identical semantics to the old single Farm, one cache lock.
        let farm = ShardedFarm::new(
            config.shards.max(1),
            FarmConfig {
                workers: config.workers.max(1),
                cache_capacity: config.cache_capacity,
            },
        );
        if let Some(path) = &config.cache_file {
            let store_config = StoreConfig {
                flush_every: config.flush_every,
                flush_interval: config.flush_interval,
            };
            if let Err(err) = farm.attach_store(path, store_config) {
                obs::mark("serve", "store_open_failed", &err.to_string());
            }
        }
        let live = match config.redesign {
            Some(redesign) => Some(LivePredictor::new(redesign).map_err(io::Error::other)?),
            None => None,
        };
        let metrics = ServeMetrics::with_shards(config.shards);
        Ok(Server {
            listener,
            local_addr,
            shared: Arc::new(Shared {
                config,
                farm,
                metrics,
                shutting_down: AtomicBool::new(false),
                active_conns: AtomicUsize::new(0),
                in_flight: AtomicUsize::new(0),
                live,
            }),
        })
    }

    /// The bound address (useful with port `0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A remote control for stopping this server.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr,
        }
    }

    /// The live service counters (shared with every connection thread).
    #[must_use]
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Renders the current `serve_metrics` JSON document.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        metrics_json(&self.shared)
    }

    /// Runs the accept loop until shutdown is requested, then drains
    /// in-flight connections, compacts the durable store and writes the
    /// metrics JSON. While running, a background flusher bounds how long
    /// appended designs may sit unsynced to one flush interval.
    ///
    /// # Errors
    ///
    /// Store/metrics persistence failures at shutdown; accept-loop
    /// I/O errors on individual connections are absorbed.
    pub fn run(&self) -> io::Result<()> {
        let _serve_span = obs::span("serve");
        let flusher = self.shared.config.cache_file.as_ref().map(|_| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || flusher_loop(&shared))
        });
        // Event-driven mode: spawn the shard loops, keep their senders.
        let mut shard_txs: Vec<mpsc::Sender<TcpStream>> = Vec::new();
        let mut shard_threads = Vec::new();
        for index in 0..self.shared.config.shards {
            let (tx, rx) = mpsc::channel();
            shard_txs.push(tx);
            let shared = Arc::clone(&self.shared);
            let addr = self.local_addr;
            shard_threads.push(std::thread::spawn(move || {
                shard::run_shard(&shared, index, &rx, addr);
            }));
        }
        let mut next_shard = 0usize;
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) if self.shared.shutting_down.load(Ordering::SeqCst) => break,
                Err(_) => continue,
            };
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let admitted = self.shared.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
            if admitted > self.shared.config.max_connections {
                self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                self.shared
                    .metrics
                    .conns_rejected
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter("serve", "conn_rejected", 1);
                reject_connection(stream, self.shared.config.retry_after_ms);
                continue;
            }
            if shard_txs.is_empty() {
                // Threaded architecture: one handler thread per peer.
                let shared = Arc::clone(&self.shared);
                let addr = self.local_addr;
                std::thread::spawn(move || {
                    let _guard = CountGuard(&shared.active_conns);
                    handle_connection(&shared, stream, addr);
                });
            } else {
                // Event-driven architecture: hand the socket to a shard
                // round-robin. A closed channel means the shard died;
                // the connection is dropped and un-counted.
                let target = next_shard % shard_txs.len();
                next_shard = next_shard.wrapping_add(1);
                if shard_txs[target].send(stream).is_err() {
                    self.shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        self.drain();
        drop(shard_txs);
        for thread in shard_threads {
            let _joined = thread.join();
        }
        if let Some(flusher) = flusher {
            let _joined = flusher.join();
        }
        self.persist()
    }

    /// Waits (bounded) for in-flight connections to finish.
    fn drain(&self) {
        let deadline =
            std::time::Instant::now() + self.shared.config.read_timeout + Duration::from_secs(5);
        while self.shared.active_conns.load(Ordering::SeqCst) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn persist(&self) -> io::Result<()> {
        if self.shared.config.cache_file.is_some() {
            // Graceful drain: dedup the log and drop anything the
            // bounded cache would not readmit anyway.
            let policy = CompactPolicy {
                keep: Some(self.shared.config.cache_capacity.max(1)),
                max_generations: None,
            };
            self.shared
                .farm
                .compact_store(&policy)
                .map_err(|e| io::Error::other(e.to_string()))?;
        }
        if let Some(path) = &self.shared.config.metrics_json {
            std::fs::write(path, self.metrics_json())?;
        }
        Ok(())
    }
}

/// Renders the `serve_metrics` document from the shared state (also the
/// reply to a [`Request::Stats`]).
fn metrics_json(shared: &Shared) -> String {
    let store = shared.farm.store_stats().unwrap_or_default();
    shared.metrics.to_json(&shared.farm.cache_stats(), &store)
}

/// The background flusher: bounds unsynced-append exposure to one flush
/// interval even when traffic stops mid-batch. Sleeps in short steps so
/// shutdown is noticed promptly regardless of the configured interval.
fn flusher_loop(shared: &Shared) {
    let interval = shared.config.flush_interval.max(Duration::from_millis(1));
    let step = interval.min(Duration::from_millis(50));
    let mut since_flush = Duration::ZERO;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        std::thread::sleep(step);
        since_flush += step;
        if since_flush >= interval {
            since_flush = Duration::ZERO;
            if let Err(err) = shared.farm.flush_store() {
                obs::mark("serve", "store_flush_failed", &err.to_string());
            }
        }
    }
}

/// Sends a backpressure rejection to a connection we will not service.
fn reject_connection(mut stream: TcpStream, retry_after_ms: u64) {
    let payload = Response::Rejected {
        id: 0,
        retry_after_ms,
    }
    .encode();
    let _ignored = proto::write_frame(&mut stream, &payload);
}

/// Reads the next frame, transparently negotiating the codec on the
/// very first bytes of the connection: a `FSMB` preamble switches the
/// connection to binary v2, anything else is a JSON v1 length prefix.
/// A preamble with the wrong version surfaces as
/// [`ProtoError::Malformed`].
fn read_negotiated_frame(
    stream: &mut TcpStream,
    codec: &mut Option<Codec>,
    max_frame: usize,
) -> Result<Vec<u8>, ProtoError> {
    if codec.is_some() {
        return proto::read_frame(stream, max_frame);
    }
    let prefix = proto::read_prefix(stream)?;
    if prefix == proto::BINARY_MAGIC {
        let mut version_bytes = [0u8; 4];
        stream
            .read_exact(&mut version_bytes)
            .map_err(ProtoError::Io)?;
        let version = u32::from_be_bytes(version_bytes);
        if version != proto::PROTOCOL_VERSION {
            // Reply in the codec the client asked for: it clearly
            // speaks binary, just the wrong revision of it.
            *codec = Some(Codec::BinaryV2);
            return Err(ProtoError::Malformed(format!(
                "unsupported binary protocol version {version} (this server speaks {})",
                proto::PROTOCOL_VERSION
            )));
        }
        *codec = Some(Codec::BinaryV2);
        proto::read_frame(stream, max_frame)
    } else {
        *codec = Some(Codec::JsonV1);
        proto::read_frame_after_prefix(stream, prefix, max_frame)
    }
}

/// What to do with a connection after answering one request.
pub(crate) enum Handled {
    /// Send the response, keep serving.
    Reply(Response),
    /// Send the ack, then initiate server shutdown and close.
    Shutdown,
}

/// Answers one decoded request — the dispatch shared by the threaded
/// handler and the shard event loops. `shard` indexes the per-shard
/// metrics block in event-driven mode.
pub(crate) fn handle_request(
    shared: &Arc<Shared>,
    shard: Option<usize>,
    request: Request,
) -> Handled {
    if let Some(metrics) = shard.and_then(|s| shared.metrics.shard(s)) {
        metrics.frames.fetch_add(1, Ordering::Relaxed);
    }
    let response = match request {
        Request::Ping => {
            shared.metrics.pings.fetch_add(1, Ordering::Relaxed);
            Response::Pong
        }
        Request::Stats => {
            shared
                .metrics
                .stats_requests
                .fetch_add(1, Ordering::Relaxed);
            Response::Stats(metrics_json(shared))
        }
        Request::Shutdown => return Handled::Shutdown,
        Request::Design {
            id,
            trace,
            history,
            threshold,
            dont_care,
        } => design_response(shared, shard, id, &trace, history, threshold, dont_care),
        Request::Predict { id, bits } => predict_response(shared, id, &bits),
    };
    Handled::Reply(response)
}

/// Serves one connection: a loop of frames until disconnect, error or
/// shutdown. Never panics on peer input — every failure path is a
/// structured reply or a clean close, plus a counter.
fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, addr: SocketAddr) {
    shared
        .metrics
        .conns_accepted
        .fetch_add(1, Ordering::Relaxed);
    obs::counter("serve", "conn_accepted", 1);
    if let Some(action) = failpoints::fire("serve-conn") {
        // Injected connection fault: both actions model an I/O layer
        // failure, so the connection is dropped without a reply.
        let _ = action;
        shared
            .metrics
            .injected_faults
            .fetch_add(1, Ordering::Relaxed);
        obs::counter("serve", "conn_fault_injected", 1);
        return;
    }
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    // The connection's codec: negotiated on the first bytes, then fixed.
    let mut negotiated: Option<Codec> = None;
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_negotiated_frame(
            &mut stream,
            &mut negotiated,
            shared.config.max_frame_bytes,
        ) {
            Ok(payload) => payload,
            Err(ProtoError::Disconnected) => return,
            Err(ProtoError::Oversized { advertised, limit }) => {
                shared
                    .metrics
                    .oversized_frames
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter("serve", "oversized_frame", 1);
                // The advertised payload was never read, so the stream
                // is out of sync: reply then close.
                send(
                    &mut stream,
                    negotiated.unwrap_or_default(),
                    &Response::ProtocolError {
                        error: format!(
                            "frame of {advertised} bytes exceeds the {limit}-byte limit"
                        ),
                    },
                );
                return;
            }
            Err(err) if err.is_timeout() => {
                shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                obs::counter("serve", "read_timeout", 1);
                send(
                    &mut stream,
                    negotiated.unwrap_or_default(),
                    &Response::ProtocolError {
                        error: "read timed out".into(),
                    },
                );
                return;
            }
            Err(ProtoError::Malformed(reason)) => {
                // A bad negotiation preamble: reply then close.
                shared
                    .metrics
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter("serve", "malformed_frame", 1);
                send(
                    &mut stream,
                    negotiated.unwrap_or_default(),
                    &Response::ProtocolError { error: reason },
                );
                return;
            }
            Err(ProtoError::Io(_)) => return,
        };
        let codec = negotiated.unwrap_or_default();
        let _request_span = obs::span("serve_request");
        let request_started = Instant::now();
        let request = {
            let _parse_span = obs::span("serve_parse");
            Request::decode_with(codec, &payload)
        };
        let request = match request {
            Ok(request) => request,
            Err(reason) => {
                shared
                    .metrics
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                obs::counter("serve", "malformed_frame", 1);
                // The frame itself was well-delimited, so the stream is
                // still in sync: reply and keep serving.
                if !send(
                    &mut stream,
                    codec,
                    &Response::ProtocolError { error: reason },
                ) {
                    return;
                }
                continue;
            }
        };
        let response = match handle_request(shared, None, request) {
            Handled::Reply(response) => response,
            Handled::Shutdown => {
                send(&mut stream, codec, &Response::ShutdownAck);
                signal_shutdown(shared, addr);
                return;
            }
        };
        let delivered = {
            let _respond_span = obs::span("serve_respond");
            send(&mut stream, codec, &response)
        };
        shared
            .metrics
            .request_latency
            .record(request_started.elapsed());
        if !delivered {
            return;
        }
    }
}

/// Runs one design request through the farm, honouring backpressure.
pub(crate) fn design_response(
    shared: &Shared,
    shard: Option<usize>,
    id: u64,
    trace_text: &str,
    history: usize,
    threshold: Option<f64>,
    dont_care: Option<f64>,
) -> Response {
    let in_flight = shared.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    let _guard = CountGuard(&shared.in_flight);
    if in_flight > shared.config.queue_limit {
        shared
            .metrics
            .rejected_backpressure
            .fetch_add(1, Ordering::Relaxed);
        obs::counter("serve", "rejected_backpressure", 1);
        return Response::Rejected {
            id,
            retry_after_ms: shared.config.retry_after_ms,
        };
    }
    let fail = |error: String| {
        shared
            .metrics
            .requests_failed
            .fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = shard.and_then(|s| shared.metrics.shard(s)) {
            metrics.requests_failed.fetch_add(1, Ordering::Relaxed);
        }
        obs::counter("serve", "request_failed", 1);
        Response::DesignError { id, error }
    };
    if history == 0 || history > MAX_ORDER {
        return fail(format!("history must be in 1..={MAX_ORDER}, got {history}"));
    }
    let trace: BitTrace = match trace_text.parse() {
        Ok(trace) => trace,
        Err(err) => return fail(format!("bad trace: {err}")),
    };
    let mut designer = Designer::new(history);
    if let Some(t) = threshold {
        designer = designer.prob_threshold(t);
    }
    if let Some(d) = dont_care {
        designer = designer.dont_care_fraction(d);
    }
    let job = DesignJob::from_trace(id, Arc::new(trace), designer);
    let outcome = {
        let _design_span = obs::span("serve_design");
        shared.farm.design(job)
    };
    match &outcome.result {
        Ok(design) => {
            shared.metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            if let Some(metrics) = shard.and_then(|s| shared.metrics.shard(s)) {
                metrics.requests_ok.fetch_add(1, Ordering::Relaxed);
            }
            obs::counter("serve", "request_ok", 1);
            Response::DesignOk {
                id,
                states: design.fsm().num_states(),
                cache_hit: outcome.cache_hit,
                wall_ms: outcome.wall.as_secs_f64() * 1e3,
                machine: machine_to_table(design.fsm()),
            }
        }
        Err(err) => fail(err.to_string()),
    }
}

/// Streams one chunk of outcome bits through the live predictor and,
/// when the collapse monitor fires, kicks off a background redesign that
/// hot-swaps the machine once the farm delivers it.
fn predict_response(shared: &Arc<Shared>, id: u64, bits: &str) -> Response {
    let Some(live) = &shared.live else {
        shared
            .metrics
            .requests_failed
            .fetch_add(1, Ordering::Relaxed);
        return Response::ProtocolError {
            error: "predict requires a server started with redesign enabled".into(),
        };
    };
    let mut outcomes = Vec::with_capacity(bits.len());
    for c in bits.chars() {
        match c {
            '0' => outcomes.push(false),
            '1' => outcomes.push(true),
            c if c.is_ascii_whitespace() => {}
            c => {
                shared
                    .metrics
                    .malformed_frames
                    .fetch_add(1, Ordering::Relaxed);
                return Response::ProtocolError {
                    error: format!("predict bits must be 0/1, got {c:?}"),
                };
            }
        }
    }
    let chunk = live.feed(outcomes);
    shared
        .metrics
        .predict_requests
        .fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .predict_bits
        .fetch_add(chunk.total, Ordering::Relaxed);
    shared
        .metrics
        .predict_hits
        .fetch_add(chunk.correct, Ordering::Relaxed);
    if chunk.swapped {
        shared
            .metrics
            .predictor_generation
            .store(chunk.generation, Ordering::Relaxed);
    }
    if let Some(window) = chunk.redesign_window {
        shared
            .metrics
            .redesigns_triggered
            .fetch_add(1, Ordering::Relaxed);
        obs::mark(
            "serve",
            "redesign_triggered",
            &format!("window={} request={id}", window.len()),
        );
        let shared = Arc::clone(shared);
        std::thread::spawn(move || run_redesign(&shared, id, &window));
    }
    Response::PredictOk {
        id,
        total: chunk.total,
        correct: chunk.correct,
        generation: chunk.generation,
        swapped: chunk.swapped,
    }
}

/// The background redesign: trains on the collapse window through the
/// farm (cache, dedup and durable store all apply) and publishes the
/// compiled machine into the live slot.
fn run_redesign(shared: &Shared, id: u64, window: &[bool]) {
    let Some(live) = &shared.live else { return };
    let history = live.config().history.clamp(1, MAX_ORDER);
    let result = {
        let _redesign_span = obs::span("serve_redesign");
        shared.farm.redesign(id, window, Designer::new(history))
    };
    match result {
        Ok(compiled) => {
            let generation = live.install(compiled);
            shared
                .metrics
                .predictor_swaps
                .fetch_add(1, Ordering::Relaxed);
            shared
                .metrics
                .predictor_generation
                .store(generation, Ordering::Relaxed);
            obs::mark(
                "serve",
                "predictor_swapped",
                &format!("generation={generation}"),
            );
        }
        Err(err) => {
            live.abort_redesign();
            shared
                .metrics
                .requests_failed
                .fetch_add(1, Ordering::Relaxed);
            obs::mark("serve", "redesign_failed", &err.to_string());
        }
    }
}

/// Writes one response frame in the connection's codec; false when the
/// peer is gone.
fn send(stream: &mut TcpStream, codec: Codec, response: &Response) -> bool {
    let payload = response.encode_with(codec);
    if proto::write_frame(stream, &payload).is_err() {
        return false;
    }
    stream.flush().is_ok()
}
