//! A seeded load generator for the design service: a swarm of pipelined
//! client connections driven from a few multiplexing threads, so a
//! single process can sustain a thousand concurrent connections without
//! a thousand threads.
//!
//! Traffic is deterministic for a seed: each connection derives its own
//! xorshift stream from `seed ^ connection-index`, draws its request
//! sequence from the configured [`TrafficMix`], and picks its traces
//! from a bounded pool (so cache hit rates are controllable). Timing is
//! of course not deterministic — the *workload* is, which is what the
//! tests replay.
//!
//! Two injection disciplines:
//!
//! - **closed loop** (`rate: None`): every connection keeps up to
//!   `pipeline` requests outstanding, writing the next as soon as a
//!   response frees a slot — the throughput-probing mode the bench uses;
//! - **open loop** (`rate: Some(r)`): requests are injected at `r`
//!   requests/second across the swarm regardless of response progress,
//!   the mode that surfaces queueing collapse.

use crate::proto::{self, Codec, Request, Response};
use fsmgen_obs::LatencyHistogram;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the swarm's requests split across message kinds, as integer
/// weights (a weight of zero disables the kind).
#[derive(Debug, Clone, Copy)]
pub struct TrafficMix {
    /// Weight of `design` requests.
    pub design: u32,
    /// Weight of `predict` requests (needs a server with redesign
    /// enabled; against a plain server these count as failures).
    pub predict: u32,
    /// Weight of `stats` requests.
    pub stats: u32,
    /// Weight of `ping` requests.
    pub ping: u32,
}

impl Default for TrafficMix {
    /// A design-heavy service mix with a trickle of stats polling.
    fn default() -> Self {
        TrafficMix {
            design: 8,
            predict: 0,
            stats: 1,
            ping: 1,
        }
    }
}

impl TrafficMix {
    fn total(&self) -> u32 {
        self.design + self.predict + self.stats + self.ping
    }
}

/// Everything that shapes one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7450`.
    pub addr: String,
    /// Concurrent connections in the swarm.
    pub connections: usize,
    /// Requests each connection issues before closing.
    pub requests_per_conn: usize,
    /// Outstanding requests a connection keeps in flight (closed loop).
    /// `1` degenerates to strict request/response ping-pong.
    pub pipeline: usize,
    /// The determinism root: per-connection streams derive from it.
    pub seed: u64,
    /// Wire codec for every connection.
    pub codec: Codec,
    /// Multiplexing driver threads the connections spread across.
    pub workers: usize,
    /// Request-kind weights.
    pub mix: TrafficMix,
    /// Size of the distinct-trace pool design requests draw from —
    /// smaller pools mean higher server cache hit rates.
    pub distinct_traces: usize,
    /// History depth for design requests.
    pub history: usize,
    /// Open-loop injection rate in requests/second across the whole
    /// swarm; `None` runs closed-loop.
    pub rate: Option<f64>,
    /// Whole-run deadline: connections still working past it are
    /// abandoned and counted in `LoadReport::aborted`.
    pub deadline: Duration,
}

impl Default for LoadgenConfig {
    /// A modest smoke-scale swarm against loopback.
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7450".into(),
            connections: 64,
            requests_per_conn: 32,
            pipeline: 8,
            seed: 0xF5E7,
            codec: Codec::JsonV1,
            workers: 4,
            mix: TrafficMix::default(),
            distinct_traces: 32,
            history: 2,
            rate: None,
            deadline: Duration::from_secs(60),
        }
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Connections that completed their full request budget.
    pub completed_conns: usize,
    /// Connections that failed to connect.
    pub connect_errors: usize,
    /// Connections abandoned at the deadline or on I/O errors.
    pub aborted: usize,
    /// Requests written to sockets.
    pub requests_sent: u64,
    /// OK responses (`pong`, `stats`, `design_ok`, `predict_ok`).
    pub responses_ok: u64,
    /// Structured failures (`design_error`, `rejected`,
    /// `protocol_error`) — the connection keeps going.
    pub responses_failed: u64,
    /// Wall-clock for the whole swarm.
    pub wall: Duration,
    /// Completed responses (ok + failed) per second of wall-clock.
    pub req_per_sec: f64,
    /// Response-latency percentiles, microseconds (send → response).
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
}

impl LoadReport {
    /// A stable JSON rendering (the shape `fsmgen loadgen` prints and
    /// CI's jq checks consume).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"completed_conns\": {}, \"connect_errors\": {}, \"aborted\": {}, ",
                "\"requests_sent\": {}, \"responses_ok\": {}, \"responses_failed\": {}, ",
                "\"wall_ms\": {:.3}, \"req_per_sec\": {:.1}, ",
                "\"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}}}"
            ),
            self.completed_conns,
            self.connect_errors,
            self.aborted,
            self.requests_sent,
            self.responses_ok,
            self.responses_failed,
            self.wall.as_secs_f64() * 1e3,
            self.req_per_sec,
            self.p50_us,
            self.p95_us,
            self.p99_us,
        )
    }
}

/// The same dependency-free xorshift64* the client's backoff uses.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// The `i`-th trace of the pool: a periodic bit pattern long enough to
/// design from, distinct per index (distinct fingerprints server-side).
#[must_use]
pub fn pool_trace(index: usize) -> String {
    let block = format!("{:06b}", (index * 7 + 9) % 64);
    let mut out = String::with_capacity(6 * 8);
    for _ in 0..8 {
        out.push_str(&block);
    }
    out
}

/// Draws the next request for connection `conn` from its seeded stream.
fn next_request(rng: &mut Xorshift, config: &LoadgenConfig, conn: usize, k: usize) -> Request {
    let id = (conn as u64) << 20 | k as u64;
    let mix = config.mix;
    let total = mix.total().max(1);
    let mut draw = rng.below(u64::from(total)) as u32;
    if draw < mix.design {
        let trace = pool_trace(rng.below(config.distinct_traces.max(1) as u64) as usize);
        return Request::Design {
            id,
            trace,
            history: config.history.max(1),
            threshold: None,
            dont_care: None,
        };
    }
    draw -= mix.design;
    if draw < mix.predict {
        let mut bits = String::with_capacity(32);
        for _ in 0..32 {
            bits.push(if rng.below(2) == 1 { '1' } else { '0' });
        }
        return Request::Predict { id, bits };
    }
    draw -= mix.predict;
    if draw < mix.stats {
        return Request::Stats;
    }
    Request::Ping
}

/// One swarm connection, multiplexed non-blockingly by a driver thread.
struct SwarmConn {
    stream: TcpStream,
    rng: Xorshift,
    index: usize,
    /// Requests generated so far (== next request ordinal).
    issued: usize,
    /// Responses fully received so far.
    answered: usize,
    /// Send instants of in-flight requests, FIFO (responses come back
    /// in request order — the pipelining contract).
    in_flight: VecDeque<Instant>,
    outbuf: Vec<u8>,
    sent: usize,
    inbuf: Vec<u8>,
    start: usize,
    /// Open loop only: when the next request may be injected.
    next_injection: Instant,
    dead: bool,
}

/// Shared tallies across driver threads.
#[derive(Default)]
struct Tallies {
    requests_sent: AtomicU64,
    responses_ok: AtomicU64,
    responses_failed: AtomicU64,
    aborted: AtomicU64,
    completed: AtomicU64,
}

fn classify(response: &Response) -> bool {
    matches!(
        response,
        Response::Pong
            | Response::Stats(_)
            | Response::ShutdownAck
            | Response::DesignOk { .. }
            | Response::PredictOk { .. }
    )
}

/// Drives one connection for one sweep. Returns true when it made
/// progress (moved bytes or finished).
fn sweep_conn(
    conn: &mut SwarmConn,
    config: &LoadgenConfig,
    tallies: &Tallies,
    latency: &LatencyHistogram,
    injection_gap: Option<Duration>,
    now: Instant,
) -> bool {
    let mut progress = false;
    // Inject new requests while the window (and, open-loop, the clock)
    // allows.
    while conn.issued < config.requests_per_conn
        && conn.in_flight.len() < config.pipeline.max(1)
        && injection_gap.is_none_or(|_| now >= conn.next_injection)
    {
        let request = next_request(&mut conn.rng, config, conn.index, conn.issued);
        let payload = request.encode_with(config.codec);
        let len: u32 = payload.len().try_into().unwrap_or(u32::MAX);
        conn.outbuf.extend_from_slice(&len.to_be_bytes());
        conn.outbuf.extend_from_slice(&payload);
        conn.issued += 1;
        conn.in_flight.push_back(Instant::now());
        tallies.requests_sent.fetch_add(1, Ordering::Relaxed);
        if let Some(gap) = injection_gap {
            conn.next_injection = conn.next_injection.max(now) + gap;
        }
        progress = true;
    }
    // Flush.
    while conn.sent < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.sent..]) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.sent += n;
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    if conn.sent == conn.outbuf.len() && conn.sent > 0 {
        conn.outbuf.clear();
        conn.sent = 0;
    }
    // Read.
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                progress = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    // Parse complete response frames.
    loop {
        let head = &conn.inbuf[conn.start..];
        if head.len() < 4 {
            break;
        }
        let mut prefix = [0u8; 4];
        prefix.copy_from_slice(&head[..4]);
        let advertised = u32::from_be_bytes(prefix) as usize;
        if head.len() < 4 + advertised {
            break;
        }
        let payload = head[4..4 + advertised].to_vec();
        conn.start += 4 + advertised;
        if let Some(sent_at) = conn.in_flight.pop_front() {
            latency.record(sent_at.elapsed());
        }
        conn.answered += 1;
        match Response::decode_with(config.codec, &payload) {
            Ok(response) if classify(&response) => {
                tallies.responses_ok.fetch_add(1, Ordering::Relaxed);
            }
            Ok(_) | Err(_) => {
                tallies.responses_failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        progress = true;
    }
    if conn.start == conn.inbuf.len() && conn.start > 0 {
        conn.inbuf.clear();
        conn.start = 0;
    }
    if conn.answered >= config.requests_per_conn {
        tallies.completed.fetch_add(1, Ordering::Relaxed);
        conn.dead = true;
        progress = true;
    }
    progress
}

/// Runs the swarm to completion (or the deadline) and reports.
///
/// Connections that cannot be established are counted, not fatal: a
/// server at its `max_connections` bound turns the surplus away and the
/// report shows exactly how many.
#[must_use]
pub fn run_loadgen(config: &LoadgenConfig) -> LoadReport {
    let started = Instant::now();
    let tallies = Arc::new(Tallies::default());
    let latency = Arc::new(LatencyHistogram::new());
    let connect_errors = Arc::new(AtomicU64::new(0));
    let workers = config.workers.clamp(1, config.connections.max(1));
    // Open loop: one global rate split evenly across connections.
    let injection_gap = config.rate.map(|r| {
        let per_conn = (r / config.connections.max(1) as f64).max(1e-3);
        Duration::from_secs_f64(1.0 / per_conn)
    });
    let mut threads = Vec::new();
    for worker in 0..workers {
        let config = config.clone();
        let tallies = Arc::clone(&tallies);
        let latency = Arc::clone(&latency);
        let connect_errors = Arc::clone(&connect_errors);
        threads.push(std::thread::spawn(move || {
            // This worker owns connections worker, worker+W, worker+2W, …
            let mut conns: Vec<SwarmConn> = Vec::new();
            let mut index = worker;
            while index < config.connections {
                match TcpStream::connect(&config.addr) {
                    Ok(stream) => {
                        let mut preamble_ok = true;
                        if config.codec == Codec::BinaryV2 {
                            preamble_ok = stream
                                .set_nodelay(true)
                                .and_then(|()| (&stream).write_all(&proto::binary_preamble()))
                                .is_ok();
                        }
                        if preamble_ok && stream.set_nonblocking(true).is_ok() {
                            conns.push(SwarmConn {
                                stream,
                                rng: Xorshift::new(config.seed ^ (index as u64) << 1),
                                index,
                                issued: 0,
                                answered: 0,
                                in_flight: VecDeque::new(),
                                outbuf: Vec::new(),
                                sent: 0,
                                inbuf: Vec::new(),
                                start: 0,
                                next_injection: Instant::now(),
                                dead: false,
                            });
                        } else {
                            connect_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Err(_) => {
                        connect_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                index += workers;
            }
            let deadline = started + config.deadline;
            while !conns.is_empty() {
                let now = Instant::now();
                if now > deadline {
                    tallies
                        .aborted
                        .fetch_add(conns.len() as u64, Ordering::Relaxed);
                    break;
                }
                let mut progress = false;
                let mut i = 0;
                while i < conns.len() {
                    let done = {
                        let conn = &mut conns[i];
                        progress |=
                            sweep_conn(conn, &config, &tallies, &latency, injection_gap, now);
                        conn.dead
                    };
                    if done {
                        // An unfinished dead connection is an abort.
                        if conns[i].answered < config.requests_per_conn {
                            tallies.aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        conns.swap_remove(i);
                    } else {
                        i += 1;
                    }
                }
                if !progress {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }));
    }
    for thread in threads {
        let _joined = thread.join();
    }
    let wall = started.elapsed();
    let answered = tallies.responses_ok.load(Ordering::Relaxed)
        + tallies.responses_failed.load(Ordering::Relaxed);
    LoadReport {
        completed_conns: tallies.completed.load(Ordering::Relaxed) as usize,
        connect_errors: connect_errors.load(Ordering::Relaxed) as usize,
        aborted: tallies.aborted.load(Ordering::Relaxed) as usize,
        requests_sent: tallies.requests_sent.load(Ordering::Relaxed),
        responses_ok: tallies.responses_ok.load(Ordering::Relaxed),
        responses_failed: tallies.responses_failed.load(Ordering::Relaxed),
        wall,
        req_per_sec: answered as f64 / wall.as_secs_f64().max(1e-9),
        p50_us: latency.quantile_us(0.50),
        p95_us: latency.quantile_us(0.95),
        p99_us: latency.quantile_us(0.99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_streams_are_deterministic_per_seed() {
        let config = LoadgenConfig::default();
        let a: Vec<Request> = {
            let mut rng = Xorshift::new(config.seed ^ 42 << 1);
            (0..32)
                .map(|k| next_request(&mut rng, &config, 42, k))
                .collect()
        };
        let b: Vec<Request> = {
            let mut rng = Xorshift::new(config.seed ^ 42 << 1);
            (0..32)
                .map(|k| next_request(&mut rng, &config, 42, k))
                .collect()
        };
        assert_eq!(a, b, "same seed must replay the same request stream");
        let c: Vec<Request> = {
            let mut rng = Xorshift::new((config.seed + 1) ^ 42 << 1);
            (0..32)
                .map(|k| next_request(&mut rng, &config, 42, k))
                .collect()
        };
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn pool_traces_are_distinct_and_parseable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..32 {
            let trace = pool_trace(i);
            let parsed: fsmgen_traces::BitTrace = trace.parse().unwrap();
            assert!(parsed.len() >= 16);
            seen.insert(trace);
        }
        assert!(seen.len() >= 16, "pool must offer real variety");
    }

    #[test]
    fn mix_weights_shape_the_stream() {
        let config = LoadgenConfig {
            mix: TrafficMix {
                design: 0,
                predict: 0,
                stats: 0,
                ping: 1,
            },
            ..LoadgenConfig::default()
        };
        let mut rng = Xorshift::new(7);
        for k in 0..16 {
            assert_eq!(next_request(&mut rng, &config, 0, k), Request::Ping);
        }
    }
}
