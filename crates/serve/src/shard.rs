//! One shard of the event-driven server: a non-blocking poll loop
//! multiplexing many connections on a single thread.
//!
//! The accept loop hands sockets over an mpsc channel; the shard owns
//! them outright from then on. Each sweep flushes pending writes, reads
//! whatever every connection has sent, parses **all** complete frames
//! (pipelining: a client may send many requests before reading a single
//! response), answers them in request order into one output buffer, and
//! writes that buffer back in bulk. A connection that makes no progress
//! for the configured read timeout is closed with a `protocol_error`
//! without disturbing the shard's other connections — the slow-loris
//! guard, event-loop edition.
//!
//! Codec negotiation is in-buffer: the first four bytes either spell
//! the binary magic (then four more carry the version) or are a JSON
//! length prefix. The rules — and every error reply — mirror the
//! threaded handler bit for bit, which is what lets the differential
//! tests referee the two architectures against each other.

use crate::proto::{self, Codec, Request, Response};
use crate::server::{handle_request, signal_shutdown, Handled, Shared};
use fsmgen::failpoints;
use fsmgen_obs as obs;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How long the loop sleeps when a full sweep moved no bytes.
const IDLE_SLEEP: Duration = Duration::from_micros(300);

/// Per-sweep read chunk.
const READ_CHUNK: usize = 16 * 1024;

/// One multiplexed connection.
struct Conn {
    stream: TcpStream,
    /// Negotiated on the first bytes, then fixed for the connection.
    codec: Option<Codec>,
    /// Bytes read but not yet parsed; `start` is the parse cursor.
    inbuf: Vec<u8>,
    start: usize,
    /// Encoded responses awaiting the socket; `sent` is the write cursor.
    outbuf: Vec<u8>,
    sent: usize,
    /// Last time this connection moved bytes in either direction.
    last_progress: Instant,
    /// Close once `outbuf` has drained; stop reading immediately.
    closing: bool,
    /// The peer closed its half; parse what is buffered, then close.
    peer_eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            codec: None,
            inbuf: Vec::new(),
            start: 0,
            outbuf: Vec::new(),
            sent: 0,
            last_progress: Instant::now(),
            closing: false,
            peer_eof: false,
        }
    }

    /// Unparsed buffered bytes.
    fn pending(&self) -> &[u8] {
        &self.inbuf[self.start..]
    }

    fn consume(&mut self, n: usize) {
        self.start += n;
        // Reclaim the buffer once everything buffered has been parsed
        // (the common case between pipelined bursts).
        if self.start == self.inbuf.len() {
            self.inbuf.clear();
            self.start = 0;
        }
    }

    /// Queues one response frame in this connection's codec.
    fn push_response(&mut self, response: &Response) {
        let codec = self.codec.unwrap_or_default();
        let payload = response.encode_with(codec);
        let len: u32 = payload.len().try_into().unwrap_or(u32::MAX);
        self.outbuf.extend_from_slice(&len.to_be_bytes());
        self.outbuf.extend_from_slice(&payload);
    }
}

/// What [`parse_frame`] found at the head of a connection's buffer.
enum Parsed {
    /// One complete frame payload (the codec is resolved by now).
    Frame(Vec<u8>),
    /// Not enough bytes yet; wait for more.
    Incomplete,
    /// Unrecoverable framing fault: reply `error`, then close.
    Fatal { error: String, oversized: bool },
}

/// Pulls the next frame out of `conn`'s input buffer, negotiating the
/// codec on the connection's very first bytes. Mirrors the threaded
/// path's `read_negotiated_frame` exactly.
fn parse_frame(conn: &mut Conn, max_frame: usize) -> Parsed {
    if conn.codec.is_none() {
        let head = conn.pending();
        if head.len() < 4 {
            return Parsed::Incomplete;
        }
        if head[..4] == proto::BINARY_MAGIC {
            if head.len() < proto::BINARY_PREAMBLE_LEN {
                return Parsed::Incomplete;
            }
            let mut version_bytes = [0u8; 4];
            version_bytes.copy_from_slice(&head[4..8]);
            let version = u32::from_be_bytes(version_bytes);
            conn.codec = Some(Codec::BinaryV2);
            conn.consume(proto::BINARY_PREAMBLE_LEN);
            if version != proto::PROTOCOL_VERSION {
                return Parsed::Fatal {
                    error: format!(
                        "unsupported binary protocol version {version} (this server speaks {})",
                        proto::PROTOCOL_VERSION
                    ),
                    oversized: false,
                };
            }
        } else {
            // Anything else is a JSON v1 length prefix: leave it in the
            // buffer for the framing step below.
            conn.codec = Some(Codec::JsonV1);
        }
    }
    let head = conn.pending();
    if head.len() < 4 {
        return Parsed::Incomplete;
    }
    let mut prefix = [0u8; 4];
    prefix.copy_from_slice(&head[..4]);
    let advertised = u32::from_be_bytes(prefix) as usize;
    if advertised > max_frame {
        return Parsed::Fatal {
            error: format!("frame of {advertised} bytes exceeds the {max_frame}-byte limit"),
            oversized: true,
        };
    }
    if head.len() < 4 + advertised {
        return Parsed::Incomplete;
    }
    let payload = head[4..4 + advertised].to_vec();
    conn.consume(4 + advertised);
    Parsed::Frame(payload)
}

/// Flushes as much of `conn.outbuf` as the socket will take right now.
/// Returns bytes written, or `None` when the connection is dead.
fn flush_writes(conn: &mut Conn) -> Option<usize> {
    let mut wrote = 0;
    while conn.sent < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.sent..]) {
            Ok(0) => return None,
            Ok(n) => {
                conn.sent += n;
                wrote += n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    if conn.sent == conn.outbuf.len() && conn.sent > 0 {
        conn.outbuf.clear();
        conn.sent = 0;
    }
    Some(wrote)
}

/// Reads whatever the socket has ready. Returns bytes read, or `None`
/// when the connection errored out.
fn drain_reads(conn: &mut Conn) -> Option<usize> {
    let mut read = 0;
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.peer_eof = true;
                break;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                read += n;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return None,
        }
    }
    Some(read)
}

/// Parses and answers every complete frame buffered on `conn`. Returns
/// false when the connection hit a fatal fault (already queued a reply
/// and flagged `closing`).
fn service_frames(shared: &Arc<Shared>, index: usize, addr: SocketAddr, conn: &mut Conn) -> bool {
    let max_frame = shared.config.max_frame_bytes;
    loop {
        match parse_frame(conn, max_frame) {
            Parsed::Incomplete => return true,
            Parsed::Fatal { error, oversized } => {
                let counter = if oversized {
                    shared
                        .metrics
                        .oversized_frames
                        .fetch_add(1, Ordering::Relaxed);
                    "oversized_frame"
                } else {
                    shared
                        .metrics
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                    "malformed_frame"
                };
                obs::counter("serve", counter, 1);
                conn.push_response(&Response::ProtocolError { error });
                conn.closing = true;
                return false;
            }
            Parsed::Frame(payload) => {
                let codec = conn.codec.unwrap_or_default();
                let _request_span = obs::span("serve_request");
                let request_started = Instant::now();
                let request = {
                    let _parse_span = obs::span("serve_parse");
                    Request::decode_with(codec, &payload)
                };
                let request = match request {
                    Ok(request) => request,
                    Err(reason) => {
                        shared
                            .metrics
                            .malformed_frames
                            .fetch_add(1, Ordering::Relaxed);
                        obs::counter("serve", "malformed_frame", 1);
                        // Well-delimited frame, bad contents: the stream
                        // is still in sync, so reply and keep serving.
                        conn.push_response(&Response::ProtocolError { error: reason });
                        continue;
                    }
                };
                match handle_request(shared, Some(index), request) {
                    Handled::Reply(response) => conn.push_response(&response),
                    Handled::Shutdown => {
                        conn.push_response(&Response::ShutdownAck);
                        conn.closing = true;
                        signal_shutdown(shared, addr);
                        return false;
                    }
                }
                shared
                    .metrics
                    .request_latency
                    .record(request_started.elapsed());
            }
        }
    }
}

/// Registers a freshly accepted socket with this shard's connection set.
/// Returns `None` when the connection was refused (fault injection or a
/// socket that cannot be made non-blocking) — the caller un-counts it.
fn register(shared: &Arc<Shared>, index: usize, stream: TcpStream) -> Option<Conn> {
    shared
        .metrics
        .conns_accepted
        .fetch_add(1, Ordering::Relaxed);
    obs::counter("serve", "conn_accepted", 1);
    if let Some(metrics) = shared.metrics.shard(index) {
        metrics.conns.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(action) = failpoints::fire("serve-conn") {
        // Injected connection fault: modelled as an I/O-layer failure,
        // so the connection is dropped without a reply.
        let _ = action;
        shared
            .metrics
            .injected_faults
            .fetch_add(1, Ordering::Relaxed);
        obs::counter("serve", "conn_fault_injected", 1);
        return None;
    }
    if stream.set_nonblocking(true).is_err() {
        return None;
    }
    Some(Conn::new(stream))
}

/// The shard thread body: own every connection handed over `rx` until
/// shutdown, multiplexing them through one poll loop.
pub(crate) fn run_shard(
    shared: &Arc<Shared>,
    index: usize,
    rx: &mpsc::Receiver<TcpStream>,
    addr: SocketAddr,
) {
    let _shard_span = obs::span("serve_shard");
    let timeout = shared.config.read_timeout;
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        let mut progress = false;

        // Adopt newly accepted sockets. The accept loop already counted
        // them in active_conns; refusals must un-count.
        while let Ok(stream) = rx.try_recv() {
            progress = true;
            if shutting_down {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            match register(shared, index, stream) {
                Some(conn) => conns.push(conn),
                None => {
                    shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }

        // Sweep every connection: flush, read, answer, flush again.
        let mut i = 0;
        while i < conns.len() {
            let mut dead = false;
            {
                let conn = &mut conns[i];
                match flush_writes(conn) {
                    None => dead = true,
                    Some(n) if n > 0 => {
                        progress = true;
                        conn.last_progress = Instant::now();
                    }
                    Some(_) => {}
                }
                if !dead && !conn.closing {
                    match drain_reads(conn) {
                        None => dead = true,
                        Some(n) if n > 0 => {
                            progress = true;
                            conn.last_progress = Instant::now();
                        }
                        Some(_) => {}
                    }
                    if !dead {
                        service_frames(shared, index, addr, conn);
                        if conn.peer_eof && !conn.closing {
                            // Half-closed peers may still want queued
                            // responses; close once they are out.
                            conn.closing = true;
                        }
                        match flush_writes(conn) {
                            None => dead = true,
                            Some(n) if n > 0 => {
                                progress = true;
                                conn.last_progress = Instant::now();
                            }
                            Some(_) => {}
                        }
                    }
                }
                if !dead && conn.closing && conn.sent >= conn.outbuf.len() {
                    dead = true;
                }
                if !dead && !conn.closing && conn.last_progress.elapsed() > timeout {
                    // The slow-loris guard: a stalled connection is told
                    // off and closed; the shard's other connections are
                    // untouched.
                    shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
                    obs::counter("serve", "read_timeout", 1);
                    conn.push_response(&Response::ProtocolError {
                        error: "read timed out".into(),
                    });
                    conn.closing = true;
                    let _best_effort = flush_writes(conn);
                    dead = true;
                }
            }
            if dead {
                conns.swap_remove(i);
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
                progress = true;
            } else {
                i += 1;
            }
        }

        if shutting_down {
            // Final best-effort flush, then release every connection so
            // the server's drain sees active_conns reach zero.
            for conn in &mut conns {
                let _best_effort = flush_writes(conn);
            }
            let remaining = conns.len();
            conns.clear();
            for _ in 0..remaining {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }
            // Un-count anything still queued on the channel.
            while rx.try_recv().is_ok() {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
