//! Service-level metrics: lock-free counters covering every request and
//! rejection path, a per-request latency histogram, and the durable
//! store's accounting, rendered as schema-v1 JSON alongside the farm's
//! own [`fsmgen_farm::FarmMetrics`].

use fsmgen_farm::{CacheStats, StoreStats};
use fsmgen_obs::LatencyHistogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Atomic counters for the service front-end. One instance is shared by
/// the accept loop and every connection thread; tests read it through
/// [`ServeMetrics::snapshot`] to assert observability and monotonicity.
#[derive(Debug)]
pub struct ServeMetrics {
    /// When this metrics block (i.e. this server process) came up; feeds
    /// the `uptime_ms` field that lets pollers detect restarts.
    started: Instant,
    /// Render counter behind the `seq` field: bumped on every
    /// [`to_json`](Self::to_json), so each stats response a poller sees
    /// carries a strictly increasing value — until the process restarts
    /// and it rewinds to zero, which is exactly the signal `fsmgen top`
    /// keys restart detection on.
    stats_seq: AtomicU64,
    /// Connections accepted into a handler thread.
    pub conns_accepted: AtomicU64,
    /// Connections turned away because the connection limit was reached.
    pub conns_rejected: AtomicU64,
    /// Connections dropped by an injected `serve-conn` failpoint fault.
    pub injected_faults: AtomicU64,
    /// Requests answered with a successful design.
    pub requests_ok: AtomicU64,
    /// Requests answered with a design error.
    pub requests_failed: AtomicU64,
    /// Requests rejected with retry-after because the farm was saturated.
    pub rejected_backpressure: AtomicU64,
    /// Reads that hit the per-request timeout (slow-loris guard).
    pub timeouts: AtomicU64,
    /// Frames whose payload could not be parsed as a valid request.
    pub malformed_frames: AtomicU64,
    /// Frames whose length prefix exceeded the frame bound.
    pub oversized_frames: AtomicU64,
    /// Ping requests answered.
    pub pings: AtomicU64,
    /// Stats requests answered.
    pub stats_requests: AtomicU64,
    /// Predict requests answered by the live predictor.
    pub predict_requests: AtomicU64,
    /// Outcome bits streamed through the live predictor.
    pub predict_bits: AtomicU64,
    /// Bits the live predictor got right.
    pub predict_hits: AtomicU64,
    /// Collapse-triggered redesigns started.
    pub redesigns_triggered: AtomicU64,
    /// Redesigned machines hot-swapped into the live slot.
    pub predictor_swaps: AtomicU64,
    /// Current live-predictor machine generation (gauge, not a counter:
    /// 0 = boot machine; mirrors the slot so stats pollers see swaps).
    pub predictor_generation: AtomicU64,
    /// Wall time per well-formed request, from frame decode to the
    /// response hitting the socket. Feeds the `latency_us` p50/p95/p99
    /// block of the JSON document.
    pub request_latency: LatencyHistogram,
    /// Per-shard counters (event-driven mode); empty in threaded mode.
    /// Each shard's counters sum into the totals above — `shards[i]`
    /// only ever splits traffic, never double-counts it.
    pub shards: Vec<ShardMetrics>,
}

/// Counters for one event-loop shard. Every field is also counted into
/// the global [`ServeMetrics`] totals; this block records *which shard*
/// carried the traffic, so load balance is observable.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Connections registered to this shard's event loop.
    pub conns: AtomicU64,
    /// Well-formed frames this shard answered (any request kind).
    pub frames: AtomicU64,
    /// Design requests answered OK on this shard.
    pub requests_ok: AtomicU64,
    /// Design requests answered with an error on this shard.
    pub requests_failed: AtomicU64,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics {
            started: Instant::now(),
            stats_seq: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            injected_faults: AtomicU64::new(0),
            requests_ok: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            rejected_backpressure: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            oversized_frames: AtomicU64::new(0),
            pings: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            predict_requests: AtomicU64::new(0),
            predict_bits: AtomicU64::new(0),
            predict_hits: AtomicU64::new(0),
            redesigns_triggered: AtomicU64::new(0),
            predictor_swaps: AtomicU64::new(0),
            predictor_generation: AtomicU64::new(0),
            request_latency: LatencyHistogram::new(),
            shards: Vec::new(),
        }
    }
}

/// A plain-integer copy of [`ServeMetrics`] at one instant, used by the
/// soak test to assert that every counter is monotone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeMetricsSnapshot {
    /// See [`ServeMetrics::conns_accepted`].
    pub conns_accepted: u64,
    /// See [`ServeMetrics::conns_rejected`].
    pub conns_rejected: u64,
    /// See [`ServeMetrics::injected_faults`].
    pub injected_faults: u64,
    /// See [`ServeMetrics::requests_ok`].
    pub requests_ok: u64,
    /// See [`ServeMetrics::requests_failed`].
    pub requests_failed: u64,
    /// See [`ServeMetrics::rejected_backpressure`].
    pub rejected_backpressure: u64,
    /// See [`ServeMetrics::timeouts`].
    pub timeouts: u64,
    /// See [`ServeMetrics::malformed_frames`].
    pub malformed_frames: u64,
    /// See [`ServeMetrics::oversized_frames`].
    pub oversized_frames: u64,
    /// See [`ServeMetrics::pings`].
    pub pings: u64,
    /// See [`ServeMetrics::stats_requests`].
    pub stats_requests: u64,
    /// See [`ServeMetrics::predict_requests`].
    pub predict_requests: u64,
    /// See [`ServeMetrics::predict_bits`].
    pub predict_bits: u64,
    /// See [`ServeMetrics::predict_hits`].
    pub predict_hits: u64,
    /// See [`ServeMetrics::redesigns_triggered`].
    pub redesigns_triggered: u64,
    /// See [`ServeMetrics::predictor_swaps`].
    pub predictor_swaps: u64,
    /// See [`ServeMetrics::predictor_generation`] (a gauge, but it only
    /// ever increases within one process lifetime).
    pub predictor_generation: u64,
}

impl ServeMetricsSnapshot {
    /// True when every counter in `self` is `>=` its counterpart in
    /// `earlier` — the invariant the soak test holds across samples.
    #[must_use]
    pub fn is_monotone_since(&self, earlier: &ServeMetricsSnapshot) -> bool {
        self.conns_accepted >= earlier.conns_accepted
            && self.conns_rejected >= earlier.conns_rejected
            && self.injected_faults >= earlier.injected_faults
            && self.requests_ok >= earlier.requests_ok
            && self.requests_failed >= earlier.requests_failed
            && self.rejected_backpressure >= earlier.rejected_backpressure
            && self.timeouts >= earlier.timeouts
            && self.malformed_frames >= earlier.malformed_frames
            && self.oversized_frames >= earlier.oversized_frames
            && self.pings >= earlier.pings
            && self.stats_requests >= earlier.stats_requests
            && self.predict_requests >= earlier.predict_requests
            && self.predict_bits >= earlier.predict_bits
            && self.predict_hits >= earlier.predict_hits
            && self.redesigns_triggered >= earlier.redesigns_triggered
            && self.predictor_swaps >= earlier.predictor_swaps
            && self.predictor_generation >= earlier.predictor_generation
    }
}

impl ServeMetrics {
    /// Creates a zeroed metrics block.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a zeroed metrics block with `shards` per-shard counter
    /// groups (0 for the threaded single-lock server).
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        ServeMetrics {
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
            ..Self::default()
        }
    }

    /// The counters for shard `idx`, when it exists.
    #[must_use]
    pub fn shard(&self, idx: usize) -> Option<&ShardMetrics> {
        self.shards.get(idx)
    }

    /// Takes a consistent-enough point-in-time copy (each counter is read
    /// atomically; the set is not a single atomic snapshot, which is fine
    /// for monotonicity checks).
    #[must_use]
    pub fn snapshot(&self) -> ServeMetricsSnapshot {
        ServeMetricsSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.conns_rejected.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            requests_ok: self.requests_ok.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            rejected_backpressure: self.rejected_backpressure.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            pings: self.pings.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            predict_requests: self.predict_requests.load(Ordering::Relaxed),
            predict_bits: self.predict_bits.load(Ordering::Relaxed),
            predict_hits: self.predict_hits.load(Ordering::Relaxed),
            redesigns_triggered: self.redesigns_triggered.load(Ordering::Relaxed),
            predictor_swaps: self.predictor_swaps.load(Ordering::Relaxed),
            predictor_generation: self.predictor_generation.load(Ordering::Relaxed),
        }
    }

    /// Milliseconds since this metrics block came up.
    #[must_use]
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Renders the metrics as a schema-v1 JSON object
    /// (`"kind": "serve_metrics"`), embedding the farm cache statistics
    /// and the durable store's accounting so one document describes the
    /// whole service. Pass `StoreStats::default()` when no store is
    /// attached — the zeroed block keeps the schema stable.
    ///
    /// Each render also emits `uptime_ms` (wall time since process
    /// start) and a monotone `seq` (bumped per render); both rewind on
    /// restart, which is how pollers distinguish "counters went
    /// backwards because the server restarted" from corruption. Clients
    /// must tolerate their absence (older servers).
    #[must_use]
    pub fn to_json(&self, cache: &CacheStats, store: &StoreStats) -> String {
        let s = self.snapshot();
        let lat = self.request_latency.snapshot();
        let seq = self.stats_seq.fetch_add(1, Ordering::Relaxed);
        let mut out = String::with_capacity(768);
        out.push_str("{\n");
        out.push_str(&format!("  \"version\": {},\n", fsmgen_obs::SCHEMA_VERSION));
        out.push_str("  \"kind\": \"serve_metrics\",\n");
        out.push_str(&format!("  \"uptime_ms\": {},\n", self.uptime_ms()));
        out.push_str(&format!("  \"seq\": {seq},\n"));
        out.push_str(&format!("  \"conns_accepted\": {},\n", s.conns_accepted));
        out.push_str(&format!("  \"conns_rejected\": {},\n", s.conns_rejected));
        out.push_str(&format!("  \"injected_faults\": {},\n", s.injected_faults));
        out.push_str(&format!("  \"requests_ok\": {},\n", s.requests_ok));
        out.push_str(&format!("  \"requests_failed\": {},\n", s.requests_failed));
        out.push_str(&format!(
            "  \"rejected_backpressure\": {},\n",
            s.rejected_backpressure
        ));
        out.push_str(&format!("  \"timeouts\": {},\n", s.timeouts));
        out.push_str(&format!(
            "  \"malformed_frames\": {},\n",
            s.malformed_frames
        ));
        out.push_str(&format!(
            "  \"oversized_frames\": {},\n",
            s.oversized_frames
        ));
        out.push_str(&format!("  \"pings\": {},\n", s.pings));
        out.push_str(&format!("  \"stats_requests\": {},\n", s.stats_requests));
        out.push_str("  \"shards\": [");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"shard\": {i}, \"conns\": {}, \"frames\": {}, \
                 \"requests_ok\": {}, \"requests_failed\": {}}}",
                shard.conns.load(Ordering::Relaxed),
                shard.frames.load(Ordering::Relaxed),
                shard.requests_ok.load(Ordering::Relaxed),
                shard.requests_failed.load(Ordering::Relaxed),
            ));
        }
        if self.shards.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str("  \"predictor\": {\n");
        out.push_str(&format!(
            "    \"predict_requests\": {},\n",
            s.predict_requests
        ));
        out.push_str(&format!("    \"predict_bits\": {},\n", s.predict_bits));
        out.push_str(&format!("    \"predict_hits\": {},\n", s.predict_hits));
        out.push_str(&format!(
            "    \"redesigns_triggered\": {},\n",
            s.redesigns_triggered
        ));
        out.push_str(&format!("    \"swaps\": {},\n", s.predictor_swaps));
        out.push_str(&format!("    \"generation\": {}\n", s.predictor_generation));
        out.push_str("  },\n");
        out.push_str("  \"latency_us\": {\n");
        out.push_str(&format!("    \"count\": {},\n", lat.count()));
        out.push_str(&format!("    \"p50\": {},\n", lat.quantile_us(0.50)));
        out.push_str(&format!("    \"p95\": {},\n", lat.quantile_us(0.95)));
        out.push_str(&format!("    \"p99\": {}\n", lat.quantile_us(0.99)));
        out.push_str("  },\n");
        out.push_str("  \"store\": {\n");
        out.push_str(&format!("    \"appends\": {},\n", store.appends));
        out.push_str(&format!("    \"flushes\": {},\n", store.flushes));
        out.push_str(&format!("    \"recovered\": {},\n", store.recovered));
        out.push_str(&format!("    \"skipped\": {},\n", store.skipped));
        out.push_str(&format!("    \"truncated\": {},\n", store.truncated));
        out.push_str(&format!("    \"compacted\": {},\n", store.compacted));
        out.push_str(&format!("    \"migrated\": {}\n", store.migrated));
        out.push_str("  },\n");
        out.push_str("  \"cache\": {\n");
        out.push_str(&format!("    \"hits\": {},\n", cache.hits));
        out.push_str(&format!(
            "    \"snapshot_hits\": {},\n",
            cache.snapshot_hits
        ));
        out.push_str(&format!("    \"misses\": {},\n", cache.misses));
        out.push_str(&format!("    \"insertions\": {},\n", cache.insertions));
        out.push_str(&format!("    \"evictions\": {},\n", cache.evictions));
        out.push_str(&format!("    \"stale\": {},\n", cache.stale));
        out.push_str(&format!("    \"compiled\": {}\n", cache.compiled));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn json_is_parseable_and_versioned() {
        let metrics = ServeMetrics::new();
        metrics.requests_ok.fetch_add(3, Ordering::Relaxed);
        metrics.malformed_frames.fetch_add(1, Ordering::Relaxed);
        metrics
            .request_latency
            .record(std::time::Duration::from_micros(100));
        let cache = CacheStats {
            hits: 5,
            misses: 2,
            ..CacheStats::default()
        };
        let store = StoreStats {
            appends: 7,
            truncated: 1,
            ..StoreStats::default()
        };
        let text = metrics.to_json(&cache, &store);
        let value = json::parse(&text).expect("serve metrics must be valid JSON");
        assert_eq!(value.get("version").and_then(json::Json::as_u64), Some(1));
        assert_eq!(
            value.get("kind").and_then(json::Json::as_str),
            Some("serve_metrics")
        );
        assert_eq!(
            value.get("requests_ok").and_then(json::Json::as_u64),
            Some(3)
        );
        assert_eq!(
            value
                .get("cache")
                .and_then(|c| c.get("hits"))
                .and_then(json::Json::as_u64),
            Some(5)
        );
        assert!(
            value
                .get("uptime_ms")
                .and_then(json::Json::as_u64)
                .is_some(),
            "uptime_ms present"
        );
        assert_eq!(value.get("seq").and_then(json::Json::as_u64), Some(0));
        let again = metrics.to_json(&cache, &store);
        let again = json::parse(&again).expect("second render parses");
        assert_eq!(
            again.get("seq").and_then(json::Json::as_u64),
            Some(1),
            "seq is monotone across renders"
        );
        let lat = value.get("latency_us").expect("latency_us block");
        assert_eq!(lat.get("count").and_then(json::Json::as_u64), Some(1));
        assert_eq!(lat.get("p50").and_then(json::Json::as_u64), Some(127));
        let st = value.get("store").expect("store block");
        assert_eq!(st.get("appends").and_then(json::Json::as_u64), Some(7));
        assert_eq!(st.get("truncated").and_then(json::Json::as_u64), Some(1));
        assert_eq!(st.get("compacted").and_then(json::Json::as_u64), Some(0));
    }

    #[test]
    fn detached_store_renders_a_zeroed_block() {
        let metrics = ServeMetrics::new();
        let text = metrics.to_json(&CacheStats::default(), &StoreStats::default());
        let value = json::parse(&text).expect("valid JSON");
        let st = value
            .get("store")
            .expect("store block present without a store");
        for key in [
            "appends",
            "flushes",
            "recovered",
            "skipped",
            "truncated",
            "compacted",
            "migrated",
        ] {
            assert_eq!(st.get(key).and_then(json::Json::as_u64), Some(0), "{key}");
        }
    }

    #[test]
    fn predictor_block_is_rendered_and_parseable() {
        let metrics = ServeMetrics::new();
        metrics.predict_requests.fetch_add(4, Ordering::Relaxed);
        metrics.predict_bits.fetch_add(1024, Ordering::Relaxed);
        metrics.predict_hits.fetch_add(800, Ordering::Relaxed);
        metrics.redesigns_triggered.fetch_add(1, Ordering::Relaxed);
        metrics.predictor_swaps.fetch_add(1, Ordering::Relaxed);
        metrics.predictor_generation.store(1, Ordering::Relaxed);
        let text = metrics.to_json(&CacheStats::default(), &StoreStats::default());
        let value = json::parse(&text).expect("valid JSON");
        let p = value.get("predictor").expect("predictor block");
        assert_eq!(
            p.get("predict_requests").and_then(json::Json::as_u64),
            Some(4)
        );
        assert_eq!(
            p.get("predict_bits").and_then(json::Json::as_u64),
            Some(1024)
        );
        assert_eq!(
            p.get("predict_hits").and_then(json::Json::as_u64),
            Some(800)
        );
        assert_eq!(
            p.get("redesigns_triggered").and_then(json::Json::as_u64),
            Some(1)
        );
        assert_eq!(p.get("swaps").and_then(json::Json::as_u64), Some(1));
        assert_eq!(p.get("generation").and_then(json::Json::as_u64), Some(1));
    }

    #[test]
    fn shards_block_renders_and_sums() {
        let metrics = ServeMetrics::with_shards(3);
        for (i, shard) in metrics.shards.iter().enumerate() {
            shard.conns.fetch_add(i as u64 + 1, Ordering::Relaxed);
            shard
                .frames
                .fetch_add(10 * (i as u64 + 1), Ordering::Relaxed);
            shard.requests_ok.fetch_add(i as u64, Ordering::Relaxed);
        }
        let text = metrics.to_json(&CacheStats::default(), &StoreStats::default());
        let value = json::parse(&text).expect("valid JSON with shards");
        let shards = value.get("shards").and_then(json::Json::as_array).unwrap();
        assert_eq!(shards.len(), 3);
        let conns: u64 = shards
            .iter()
            .map(|s| s.get("conns").and_then(json::Json::as_u64).unwrap())
            .sum();
        assert_eq!(conns, 1 + 2 + 3);
        assert_eq!(
            shards[2].get("frames").and_then(json::Json::as_u64),
            Some(30)
        );
        // Threaded mode renders an empty array and still parses.
        let threaded = ServeMetrics::new().to_json(&CacheStats::default(), &StoreStats::default());
        let value = json::parse(&threaded).expect("valid JSON without shards");
        assert_eq!(
            value
                .get("shards")
                .and_then(json::Json::as_array)
                .map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn monotonicity_check_detects_regressions() {
        let metrics = ServeMetrics::new();
        let before = metrics.snapshot();
        metrics.conns_accepted.fetch_add(1, Ordering::Relaxed);
        let after = metrics.snapshot();
        assert!(after.is_monotone_since(&before));
        assert!(!before.is_monotone_since(&after));
    }
}
