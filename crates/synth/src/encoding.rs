//! State encodings for synthesized Moore machines.
//!
//! "The job of synthesis is to find an efficient hardware implementation
//! for the state machine. This includes finding a good encoding for the
//! states and their transitions" (§4.8). Three classic encodings are
//! provided; their area impact is one of the ablation studies.

use serde::{Deserialize, Serialize};

/// How state registers encode the state number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Encoding {
    /// Dense binary encoding: `ceil(log2 S)` flip-flops.
    #[default]
    Binary,
    /// Gray-code encoding: same register count as binary, adjacent codes
    /// differ in one bit (often cheaper transition logic for counter-like
    /// machines).
    Gray,
    /// One-hot encoding: `S` flip-flops, single-bit next-state functions.
    OneHot,
}

impl Encoding {
    /// Number of state register bits for a machine with `num_states`
    /// states.
    ///
    /// # Panics
    ///
    /// Panics if `num_states` is zero.
    #[must_use]
    pub fn register_bits(&self, num_states: usize) -> usize {
        assert!(num_states > 0, "a machine has at least one state");
        match self {
            Encoding::Binary | Encoding::Gray => {
                usize::BITS as usize - (num_states - 1).leading_zeros() as usize
            }
            Encoding::OneHot => num_states,
        }
        .max(1)
    }

    /// The code word for state `state` of `num_states`, as a bit pattern in
    /// a `u64` (bit 0 = register 0).
    ///
    /// # Panics
    ///
    /// Panics if `state >= num_states` or the one-hot code would not fit
    /// in 64 bits.
    #[must_use]
    pub fn code(&self, state: usize, num_states: usize) -> u64 {
        assert!(state < num_states, "state {state} out of {num_states}");
        match self {
            Encoding::Binary => state as u64,
            Encoding::Gray => {
                let s = state as u64;
                s ^ (s >> 1)
            }
            Encoding::OneHot => {
                assert!(num_states <= 64, "one-hot limited to 64 states here");
                1u64 << state
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_bit_counts() {
        assert_eq!(Encoding::Binary.register_bits(1), 1);
        assert_eq!(Encoding::Binary.register_bits(2), 1);
        assert_eq!(Encoding::Binary.register_bits(3), 2);
        assert_eq!(Encoding::Binary.register_bits(4), 2);
        assert_eq!(Encoding::Binary.register_bits(5), 3);
        assert_eq!(Encoding::Gray.register_bits(8), 3);
        assert_eq!(Encoding::OneHot.register_bits(5), 5);
    }

    #[test]
    fn codes_are_distinct() {
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let codes: std::collections::BTreeSet<u64> = (0..12).map(|s| enc.code(s, 12)).collect();
            assert_eq!(codes.len(), 12, "{enc:?} produced duplicate codes");
        }
    }

    #[test]
    fn gray_adjacent_differ_in_one_bit() {
        for s in 0..31usize {
            let a = Encoding::Gray.code(s, 32);
            let b = Encoding::Gray.code(s + 1, 32);
            assert_eq!((a ^ b).count_ones(), 1);
        }
    }

    #[test]
    fn one_hot_is_one_hot() {
        for s in 0..10 {
            assert_eq!(Encoding::OneHot.code(s, 10).count_ones(), 1);
        }
    }
}
