//! Structural area estimation for Moore predictor machines.
//!
//! The paper synthesizes a 10% sample of its generated FSMs with Synopsys
//! and observes that "for most state machines, the area is linearly
//! proportional to the number of states", with highly regular machines
//! falling below the line (Figure 4); the fitted line is then used to
//! estimate area everywhere else (§7.4).
//!
//! Synopsys is not available to this reproduction, so [`synthesize_area`]
//! performs a small structural synthesis instead: states are encoded
//! (binary/Gray/one-hot), the next-state and output functions are
//! minimized with the project's own two-level minimizer, and the result is
//! costed in NAND2-gate equivalents. This reproduces exactly the property
//! the paper relies on — near-linear growth in state count, with regular
//! machines cheaper — and [`LinearAreaModel`] provides the fitted line
//! used by the Figure 5 experiments.

use crate::encoding::Encoding;
use fsmgen_automata::Dfa;
use fsmgen_logicmin::{minimize, Algorithm, Cover, FunctionSpec};
use serde::{Deserialize, Serialize};

/// Gate-equivalents charged per flip-flop (a typical D-FF is ~6 NAND2).
pub const FF_GATE_COST: f64 = 6.0;

/// The synthesized cost breakdown of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaEstimate {
    /// State register bits.
    pub flip_flops: usize,
    /// Combinational gate count (NAND2 equivalents) for next-state and
    /// output logic.
    pub logic_gates: f64,
    /// Total area in gate equivalents:
    /// `logic_gates + FF_GATE_COST * flip_flops`.
    pub area: f64,
}

/// Synthesizes `dfa` with the given state `encoding` and returns its
/// structural area estimate.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::compile_patterns;
/// use fsmgen_synth::{synthesize_area, Encoding};
///
/// let fsm = compile_patterns(&[vec![Some(true), None]]); // Figure 6
/// let est = synthesize_area(&fsm, Encoding::Binary);
/// assert_eq!(est.flip_flops, 2); // 4 states -> 2 bits
/// assert!(est.area > 0.0);
/// ```
#[must_use]
pub fn synthesize_area(dfa: &Dfa, encoding: Encoding) -> AreaEstimate {
    let covers = synthesize_logic(dfa, encoding);
    let flip_flops = encoding.register_bits(dfa.num_states());
    let logic_gates: f64 = covers.iter().map(cover_gates).sum();
    AreaEstimate {
        flip_flops,
        logic_gates,
        area: logic_gates + FF_GATE_COST * flip_flops as f64,
    }
}

/// Synthesizes the combinational logic of `dfa`: one minimized cover per
/// next-state register bit, plus one for the Moore output. Exposed so the
/// VHDL emitter and the encoding ablation can reuse the same logic.
#[must_use]
pub fn synthesize_logic(dfa: &Dfa, encoding: Encoding) -> Vec<Cover> {
    let s = dfa.num_states();
    let bits = encoding.register_bits(s);
    // Input variables: var 0 = din, vars 1..=bits = current-state code.
    let width = bits + 1;
    if width > fsmgen_logicmin::MAX_VARS {
        // One-hot machines beyond the minimizer width: cost each next-state
        // bit directly from its incoming edges without minimization. Build
        // single-cube covers for accounting purposes.
        return one_hot_direct(dfa);
    }

    let mut covers = Vec::with_capacity(bits + 1);
    for bit in 0..bits {
        let mut spec = FunctionSpec::new(width).expect("width checked above");
        for state in 0..s {
            let code = encoding.code(state, s);
            for din in [false, true] {
                let next = dfa.step(state as u32, din) as usize;
                let next_code = encoding.code(next, s);
                let minterm = (code as u32) << 1 | u32::from(din);
                if next_code >> bit & 1 == 1 {
                    spec.add_on(minterm).expect("codes are distinct");
                } else {
                    spec.add_off(minterm).expect("codes are distinct");
                }
            }
        }
        covers.push(minimize(&spec, Algorithm::Auto { exact_up_to: 8 }));
    }

    // Moore output as a function of the state code alone.
    let mut out_spec = FunctionSpec::new(bits.max(1)).expect("at least one variable");
    for state in 0..s {
        let code = encoding.code(state, s) as u32;
        if dfa.output(state as u32) {
            out_spec.add_on(code).expect("codes are distinct");
        } else {
            out_spec.add_off(code).expect("codes are distinct");
        }
    }
    covers.push(minimize(&out_spec, Algorithm::Auto { exact_up_to: 8 }));
    covers
}

/// Direct one-hot costing for machines too wide for the minimizer: each
/// next-state bit is the OR over incoming edges, with the two input
/// polarities of one source state merging into a single literal.
fn one_hot_direct(dfa: &Dfa) -> Vec<Cover> {
    let s = dfa.num_states();
    let mut covers = Vec::with_capacity(s + 1);
    for j in 0..s as u32 {
        // Incoming edges to j: (i, din) with step(i, din) == j.
        let mut cover = Cover::new(2); // placeholder width; cubes built manually
        for i in 0..s as u32 {
            let on0 = dfa.step(i, false) == j;
            let on1 = dfa.step(i, true) == j;
            match (on0, on1) {
                (true, true) => cover.push(fsmgen_logicmin::Cube::new(0b01, 0b01)),
                (true, false) | (false, true) => cover.push(fsmgen_logicmin::Cube::new(0b11, 0b01)),
                (false, false) => {}
            }
        }
        covers.push(cover);
    }
    let mut out = Cover::new(2);
    for i in 0..s as u32 {
        if dfa.output(i) {
            out.push(fsmgen_logicmin::Cube::new(0b01, 0b01));
        }
    }
    covers.push(out);
    covers
}

/// Synthesizes `dfa` under all three encodings and returns the cheapest
/// result with its encoding — the encoding-exploration step a real
/// synthesis tool performs ("finding a good encoding for the states and
/// their transitions", §4.8).
///
/// # Examples
///
/// ```
/// use fsmgen_automata::compile_patterns;
/// use fsmgen_synth::synthesize_area_best;
///
/// let fsm = compile_patterns(&[vec![Some(true), None]]);
/// let (encoding, est) = synthesize_area_best(&fsm);
/// // No other encoding can be cheaper, by construction.
/// assert!(est.area > 0.0);
/// let _ = encoding;
/// ```
#[must_use]
pub fn synthesize_area_best(dfa: &Dfa) -> (Encoding, AreaEstimate) {
    [Encoding::Binary, Encoding::Gray, Encoding::OneHot]
        .into_iter()
        .map(|e| (e, synthesize_area(dfa, e)))
        .min_by(|a, b| a.1.area.partial_cmp(&b.1.area).expect("finite areas"))
        .expect("three candidates")
}

/// NAND2-equivalent gate count of one sum-of-products cover: each k-literal
/// AND costs `k-1`, the final OR of m terms costs `m-1`.
fn cover_gates(cover: &Cover) -> f64 {
    let and_gates: u32 = cover
        .cubes()
        .iter()
        .map(|c| c.literal_count().saturating_sub(1))
        .sum();
    let or_gates = cover.len().saturating_sub(1);
    f64::from(and_gates) + or_gates as f64
}

/// A fitted linear area model `area ≈ slope * states + intercept`, the
/// dashed line of Figure 4.
///
/// "Even though the approximation does not hold for all of the predictors,
/// it does bound the area of the predictors by the number of states ...
/// we use this approximation to quantify area rather than performing
/// synthesis on each state we wish to examine" (§7.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearAreaModel {
    /// Area units per state.
    pub slope: f64,
    /// Fixed overhead.
    pub intercept: f64,
}

impl LinearAreaModel {
    /// Least-squares fit over `(num_states, area)` samples.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given or all samples share one
    /// state count.
    #[must_use]
    pub fn fit(samples: &[(usize, f64)]) -> Self {
        assert!(samples.len() >= 2, "need at least two samples to fit");
        let n = samples.len() as f64;
        let sx: f64 = samples.iter().map(|&(s, _)| s as f64).sum();
        let sy: f64 = samples.iter().map(|&(_, a)| a).sum();
        let sxx: f64 = samples.iter().map(|&(s, _)| (s as f64) * (s as f64)).sum();
        let sxy: f64 = samples.iter().map(|&(s, a)| s as f64 * a).sum();
        let denom = n * sxx - sx * sx;
        assert!(
            denom.abs() > f64::EPSILON,
            "all samples share one state count; cannot fit a line"
        );
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        LinearAreaModel { slope, intercept }
    }

    /// Estimated area for a machine with `num_states` states.
    #[must_use]
    pub fn estimate(&self, num_states: usize) -> f64 {
        (self.slope * num_states as f64 + self.intercept).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_automata::compile_patterns;

    #[test]
    fn logic_implements_the_machine() {
        // Cross-check: evaluating the synthesized covers reproduces the
        // transition and output functions.
        let fsm = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ]);
        let enc = Encoding::Binary;
        let s = fsm.num_states();
        let bits = enc.register_bits(s);
        let covers = synthesize_logic(&fsm, enc);
        assert_eq!(covers.len(), bits + 1);
        for state in 0..s {
            let code = enc.code(state, s) as u32;
            for din in [false, true] {
                let next = fsm.step(state as u32, din) as usize;
                let next_code = enc.code(next, s);
                let minterm = code << 1 | u32::from(din);
                for (bit, cover) in covers[..bits].iter().enumerate() {
                    assert_eq!(
                        cover.covers_minterm(minterm),
                        next_code >> bit & 1 == 1,
                        "state {state} din {din} bit {bit}"
                    );
                }
            }
            assert_eq!(covers[bits].covers_minterm(code), fsm.output(state as u32));
        }
    }

    #[test]
    fn area_grows_with_states() {
        // Larger pattern machines must not be cheaper than the 1-state
        // trivial machine, and area is positive.
        let small = compile_patterns(&[vec![Some(true)]]);
        let big = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(false), None, None, Some(true), None],
        ]);
        let a_small = synthesize_area(&small, Encoding::Binary);
        let a_big = synthesize_area(&big, Encoding::Binary);
        assert!(a_big.area > a_small.area);
        assert!(a_small.area > 0.0);
    }

    #[test]
    fn one_hot_uses_more_ffs_binary_more_logic_per_ff() {
        let fsm = compile_patterns(&[vec![Some(false), None, Some(true), None]]);
        let bin = synthesize_area(&fsm, Encoding::Binary);
        let hot = synthesize_area(&fsm, Encoding::OneHot);
        assert!(hot.flip_flops > bin.flip_flops);
        assert_eq!(hot.flip_flops, fsm.num_states());
    }

    #[test]
    fn best_encoding_is_never_beaten() {
        let fsm = compile_patterns(&[
            vec![Some(false), None, Some(true), None],
            vec![Some(true), Some(true), None],
        ]);
        let (_, best) = synthesize_area_best(&fsm);
        for e in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            assert!(best.area <= synthesize_area(&fsm, e).area + 1e-9);
        }
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let samples: Vec<(usize, f64)> = (1..20).map(|s| (s, 2.5 * s as f64 + 7.0)).collect();
        let model = LinearAreaModel::fit(&samples);
        assert!((model.slope - 2.5).abs() < 1e-9);
        assert!((model.intercept - 7.0).abs() < 1e-9);
        assert!((model.estimate(100) - 257.0).abs() < 1e-9);
    }

    #[test]
    fn estimate_clamps_at_zero() {
        let model = LinearAreaModel {
            slope: 1.0,
            intercept: -10.0,
        };
        assert_eq!(model.estimate(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn fit_needs_samples() {
        let _ = LinearAreaModel::fit(&[(3, 10.0)]);
    }
}
