//! Synthesis back-end for FSM predictors: VHDL emission, state encodings
//! and structural area estimation.
//!
//! This crate stands in for the Synopsys step of Sherwood & Calder's
//! design flow (ISCA 2001, §4.8 and §7.4). [`to_vhdl`] emits the
//! synthesizable two-process FSM description the paper hands to Synopsys;
//! [`synthesize_area`] replaces the proprietary tool with a structural
//! cost model (state encoding + two-level-minimized next-state/output
//! logic, costed in NAND2 equivalents); and [`LinearAreaModel`] is the
//! fitted linear bound of Figure 4 that the branch-prediction experiments
//! use to price predictors.
//!
//! # Examples
//!
//! ```
//! use fsmgen_automata::compile_patterns;
//! use fsmgen_synth::{synthesize_area, Encoding, LinearAreaModel};
//!
//! // Estimate areas for two machines and fit the Figure 4 line.
//! let small = compile_patterns(&[vec![Some(true), None]]);
//! let large = compile_patterns(&[
//!     vec![Some(false), None, Some(true), None],
//!     vec![Some(false), None, None, Some(true), None],
//! ]);
//! let samples = [
//!     (small.num_states(), synthesize_area(&small, Encoding::Binary).area),
//!     (large.num_states(), synthesize_area(&large, Encoding::Binary).area),
//! ];
//! let line = LinearAreaModel::fit(&samples);
//! assert!(line.slope > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod area;
mod encoding;
mod vhdl;

pub use area::{
    synthesize_area, synthesize_area_best, synthesize_logic, AreaEstimate, LinearAreaModel,
    FF_GATE_COST,
};
pub use encoding::Encoding;
pub use vhdl::{to_vhdl, VhdlOptions};
