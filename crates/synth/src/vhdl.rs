//! Synthesizable VHDL emission for Moore predictor machines (§4.8).
//!
//! "We translate our description of the finite state machine to VHDL,
//! which is then read and analyzed by the Synopsys design tool." The
//! emitted code is the classic two-process FSM template every synthesis
//! tool recognizes: a clocked state register with asynchronous reset and a
//! combinational next-state/output process.

use fsmgen_automata::Dfa;
use std::fmt::Write as _;

/// Options for VHDL emission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VhdlOptions {
    /// VHDL entity name. Must be a valid VHDL identifier.
    pub entity: String,
    /// Name of the clock port.
    pub clock: String,
    /// Name of the asynchronous reset port (active high).
    pub reset: String,
}

impl Default for VhdlOptions {
    fn default() -> Self {
        VhdlOptions {
            entity: "fsm_predictor".to_string(),
            clock: "clk".to_string(),
            reset: "reset".to_string(),
        }
    }
}

/// Emits synthesizable VHDL for `dfa` as a Moore predictor: input `din` is
/// the resolved outcome, output `predict` is the prediction for the next
/// outcome.
///
/// The state type is an enumerated type, leaving the encoding choice to
/// the synthesis tool exactly as the paper's flow does.
///
/// # Examples
///
/// ```
/// use fsmgen_automata::compile_patterns;
/// use fsmgen_synth::{to_vhdl, VhdlOptions};
///
/// let fsm = compile_patterns(&[vec![Some(true), None]]);
/// let vhdl = to_vhdl(&fsm, &VhdlOptions::default());
/// assert!(vhdl.contains("entity fsm_predictor is"));
/// assert!(vhdl.contains("type state_t is (s0, s1, s2, s3);"));
/// ```
#[must_use]
pub fn to_vhdl(dfa: &Dfa, options: &VhdlOptions) -> String {
    let n = dfa.num_states();
    let mut out = String::new();
    let e = &options.entity;
    let clk = &options.clock;
    let rst = &options.reset;

    let _ = writeln!(
        out,
        "-- Automatically generated FSM predictor ({n} states)."
    );
    let _ = writeln!(out, "library IEEE;");
    let _ = writeln!(out, "use IEEE.std_logic_1164.all;");
    let _ = writeln!(out);
    let _ = writeln!(out, "entity {e} is");
    let _ = writeln!(out, "  port (");
    let _ = writeln!(out, "    {clk}     : in  std_logic;");
    let _ = writeln!(out, "    {rst}     : in  std_logic;");
    let _ = writeln!(out, "    din     : in  std_logic;");
    let _ = writeln!(out, "    predict : out std_logic");
    let _ = writeln!(out, "  );");
    let _ = writeln!(out, "end {e};");
    let _ = writeln!(out);
    let _ = writeln!(out, "architecture rtl of {e} is");
    let states: Vec<String> = (0..n).map(|s| format!("s{s}")).collect();
    let _ = writeln!(out, "  type state_t is ({});", states.join(", "));
    let _ = writeln!(
        out,
        "  signal state, next_state : state_t := s{};",
        dfa.start()
    );
    let _ = writeln!(out, "begin");
    let _ = writeln!(out);
    let _ = writeln!(out, "  state_reg : process ({clk}, {rst})");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    if {rst} = '1' then");
    let _ = writeln!(out, "      state <= s{};", dfa.start());
    let _ = writeln!(out, "    elsif rising_edge({clk}) then");
    let _ = writeln!(out, "      state <= next_state;");
    let _ = writeln!(out, "    end if;");
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out);
    let _ = writeln!(out, "  next_state_logic : process (state, din)");
    let _ = writeln!(out, "  begin");
    let _ = writeln!(out, "    case state is");
    for s in 0..n as u32 {
        let t0 = dfa.step(s, false);
        let t1 = dfa.step(s, true);
        let _ = writeln!(out, "      when s{s} =>");
        if t0 == t1 {
            let _ = writeln!(out, "        next_state <= s{t0};");
        } else {
            let _ = writeln!(out, "        if din = '1' then");
            let _ = writeln!(out, "          next_state <= s{t1};");
            let _ = writeln!(out, "        else");
            let _ = writeln!(out, "          next_state <= s{t0};");
            let _ = writeln!(out, "        end if;");
        }
    }
    let _ = writeln!(out, "    end case;");
    let _ = writeln!(out, "  end process;");
    let _ = writeln!(out);
    let ones: Vec<String> = (0..n as u32)
        .filter(|&s| dfa.output(s))
        .map(|s| format!("s{s}"))
        .collect();
    match ones.len() {
        0 => {
            let _ = writeln!(out, "  predict <= '0';");
        }
        m if m == n => {
            let _ = writeln!(out, "  predict <= '1';");
        }
        _ => {
            let conds: Vec<String> = ones.iter().map(|s| format!("state = {s}")).collect();
            let _ = writeln!(
                out,
                "  predict <= '1' when {} else '0';",
                conds.join(" or ")
            );
        }
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "end rtl;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_automata::compile_patterns;

    #[test]
    fn emits_every_state_and_transition() {
        let fsm = compile_patterns(&[vec![Some(false), None, Some(true), None]]);
        let vhdl = to_vhdl(&fsm, &VhdlOptions::default());
        for s in 0..fsm.num_states() {
            assert!(vhdl.contains(&format!("when s{s} =>")), "missing state {s}");
        }
        assert!(vhdl.contains("rising_edge(clk)"));
        assert!(vhdl.contains("predict <= '1' when"));
    }

    #[test]
    fn constant_machines_emit_constant_outputs() {
        let zero = fsmgen_automata::Dfa::from_parts(vec![[0, 0]], vec![false], 0);
        assert!(to_vhdl(&zero, &VhdlOptions::default()).contains("predict <= '0';"));
        let one = fsmgen_automata::Dfa::from_parts(vec![[0, 0]], vec![true], 0);
        assert!(to_vhdl(&one, &VhdlOptions::default()).contains("predict <= '1';"));
    }

    #[test]
    fn custom_port_names() {
        let fsm = compile_patterns(&[vec![Some(true)]]);
        let opts = VhdlOptions {
            entity: "bp_custom_7".to_string(),
            clock: "clock".to_string(),
            reset: "rst_n".to_string(),
        };
        let vhdl = to_vhdl(&fsm, &opts);
        assert!(vhdl.contains("entity bp_custom_7 is"));
        assert!(vhdl.contains("rising_edge(clock)"));
        assert!(vhdl.contains("if rst_n = '1' then"));
    }

    #[test]
    fn merged_transitions_collapse() {
        // A state with identical successors on 0 and 1 gets a single
        // unconditional assignment (like the '-' edges in Figure 1).
        let dfa = fsmgen_automata::Dfa::from_parts(vec![[1, 1], [0, 1]], vec![false, true], 0);
        let vhdl = to_vhdl(&dfa, &VhdlOptions::default());
        assert!(vhdl.contains("when s0 =>\n        next_state <= s1;"));
    }
}
