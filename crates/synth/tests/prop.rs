//! Property-based tests for the synthesis back-end: for arbitrary small
//! Moore machines, the synthesized logic must implement exactly the
//! machine's transition and output functions under every encoding, and
//! the VHDL emitter must mention every state.

use fsmgen_automata::Dfa;
use fsmgen_synth::{synthesize_area, synthesize_logic, to_vhdl, Encoding, VhdlOptions};
use proptest::prelude::*;

/// Strategy: arbitrary complete DFAs with 1..=10 states.
fn dfa_strategy() -> impl Strategy<Value = Dfa> {
    (1usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n as u32, 0..n as u32), n),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_map(move |(trans, outputs)| {
                Dfa::from_parts(trans.into_iter().map(|(a, b)| [a, b]).collect(), outputs, 0)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hardware/software equivalence for every encoding.
    #[test]
    fn synthesized_logic_implements_machine(dfa in dfa_strategy()) {
        let n = dfa.num_states();
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let bits = enc.register_bits(n);
            let covers = synthesize_logic(&dfa, enc);
            if bits + 1 > fsmgen_logicmin::MAX_VARS {
                continue; // direct-cost path, not a logic table
            }
            prop_assert_eq!(covers.len(), bits + 1);
            for s in 0..n {
                let code = enc.code(s, n);
                for din in [false, true] {
                    let next = enc.code(dfa.step(s as u32, din) as usize, n);
                    let minterm = (code as u32) << 1 | u32::from(din);
                    for (bit, cover) in covers[..bits].iter().enumerate() {
                        prop_assert_eq!(
                            cover.covers_minterm(minterm),
                            next >> bit & 1 == 1,
                            "enc {:?} state {} din {} bit {}", enc, s, din, bit
                        );
                    }
                }
                prop_assert_eq!(
                    covers[bits].covers_minterm(code as u32),
                    dfa.output(s as u32),
                    "enc {:?} output of state {}", enc, s
                );
            }
        }
    }

    /// Area is positive and the flip-flop count matches the encoding.
    #[test]
    fn area_estimates_are_sane(dfa in dfa_strategy()) {
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let est = synthesize_area(&dfa, enc);
            prop_assert_eq!(est.flip_flops, enc.register_bits(dfa.num_states()));
            prop_assert!(est.area > 0.0);
            prop_assert!(est.logic_gates >= 0.0);
            prop_assert!(
                (est.area - (est.logic_gates + 6.0 * est.flip_flops as f64)).abs() < 1e-9
            );
        }
    }

    /// VHDL emission mentions every state and is deterministic.
    #[test]
    fn vhdl_mentions_every_state(dfa in dfa_strategy()) {
        let opts = VhdlOptions::default();
        let a = to_vhdl(&dfa, &opts);
        let b = to_vhdl(&dfa, &opts);
        prop_assert_eq!(&a, &b);
        for s in 0..dfa.num_states() {
            prop_assert!(a.contains(&format!("s{s}")), "state {s} missing from VHDL");
        }
        prop_assert!(a.contains("entity fsm_predictor is"));
    }

    /// Encoding codes are injective for all supported sizes.
    #[test]
    fn codes_injective(n in 1usize..=64) {
        for enc in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
            let codes: std::collections::BTreeSet<u64> =
                (0..n).map(|s| enc.code(s, n)).collect();
            prop_assert_eq!(codes.len(), n, "{:?} collides at n={}", enc, n);
        }
    }
}
