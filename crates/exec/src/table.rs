//! Lowering a finished [`Dfa`] into a dense, cache-friendly transition
//! table plus a packed output bitmap.

use fsmgen_automata::Dfa;
use std::fmt;

/// Most states a machine may have and still compile (`u16` indices).
pub const MAX_COMPILED_STATES: usize = 1 << 16;

/// Threshold at or below which the narrow `u8` table is used.
pub const U8_STATE_LIMIT: usize = 1 << 8;

/// Index width selected for a compiled transition table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TableWidth {
    /// One byte per entry — machines with ≤ 256 states.
    U8,
    /// Two bytes per entry — the spill path for ≤ 65536 states.
    U16,
}

impl TableWidth {
    /// Bytes per table entry.
    #[must_use]
    pub fn entry_bytes(self) -> usize {
        match self {
            TableWidth::U8 => 1,
            TableWidth::U16 => 2,
        }
    }

    /// The width required for a machine with `num_states` states, if it
    /// is compilable at all.
    fn for_states(num_states: usize) -> Result<Self, CompileError> {
        if num_states == 0 {
            Err(CompileError::NoStates)
        } else if num_states <= U8_STATE_LIMIT {
            Ok(TableWidth::U8)
        } else if num_states <= MAX_COMPILED_STATES {
            Ok(TableWidth::U16)
        } else {
            Err(CompileError::TooManyStates {
                states: num_states,
                limit: MAX_COMPILED_STATES,
            })
        }
    }
}

impl fmt::Display for TableWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableWidth::U8 => write!(f, "u8"),
            TableWidth::U16 => write!(f, "u16"),
        }
    }
}

/// Why a machine could not be lowered to a dense table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The machine has no states (not constructible via [`Dfa`], but the
    /// byte decoder can present such input).
    NoStates,
    /// The machine exceeds the widest supported index type.
    TooManyStates {
        /// States the machine has.
        states: usize,
        /// Hard ceiling of the `u16` spill path.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NoStates => write!(f, "machine has no states"),
            CompileError::TooManyStates { states, limit } => {
                write!(
                    f,
                    "machine has {states} states, exceeding the {limit}-state table limit"
                )
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Why a serialized compiled machine could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer is shorter than its declared contents.
    Truncated,
    /// The leading magic bytes are not `FXT1`.
    BadMagic,
    /// The width byte is neither 1 (`u8`) nor 2 (`u16`).
    BadWidth(u8),
    /// The declared width cannot index the declared state count.
    WidthMismatch,
    /// The state count is zero or above the supported ceiling.
    BadStateCount(u64),
    /// The start state or a transition target is out of range.
    StateOutOfRange,
    /// Extra bytes follow the declared contents.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadMagic => write!(f, "bad magic (expected FXT1)"),
            DecodeError::BadWidth(w) => write!(f, "bad width byte {w}"),
            DecodeError::WidthMismatch => write!(f, "width cannot index state count"),
            DecodeError::BadStateCount(n) => write!(f, "bad state count {n}"),
            DecodeError::StateOutOfRange => write!(f, "state index out of range"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after table"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The dense next-state table, at whichever width the state count needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Table {
    U8(Vec<u8>),
    U16(Vec<u16>),
}

/// A Moore machine lowered to a dense transition table.
///
/// Layout: `next[(state << 1) | input]` — the two successors of a state
/// are adjacent, so a predictor that flips between outcomes stays within
/// one cache line. Outputs live in a packed bitmap (`bit s of word
/// s / 64`), separate from the table so the stepping loop touches only
/// next-state bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledMachine {
    table: Table,
    outputs: Vec<u64>,
    num_states: u32,
    start: u32,
}

impl CompiledMachine {
    /// Lower `dfa` into a dense table, selecting the narrowest index
    /// width that fits (`u8` through 256 states, `u16` spill to 65536).
    pub fn compile(dfa: &Dfa) -> Result<Self, CompileError> {
        let n = dfa.num_states();
        let width = TableWidth::for_states(n)?;
        let transitions = dfa.transitions();
        let table = match width {
            TableWidth::U8 => {
                let mut t = Vec::with_capacity(2 * n);
                for row in transitions {
                    // Fits: every target < n ≤ 256, and state 255 is the max
                    // representable; n == 256 still has targets ≤ 255.
                    t.push((row[0] & 0xff) as u8);
                    t.push((row[1] & 0xff) as u8);
                }
                Table::U8(t)
            }
            TableWidth::U16 => {
                let mut t = Vec::with_capacity(2 * n);
                for row in transitions {
                    t.push((row[0] & 0xffff) as u16);
                    t.push((row[1] & 0xffff) as u16);
                }
                Table::U16(t)
            }
        };
        let mut outputs = vec![0u64; n.div_ceil(64)];
        for (s, &accept) in dfa.outputs().iter().enumerate() {
            if accept {
                outputs[s >> 6] |= 1u64 << (s & 63);
            }
        }
        Ok(CompiledMachine {
            table,
            outputs,
            num_states: n as u32,
            start: dfa.start(),
        })
    }

    /// Number of states in the compiled machine.
    #[must_use]
    #[inline]
    pub fn num_states(&self) -> u32 {
        self.num_states
    }

    /// The start (reset) state.
    #[must_use]
    #[inline]
    pub fn start(&self) -> u32 {
        self.start
    }

    /// The index width this machine compiled to.
    #[must_use]
    pub fn width(&self) -> TableWidth {
        match self.table {
            Table::U8(_) => TableWidth::U8,
            Table::U16(_) => TableWidth::U16,
        }
    }

    /// Bytes of table + bitmap storage (the artifact's working-set size).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        let t = match &self.table {
            Table::U8(t) => t.len(),
            Table::U16(t) => 2 * t.len(),
        };
        t + 8 * self.outputs.len()
    }

    /// Advance one step: `next[(state << 1) | input]`, branch-free in the
    /// state/input data (the single width dispatch is per-machine, not
    /// per-step, and perfectly predicted).
    #[must_use]
    #[inline]
    pub fn step(&self, state: u32, bit: bool) -> u32 {
        let idx = ((state as usize) << 1) | usize::from(bit);
        match &self.table {
            Table::U8(t) => u32::from(t[idx]),
            Table::U16(t) => u32::from(t[idx]),
        }
    }

    /// The Moore output (predict-taken bit) of `state`.
    #[must_use]
    #[inline]
    pub fn output(&self, state: u32) -> bool {
        let s = state as usize;
        (self.outputs[s >> 6] >> (s & 63)) & 1 == 1
    }

    pub(crate) fn raw_table(&self) -> &Table {
        &self.table
    }

    /// Reconstruct the [`Dfa`] this table was lowered from. Lossless:
    /// lowering is a 1:1 re-encoding, so `decompile(compile(d)) == d`.
    #[must_use]
    pub fn decompile(&self) -> Dfa {
        let n = self.num_states as usize;
        let mut transitions = Vec::with_capacity(n);
        for s in 0..n {
            let row = match &self.table {
                Table::U8(t) => [u32::from(t[2 * s]), u32::from(t[2 * s + 1])],
                Table::U16(t) => [u32::from(t[2 * s]), u32::from(t[2 * s + 1])],
            };
            transitions.push(row);
        }
        let accept = (0..n as u32).map(|s| self.output(s)).collect();
        Dfa::from_parts(transitions, accept, self.start)
    }

    /// Serialize to the versioned `FXT1` little-endian byte format:
    /// magic, width byte, `num_states: u32`, `start: u32`, `2·n` table
    /// entries at the declared width, then the packed output words.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + self.table_bytes());
        out.extend_from_slice(b"FXT1");
        out.push(self.width().entry_bytes() as u8);
        out.extend_from_slice(&self.num_states.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        match &self.table {
            Table::U8(t) => out.extend_from_slice(t),
            Table::U16(t) => {
                for e in t {
                    out.extend_from_slice(&e.to_le_bytes());
                }
            }
        }
        for w in &self.outputs {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decode a buffer produced by [`CompiledMachine::to_bytes`],
    /// validating structure and every state index.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let header = bytes.get(..13).ok_or(DecodeError::Truncated)?;
        if &header[..4] != b"FXT1" {
            return Err(DecodeError::BadMagic);
        }
        let width = match header[4] {
            1 => TableWidth::U8,
            2 => TableWidth::U16,
            w => return Err(DecodeError::BadWidth(w)),
        };
        let mut word = [0u8; 4];
        word.copy_from_slice(&header[5..9]);
        let num_states = u32::from_le_bytes(word);
        word.copy_from_slice(&header[9..13]);
        let start = u32::from_le_bytes(word);
        let n = num_states as usize;
        if n == 0 || n > MAX_COMPILED_STATES {
            return Err(DecodeError::BadStateCount(u64::from(num_states)));
        }
        match width {
            TableWidth::U8 if n > U8_STATE_LIMIT => return Err(DecodeError::WidthMismatch),
            _ => {}
        }
        if start >= num_states {
            return Err(DecodeError::StateOutOfRange);
        }
        let table_bytes = 2 * n * width.entry_bytes();
        let out_bytes = 8 * n.div_ceil(64);
        if bytes.len() < 13 + table_bytes + out_bytes {
            return Err(DecodeError::Truncated);
        }
        if bytes.len() > 13 + table_bytes + out_bytes {
            return Err(DecodeError::TrailingBytes);
        }
        let body = &bytes[13..13 + table_bytes];
        let table = match width {
            TableWidth::U8 => {
                if body.iter().any(|&b| u32::from(b) >= num_states) {
                    return Err(DecodeError::StateOutOfRange);
                }
                Table::U8(body.to_vec())
            }
            TableWidth::U16 => {
                let mut t = Vec::with_capacity(2 * n);
                for pair in body.chunks_exact(2) {
                    let e = u16::from_le_bytes([pair[0], pair[1]]);
                    if u32::from(e) >= num_states {
                        return Err(DecodeError::StateOutOfRange);
                    }
                    t.push(e);
                }
                Table::U16(t)
            }
        };
        let mut outputs = Vec::with_capacity(n.div_ceil(64));
        for chunk in bytes[13 + table_bytes..].chunks_exact(8) {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            outputs.push(u64::from_le_bytes(w));
        }
        // Canonicalize: bits past the last state carry no meaning; mask
        // them so decode → encode is stable and Eq means semantic Eq.
        if n & 63 != 0 {
            if let Some(last) = outputs.last_mut() {
                *last &= (1u64 << (n & 63)) - 1;
            }
        }
        Ok(CompiledMachine {
            table,
            outputs,
            num_states,
            start,
        })
    }
}
