//! `fsmgen-exec`: the compiled execution backend for designed Moore
//! predictors.
//!
//! The design pipeline ends with a small [`fsmgen_automata::Dfa`]; the
//! simulators then walk it step by step through `MoorePredictor` — an
//! `Arc`-chasing interpreter that is the hot path of every branch of
//! every trace. This crate is the classic two-backend split: the
//! interpreter stays as the bit-exact reference, and
//! [`CompiledMachine::compile`] lowers a finished machine into a dense
//! `next[(state << 1) | input]` table (`u8` entries up to 256 states,
//! `u16` spill to 65536) plus a packed output bitmap.
//!
//! Three execution shapes are offered:
//!
//! - [`CompiledMachine`]: the artifact — step/output on explicit state.
//! - [`CompiledPredictor`]: one instance, API-identical to
//!   `MoorePredictor`.
//! - [`BatchEvaluator`]: many instances in struct-of-arrays layout,
//!   advanced per pass ([`BatchEvaluator::step_all`]) so the paper's
//!   update-all-FSMs loop costs one contiguous sweep instead of N
//!   pointer chases.
//!
//! Call sites select a backend via [`ExecBackend`]; `Compiled` is the
//! default everywhere, and the differential suites in
//! `tests/differential.rs` pin it bit-identical (predictions, update
//! sequences, final state) to the interpreted walk.
//!
//! # Examples
//!
//! ```
//! use fsmgen_automata::{Dfa, Nfa, Regex};
//! use fsmgen_exec::{CompiledMachine, CompiledPredictor};
//!
//! let lang = Regex::ending_in(vec![
//!     Regex::pattern(&[Some(true), None]),
//!     Regex::pattern(&[None, Some(true)]),
//! ]);
//! let dfa = Dfa::from_nfa(&Nfa::from_regex(&lang))
//!     .minimized()
//!     .steady_state_reduced();
//! let compiled = CompiledMachine::compile(&dfa).unwrap();
//! let mut fast = CompiledPredictor::new(compiled);
//! fast.update(true);
//! fast.update(true);
//! assert!(fast.predict());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod batch;
mod predictor;
mod table;

pub use batch::BatchEvaluator;
pub use predictor::CompiledPredictor;
pub use table::{
    CompileError, CompiledMachine, DecodeError, TableWidth, MAX_COMPILED_STATES, U8_STATE_LIMIT,
};

/// Which execution backend a simulator should run designed machines on.
///
/// `Interpreted` is the reference `MoorePredictor` walk; `Compiled` is
/// the dense-table fast path. They are differentially tested to be
/// bit-identical, so the only observable difference is wall-time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// Reference interpreter: walk the `Dfa` through `MoorePredictor`.
    Interpreted,
    /// Dense transition-table fast path (the default).
    #[default]
    Compiled,
}

impl ExecBackend {
    /// Stable lowercase label for reports and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ExecBackend::Interpreted => "interpreted",
            ExecBackend::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interpreted" | "interp" => Ok(ExecBackend::Interpreted),
            "compiled" | "fast" => Ok(ExecBackend::Compiled),
            other => Err(format!(
                "unknown backend '{other}' (expected 'interpreted' or 'compiled')"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_automata::Dfa;

    fn two_bit_counter() -> Dfa {
        // The classic 2-bit saturating counter as a Moore machine:
        // states 0,1 predict not-taken; 2,3 predict taken.
        Dfa::from_parts(
            vec![[0, 1], [0, 2], [1, 3], [2, 3]],
            vec![false, false, true, true],
            0,
        )
    }

    #[test]
    fn compile_selects_u8_width_for_small_machines() {
        let c = CompiledMachine::compile(&two_bit_counter()).unwrap();
        assert_eq!(c.width(), TableWidth::U8);
        assert_eq!(c.num_states(), 4);
        assert_eq!(c.start(), 0);
    }

    #[test]
    fn compile_spills_to_u16_above_256_states() {
        // A 300-state cycle: state s steps to s+1 mod 300 on either bit.
        let n = 300u32;
        let transitions = (0..n).map(|s| [(s + 1) % n, (s + 1) % n]).collect();
        let accept = (0..n).map(|s| s % 3 == 0).collect();
        let dfa = Dfa::from_parts(transitions, accept, 0);
        let c = CompiledMachine::compile(&dfa).unwrap();
        assert_eq!(c.width(), TableWidth::U16);
        let mut p = CompiledPredictor::new(c);
        for _ in 0..299 {
            p.update(true);
        }
        assert_eq!(p.state(), 299);
        assert!(!p.predict());
        p.update(false);
        assert_eq!(p.state(), 0);
        assert!(p.predict());
    }

    #[test]
    fn u8_boundary_machine_compiles_narrow() {
        let n = 256u32;
        let transitions = (0..n).map(|s| [s, (s + 1) % n]).collect();
        let accept = (0..n).map(|s| s & 1 == 1).collect();
        let dfa = Dfa::from_parts(transitions, accept, 255);
        let c = CompiledMachine::compile(&dfa).unwrap();
        assert_eq!(c.width(), TableWidth::U8);
        assert_eq!(c.step(255, true), 0);
        assert_eq!(c.step(255, false), 255);
        assert!(c.output(255));
    }

    #[test]
    fn step_and_output_match_the_dfa() {
        let dfa = two_bit_counter();
        let c = CompiledMachine::compile(&dfa).unwrap();
        for s in 0..4u32 {
            for bit in [false, true] {
                assert_eq!(c.step(s, bit), dfa.step(s, bit));
            }
            assert_eq!(c.output(s), dfa.output(s));
        }
    }

    #[test]
    fn decompile_round_trips_exactly() {
        let dfa = two_bit_counter();
        let c = CompiledMachine::compile(&dfa).unwrap();
        assert!(c.decompile().equivalent(&dfa));
        assert_eq!(c.decompile().transitions(), dfa.transitions());
        assert_eq!(c.decompile().outputs(), dfa.outputs());
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let c = CompiledMachine::compile(&two_bit_counter()).unwrap();
        let bytes = c.to_bytes();
        let back = CompiledMachine::from_bytes(&bytes).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn decode_rejects_malformed_buffers() {
        let c = CompiledMachine::compile(&two_bit_counter()).unwrap();
        let good = c.to_bytes();
        assert_eq!(
            CompiledMachine::from_bytes(&[]),
            Err(DecodeError::Truncated)
        );
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            CompiledMachine::from_bytes(&bad_magic),
            Err(DecodeError::BadMagic)
        );
        let mut bad_width = good.clone();
        bad_width[4] = 7;
        assert_eq!(
            CompiledMachine::from_bytes(&bad_width),
            Err(DecodeError::BadWidth(7))
        );
        let mut extra = good.clone();
        extra.push(0);
        assert_eq!(
            CompiledMachine::from_bytes(&extra),
            Err(DecodeError::TrailingBytes)
        );
        let mut bad_state = good.clone();
        bad_state[13] = 9; // transition target 9 in a 4-state machine
        assert_eq!(
            CompiledMachine::from_bytes(&bad_state),
            Err(DecodeError::StateOutOfRange)
        );
        let mut bad_start = good;
        bad_start[9] = 200;
        assert_eq!(
            CompiledMachine::from_bytes(&bad_start),
            Err(DecodeError::StateOutOfRange)
        );
    }

    #[test]
    fn batch_lanes_share_one_table_copy() {
        let machine = std::sync::Arc::new(CompiledMachine::compile(&two_bit_counter()).unwrap());
        let solo = BatchEvaluator::uniform(&machine, 1);
        let many = BatchEvaluator::uniform(&machine, 1000);
        assert_eq!(many.len(), 1000);
        assert_eq!(solo.table_bytes(), many.table_bytes());
    }

    #[test]
    fn batch_step_all_matches_per_lane_stepping() {
        let machine = std::sync::Arc::new(CompiledMachine::compile(&two_bit_counter()).unwrap());
        let mut batch = BatchEvaluator::uniform(&machine, 8);
        let mut singles: Vec<CompiledPredictor> = (0..8)
            .map(|_| CompiledPredictor::from_shared(std::sync::Arc::clone(&machine)))
            .collect();
        // Desynchronize the lanes first so the check is non-trivial.
        for (lane, single) in singles.iter_mut().enumerate() {
            for _ in 0..lane {
                batch.step(lane, true);
                single.update(true);
            }
        }
        let bits = [true, true, false, true, false, false, true, true, false];
        for &bit in &bits {
            batch.step_all(bit);
            for single in &mut singles {
                single.update(bit);
            }
        }
        for (lane, single) in singles.iter().enumerate() {
            assert_eq!(batch.state(lane), single.state());
            assert_eq!(batch.output(lane), single.predict());
        }
    }

    #[test]
    fn batch_advance_all_equals_step_all_sequence() {
        let machine = std::sync::Arc::new(CompiledMachine::compile(&two_bit_counter()).unwrap());
        let mut a = BatchEvaluator::uniform(&machine, 5);
        let mut b = BatchEvaluator::uniform(&machine, 5);
        // Not a multiple of the fused window, so the remainder path of
        // advance_all is exercised too.
        let bits: Vec<bool> = (0..203).map(|i| (i * 7) % 3 != 0).collect();
        for &bit in &bits {
            a.step_all(bit);
        }
        b.advance_all(&bits);
        for lane in 0..5 {
            assert_eq!(a.state(lane), b.state(lane));
        }
    }

    #[test]
    fn batch_mixes_widths_by_widening() {
        let small = std::sync::Arc::new(CompiledMachine::compile(&two_bit_counter()).unwrap());
        let n = 300u32;
        let transitions = (0..n).map(|s| [(s + 1) % n, s]).collect();
        let accept = (0..n).map(|s| s == 0).collect();
        let big = std::sync::Arc::new(
            CompiledMachine::compile(&Dfa::from_parts(transitions, accept, 0)).unwrap(),
        );
        let mut batch =
            BatchEvaluator::new(&[std::sync::Arc::clone(&small), std::sync::Arc::clone(&big)]);
        for _ in 0..3 {
            batch.step_all(false);
        }
        // Lane 0: counter saturates low; lane 1: `false` steps s+1 mod n.
        assert_eq!(batch.state(0), 0);
        assert_eq!(batch.state(1), 3);
        batch.reset_all();
        assert_eq!(batch.state(0), 0);
        assert_eq!(batch.state(1), 0);
        assert!(batch.output(1));
    }

    #[test]
    fn backend_labels_and_parsing() {
        assert_eq!(ExecBackend::default(), ExecBackend::Compiled);
        assert_eq!(ExecBackend::Compiled.label(), "compiled");
        assert_eq!(ExecBackend::Interpreted.to_string(), "interpreted");
        assert_eq!("interpreted".parse(), Ok(ExecBackend::Interpreted));
        assert_eq!("fast".parse(), Ok(ExecBackend::Compiled));
        assert!("jit".parse::<ExecBackend>().is_err());
    }
}
