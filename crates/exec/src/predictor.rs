//! A single compiled predictor instance: the drop-in fast-path twin of
//! `fsmgen_automata::MoorePredictor`.

use crate::table::CompiledMachine;
use std::sync::Arc;

/// One running instance of a compiled machine.
///
/// Mirrors the `MoorePredictor` API exactly — `predict`, `update`,
/// `predict_and_update`, `reset` — so call sites can switch backends
/// without changing shape. The machine is shared (`Arc`), the mutable
/// part is one `u32` of state.
#[derive(Clone, Debug)]
pub struct CompiledPredictor {
    machine: Arc<CompiledMachine>,
    state: u32,
}

impl CompiledPredictor {
    /// Start a fresh instance of `machine` in its start state.
    #[must_use]
    pub fn new(machine: CompiledMachine) -> Self {
        Self::from_shared(Arc::new(machine))
    }

    /// Start a fresh instance sharing an already-compiled machine.
    #[must_use]
    pub fn from_shared(machine: Arc<CompiledMachine>) -> Self {
        let state = machine.start();
        CompiledPredictor { machine, state }
    }

    /// A new instance of the same machine, back at the start state.
    #[must_use]
    pub fn fresh_instance(&self) -> Self {
        Self::from_shared(Arc::clone(&self.machine))
    }

    /// The prediction made in the current state.
    #[must_use]
    #[inline]
    pub fn predict(&self) -> bool {
        self.machine.output(self.state)
    }

    /// Feed the actual outcome, advancing the state.
    #[inline]
    pub fn update(&mut self, outcome: bool) {
        self.state = self.machine.step(self.state, outcome);
    }

    /// Predict, then feed the actual outcome; returns whether the
    /// prediction was correct.
    #[inline]
    pub fn predict_and_update(&mut self, outcome: bool) -> bool {
        let correct = self.predict() == outcome;
        self.update(outcome);
        correct
    }

    /// Run a whole outcome sequence, returning the number of correct
    /// predictions. Equivalent to `predict_and_update` in a loop.
    pub fn run(&mut self, outcomes: impl IntoIterator<Item = bool>) -> usize {
        let mut correct = 0;
        for bit in outcomes {
            if self.predict_and_update(bit) {
                correct += 1;
            }
        }
        correct
    }

    /// Return to the start state.
    pub fn reset(&mut self) {
        self.state = self.machine.start();
    }

    /// The current state index.
    #[must_use]
    #[inline]
    pub fn state(&self) -> u32 {
        self.state
    }

    /// The compiled machine this instance runs.
    #[must_use]
    pub fn machine(&self) -> &Arc<CompiledMachine> {
        &self.machine
    }

    /// Number of states in the underlying machine.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.machine.num_states() as usize
    }
}
