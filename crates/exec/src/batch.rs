//! Batched struct-of-arrays evaluation: advance many independent
//! predictor instances per pass with no per-step dispatch.

use crate::table::{CompiledMachine, Table};
use std::sync::Arc;

/// The concatenated tables of every distinct machine in a batch. Entries
/// are rewritten to *global row ids* (machine base row + local target
/// state) at build time, so the stepping loop needs no per-lane offset:
/// the narrowest width that can hold the total row count is chosen.
#[derive(Clone, Debug)]
enum BatchTable {
    U8(Vec<u8>),
    U16(Vec<u16>),
    U32(Vec<u32>),
}

/// How many input bits one fused-table gather advances in
/// [`BatchEvaluator::advance_all`].
const FUSED_BITS: usize = 4;

/// Row-count ceiling for building the fused table: above this the
/// `16 x rows` fused entries would outgrow the fast cache levels and
/// the build cost stops paying for itself, so bulk advancing falls back
/// to per-event [`BatchEvaluator::step_all`] passes.
const FUSED_ROW_LIMIT: u32 = 2048;

/// Many independent predictor instances advanced in lockstep.
///
/// Lanes are laid out struct-of-arrays: one contiguous `states` vector
/// of global row ids into a shared concatenation of the distinct
/// machines' tables (machines are deduplicated by identity, so a
/// thousand lanes of one confidence FSM share a single table copy).
/// Because table entries were rewritten to global rows when the batch
/// was built, and the output bitmap is likewise indexed by global row,
/// the inner loop of [`BatchEvaluator::step_all`] is two loads per lane
/// — the lane's row and one table gather — with no `Arc` chasing, no
/// enum dispatch, no per-lane offset arithmetic and no data-dependent
/// branches.
///
/// Small batches additionally carry a *fused* table — the transition
/// table composed with itself over every [`FUSED_BITS`]-bit input
/// window — so [`BatchEvaluator::advance_all`] retires four events per
/// lane per gather.
#[derive(Clone, Debug)]
pub struct BatchEvaluator {
    table: BatchTable,
    /// `fused[(r << FUSED_BITS) | window]`: the row reached from `r`
    /// after the `FUSED_BITS` input bits of `window` (oldest bit in the
    /// window's most significant position). Built only when the batch
    /// stays under [`FUSED_ROW_LIMIT`] rows.
    fused: Option<BatchTable>,
    /// Output bitmap over global rows: bit `r` is row `r`'s prediction.
    out_bits: Vec<u64>,
    /// Per-lane base row of its machine (only consulted by the cold
    /// accessors that report machine-local state ids).
    row_offsets: Vec<u32>,
    /// Per-lane global start row.
    starts: Vec<u32>,
    /// Per-lane global current row.
    states: Vec<u32>,
}

fn set_bit(words: &mut [u64], bit: usize) {
    words[bit >> 6] |= 1u64 << (bit & 63);
}

/// Narrow global row entries to the smallest width that holds every id.
fn narrow(entries: Vec<u32>, total_rows: u32) -> BatchTable {
    if total_rows <= 1 << 8 {
        BatchTable::U8(entries.iter().map(|&e| (e & 0xff) as u8).collect())
    } else if total_rows <= 1 << 16 {
        BatchTable::U16(entries.iter().map(|&e| (e & 0xffff) as u16).collect())
    } else {
        BatchTable::U32(entries)
    }
}

impl BatchEvaluator {
    /// Build an evaluator with one lane per machine reference, in order.
    /// Machines referenced more than once (same `Arc`) are stored once.
    #[must_use]
    pub fn new(machines: &[Arc<CompiledMachine>]) -> Self {
        let mut entries: Vec<u32> = Vec::new();
        let mut out_bits: Vec<u64> = Vec::new();
        let mut total_rows = 0u32;
        let mut row_offsets = Vec::with_capacity(machines.len());
        let mut starts = Vec::with_capacity(machines.len());
        // Dedup by allocation identity: lanes built from clones of one
        // Arc share one table copy.
        let mut seen: Vec<(*const CompiledMachine, u32)> = Vec::new();
        for machine in machines {
            let key = Arc::as_ptr(machine);
            let base = match seen.iter().find(|(p, _)| *p == key) {
                Some(&(_, base)) => base,
                None => {
                    let base = total_rows;
                    match machine.raw_table() {
                        Table::U8(t) => entries.extend(t.iter().map(|&e| base + u32::from(e))),
                        Table::U16(t) => entries.extend(t.iter().map(|&e| base + u32::from(e))),
                    }
                    let rows = machine.num_states();
                    out_bits.resize((total_rows as usize + rows as usize).div_ceil(64), 0);
                    for s in 0..rows {
                        if machine.output(s) {
                            set_bit(&mut out_bits, (base + s) as usize);
                        }
                    }
                    total_rows += rows;
                    seen.push((key, base));
                    base
                }
            };
            row_offsets.push(base);
            starts.push(base + machine.start());
        }
        // Fuse FUSED_BITS steps into one gather while the table is
        // small enough for the blow-up to stay cache-resident.
        let fused = (total_rows <= FUSED_ROW_LIMIT).then(|| {
            let mut fused = Vec::with_capacity((total_rows as usize) << FUSED_BITS);
            for r in 0..total_rows {
                for window in 0..1usize << FUSED_BITS {
                    let mut cur = r as usize;
                    for shift in (0..FUSED_BITS).rev() {
                        cur = entries[(cur << 1) | ((window >> shift) & 1)] as usize;
                    }
                    fused.push(cur as u32);
                }
            }
            narrow(fused, total_rows)
        });
        let states = starts.clone();
        BatchEvaluator {
            table: narrow(entries, total_rows),
            fused,
            out_bits,
            row_offsets,
            starts,
            states,
        }
    }

    /// `lanes` fresh instances of one shared machine.
    #[must_use]
    pub fn uniform(machine: &Arc<CompiledMachine>, lanes: usize) -> Self {
        let refs: Vec<Arc<CompiledMachine>> = (0..lanes).map(|_| Arc::clone(machine)).collect();
        Self::new(&refs)
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the batch has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Advance every lane by one input bit — the paper's §7.6
    /// update-all-FSMs-on-every-branch loop as one branch-free pass.
    #[inline]
    pub fn step_all(&mut self, bit: bool) {
        let b = usize::from(bit);
        match &self.table {
            BatchTable::U8(t) => {
                for s in &mut self.states {
                    *s = u32::from(t[((*s as usize) << 1) | b]);
                }
            }
            BatchTable::U16(t) => {
                for s in &mut self.states {
                    *s = u32::from(t[((*s as usize) << 1) | b]);
                }
            }
            BatchTable::U32(t) => {
                for s in &mut self.states {
                    *s = t[((*s as usize) << 1) | b];
                }
            }
        }
    }

    /// Advance every lane through a whole outcome sequence — the bulk
    /// entry point, equivalent to one [`BatchEvaluator::step_all`] per
    /// bit. When the fused table exists, each pass over the lanes
    /// retires [`FUSED_BITS`] events with a single gather per lane; the
    /// remainder (and over-limit batches) take the per-event path.
    pub fn advance_all(&mut self, bits: &[bool]) {
        let mut tail = 0;
        if let Some(fused) = &self.fused {
            tail = bits.len() - bits.len() % FUSED_BITS;
            macro_rules! sweep {
                ($t:ident) => {
                    for chunk in bits[..tail].chunks_exact(FUSED_BITS) {
                        let mut window = 0usize;
                        for &bit in chunk {
                            window = (window << 1) | usize::from(bit);
                        }
                        for s in &mut self.states {
                            let next: u32 = $t[((*s as usize) << FUSED_BITS) | window].into();
                            *s = next;
                        }
                    }
                };
            }
            match fused {
                BatchTable::U8(t) => sweep!(t),
                BatchTable::U16(t) => sweep!(t),
                BatchTable::U32(t) => sweep!(t),
            }
        }
        for &bit in &bits[tail..] {
            self.step_all(bit);
        }
    }

    /// Advance a single lane (the match-only update ablation, and the
    /// vpred per-entry protocol where each load touches one slot).
    #[inline]
    pub fn step(&mut self, lane: usize, bit: bool) {
        let b = usize::from(bit);
        let s = self.states[lane] as usize;
        self.states[lane] = match &self.table {
            BatchTable::U8(t) => u32::from(t[(s << 1) | b]),
            BatchTable::U16(t) => u32::from(t[(s << 1) | b]),
            BatchTable::U32(t) => t[(s << 1) | b],
        };
    }

    /// The Moore output (prediction) of one lane's current state.
    #[must_use]
    #[inline]
    pub fn output(&self, lane: usize) -> bool {
        let r = self.states[lane] as usize;
        (self.out_bits[r >> 6] >> (r & 63)) & 1 == 1
    }

    /// One lane's current state index, in its own machine's numbering.
    #[must_use]
    #[inline]
    pub fn state(&self, lane: usize) -> u32 {
        self.states[lane] - self.row_offsets[lane]
    }

    /// Reset one lane to its machine's start state.
    pub fn reset(&mut self, lane: usize) {
        self.states[lane] = self.starts[lane];
    }

    /// Reset every lane to its start state.
    pub fn reset_all(&mut self) {
        self.states.copy_from_slice(&self.starts);
    }

    /// Total bytes of shared table + bitmap storage (lanes add the
    /// per-lane state/start/base words on top).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        let t = match &self.table {
            BatchTable::U8(t) => t.len(),
            BatchTable::U16(t) => 2 * t.len(),
            BatchTable::U32(t) => 4 * t.len(),
        };
        t + 8 * self.out_bits.len()
    }
}
