//! The differential suite pinning the compiled backend bit-identical to
//! the interpreted walk.
//!
//! Three layers:
//! 1. Designed machines: every workload in the testkit matrix × every
//!    history length, full prediction/update/final-state streams.
//! 2. Adversarial machines: proptest-generated DFAs (unreachable
//!    states, self-loops, `u8` boundary, `u16` spill) driven by random
//!    bit streams, plus compile→decompile and byte round-trips.
//! 3. Batch lanes: the SoA evaluator against per-instance interpreters
//!    under the paper's update-all protocol.

use fsmgen::Designer;
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_exec::{BatchEvaluator, CompiledMachine, CompiledPredictor, TableWidth};
use fsmgen_testkit::{strategies, workload_matrix, HISTORIES};
use proptest::prelude::*;
use std::sync::Arc;

/// Drive both backends through the same outcome stream and assert every
/// observable — prediction before each update, state after it — agrees.
fn assert_lockstep(dfa: &Dfa, bits: &[bool], label: &str) {
    let compiled =
        CompiledMachine::compile(dfa).unwrap_or_else(|e| panic!("{label}: compile failed: {e}"));
    let mut interp = MoorePredictor::new(dfa.clone());
    let mut fast = CompiledPredictor::new(compiled);
    assert_eq!(interp.state(), fast.state(), "{label}: start state");
    for (i, &bit) in bits.iter().enumerate() {
        assert_eq!(
            interp.predict(),
            fast.predict(),
            "{label}: prediction diverged at step {i}"
        );
        let ref_correct = interp.predict_and_update(bit);
        let fast_correct = fast.predict_and_update(bit);
        assert_eq!(
            ref_correct, fast_correct,
            "{label}: correctness diverged at step {i}"
        );
        assert_eq!(
            interp.state(),
            fast.state(),
            "{label}: state diverged after step {i}"
        );
    }
}

#[test]
fn designed_machines_lockstep_across_workload_matrix() {
    let mut checked = 0;
    for (name, trace) in workload_matrix() {
        for history in HISTORIES {
            let design = Designer::new(history)
                .design_from_trace(&trace)
                .unwrap_or_else(|e| panic!("{name}/h{history}: design failed: {e}"));
            let bits: Vec<bool> = trace.iter().collect();
            assert_lockstep(design.fsm(), &bits, &format!("{name}/h{history}"));
            checked += 1;
        }
    }
    assert_eq!(checked, workload_matrix().len() * HISTORIES.len());
}

#[test]
fn designed_machines_lockstep_on_cross_workload_traffic() {
    // Run each designed machine on every *other* workload's bits: the
    // compiled table must agree even far from the training distribution.
    for (name, trace) in workload_matrix() {
        let design = Designer::new(3)
            .design_from_trace(&trace)
            .unwrap_or_else(|e| panic!("{name}: design failed: {e}"));
        for (other, bits) in workload_matrix() {
            let bits: Vec<bool> = bits.iter().collect();
            assert_lockstep(design.fsm(), &bits, &format!("{name} on {other}"));
        }
    }
}

#[test]
fn batch_evaluator_lockstep_under_update_all() {
    // One lane per (workload, history) design, all advanced on every
    // bit — the §7.6 update-all protocol the bpred simulator runs.
    let mut machines = Vec::new();
    let mut interps = Vec::new();
    for (name, trace) in workload_matrix() {
        for history in HISTORIES {
            let design = Designer::new(history)
                .design_from_trace(&trace)
                .unwrap_or_else(|e| panic!("{name}/h{history}: design failed: {e}"));
            interps.push(MoorePredictor::new(design.fsm().clone()));
            machines.push(Arc::new(
                CompiledMachine::compile(design.fsm()).unwrap_or_else(|e| panic!("{e}")),
            ));
        }
    }
    let mut batch = BatchEvaluator::new(&machines);
    assert_eq!(batch.len(), interps.len());
    let bits: Vec<bool> = fsmgen_testkit::biased_trace(400).iter().collect();
    for &bit in &bits {
        for (lane, interp) in interps.iter().enumerate() {
            assert_eq!(batch.output(lane), interp.predict());
        }
        batch.step_all(bit);
        for interp in &mut interps {
            interp.update(bit);
        }
    }
    for (lane, interp) in interps.iter().enumerate() {
        assert_eq!(batch.state(lane), interp.state());
    }
}

proptest! {
    #[test]
    fn adversarial_machines_lockstep(
        dfa in strategies::adversarial_dfa(),
        bits in strategies::bit_vec(0..96),
    ) {
        let compiled = CompiledMachine::compile(&dfa).unwrap();
        let mut interp = MoorePredictor::new(dfa.clone());
        let mut fast = CompiledPredictor::new(compiled);
        for &bit in &bits {
            prop_assert_eq!(interp.predict(), fast.predict());
            interp.update(bit);
            fast.update(bit);
            prop_assert_eq!(interp.state(), fast.state());
        }
    }

    #[test]
    fn adversarial_machines_round_trip_through_the_table(
        dfa in strategies::adversarial_dfa(),
    ) {
        let compiled = CompiledMachine::compile(&dfa).unwrap();
        // Lowering is a 1:1 re-encoding: no trimming, no renumbering.
        let back = compiled.decompile();
        prop_assert_eq!(back.transitions(), dfa.transitions());
        prop_assert_eq!(back.outputs(), dfa.outputs());
        prop_assert_eq!(back.start(), dfa.start());
        // Width selection is exact at the boundary.
        let expect = if dfa.num_states() <= 256 { TableWidth::U8 } else { TableWidth::U16 };
        prop_assert_eq!(compiled.width(), expect);
    }

    #[test]
    fn adversarial_machines_round_trip_through_bytes(
        dfa in strategies::adversarial_dfa(),
    ) {
        let compiled = CompiledMachine::compile(&dfa).unwrap();
        let bytes = compiled.to_bytes();
        let decoded = CompiledMachine::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &compiled);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn designed_machines_lockstep_on_random_traces(
        bits in strategies::design_bits(),
        drive in strategies::bit_vec(0..200),
    ) {
        let trace = fsmgen_traces::BitTrace::from_iter(bits);
        for history in HISTORIES {
            if let Ok(design) = Designer::new(history).design_from_trace(&trace) {
                assert_lockstep(design.fsm(), &drive, &format!("proptest/h{history}"));
            }
        }
    }

    #[test]
    fn batch_single_lane_stepping_matches_interpreter(
        dfa in strategies::adversarial_dfa(),
        bits in strategies::bit_vec(1..64),
        lane_count in 1usize..6,
    ) {
        let machine = Arc::new(CompiledMachine::compile(&dfa).unwrap());
        let mut batch = BatchEvaluator::uniform(&machine, lane_count);
        let mut interps: Vec<MoorePredictor> =
            (0..lane_count).map(|_| MoorePredictor::new(dfa.clone())).collect();
        // Interleave whole-batch and single-lane updates.
        for (i, &bit) in bits.iter().enumerate() {
            let lane = i % lane_count;
            batch.step(lane, bit);
            interps[lane].update(bit);
            if i % 3 == 0 {
                batch.step_all(!bit);
                for interp in &mut interps {
                    interp.update(!bit);
                }
            }
        }
        for (lane, interp) in interps.iter().enumerate() {
            prop_assert_eq!(batch.state(lane), interp.state());
            prop_assert_eq!(batch.output(lane), interp.predict());
        }
    }
}
