//! Property-based tests for the genetic search: validity of outputs,
//! determinism, and fitness consistency on arbitrary traces.

use fsmgen_evolve::{evolve, replay_accuracy, EvolveConfig};
use fsmgen_traces::BitTrace;
use proptest::prelude::*;

fn quick(states: usize, seed: u64) -> EvolveConfig {
    EvolveConfig {
        states,
        population: 16,
        generations: 15,
        seed,
        ..EvolveConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any successful run yields a valid machine whose replay accuracy is
    /// in range and close to the reported fitness.
    #[test]
    fn evolved_machines_are_valid(
        bits in proptest::collection::vec(any::<bool>(), 20..150),
        states in 2usize..6,
        seed in 0u64..100,
    ) {
        let trace: BitTrace = bits.into_iter().collect();
        let r = evolve(&trace, &quick(states, seed)).expect("valid config");
        prop_assert!(r.machine.num_states() >= 1);
        prop_assert!(r.machine.num_states() <= states);
        prop_assert!((0.0..=1.0).contains(&r.accuracy));
        let replay = replay_accuracy(&r.machine, &trace);
        prop_assert!((replay - r.accuracy).abs() < 1e-9,
            "replay {replay} vs fitness {}", r.accuracy);
    }

    /// Fitness history is monotone (elitism) and ends at the reported
    /// accuracy.
    #[test]
    fn history_monotone(
        bits in proptest::collection::vec(any::<bool>(), 20..120),
        seed in 0u64..50,
    ) {
        let trace: BitTrace = bits.into_iter().collect();
        let r = evolve(&trace, &quick(3, seed)).expect("valid config");
        for w in r.history.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
        prop_assert_eq!(*r.history.last().expect("non-empty"), r.accuracy);
    }

    /// Equal seeds reproduce the exact result.
    #[test]
    fn determinism(bits in proptest::collection::vec(any::<bool>(), 20..100)) {
        let trace: BitTrace = bits.into_iter().collect();
        let a = evolve(&trace, &quick(3, 42)).expect("valid");
        let b = evolve(&trace, &quick(3, 42)).expect("valid");
        prop_assert_eq!(a.machine, b.machine);
        prop_assert_eq!(a.accuracy, b.accuracy);
    }
}
