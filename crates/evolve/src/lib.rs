//! Evolutionary search over Moore-machine predictors.
//!
//! §3.2 of the FSM-predictor paper positions Emer & Gloy's genetic
//! programming approach as the closest prior work: "Using genetic
//! programming techniques, they search for new predictors by performing
//! crossovers and mutating recent candidates ... In contrast, our
//! approach automatically builds FSM predictors from behavioral traces,
//! without searching."
//!
//! This crate implements a faithful miniature of that searching baseline
//! specialised to the paper's design point — fixed-size Moore machines
//! over the binary alphabet — so the two philosophies can be compared
//! head-to-head on the same traces (see the `ablations` bench and the
//! `evolve_vs_design` example). The comparison reproduces the paper's
//! framing: for small machines the constructive flow matches or beats
//! hours of search in milliseconds, while search can occasionally shave
//! a state because it is not tied to the history-language structure.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fsmgen_automata::Dfa;
use fsmgen_traces::BitTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the genetic search.
#[derive(Debug, Clone, PartialEq)]
pub struct EvolveConfig {
    /// Number of states in every candidate machine.
    pub states: usize,
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// RNG seed (the search is deterministic given the seed).
    pub seed: u64,
}

impl Default for EvolveConfig {
    fn default() -> Self {
        EvolveConfig {
            states: 4,
            population: 64,
            generations: 120,
            tournament: 4,
            mutation_rate: 0.08,
            elites: 2,
            seed: 0xEE01,
        }
    }
}

impl EvolveConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.states == 0 || self.states > 256 {
            return Err(format!("states must be in 1..=256, got {}", self.states));
        }
        if self.population < 2 {
            return Err("population must be at least 2".to_string());
        }
        if self.tournament == 0 || self.tournament > self.population {
            return Err("tournament size must be in 1..=population".to_string());
        }
        if self.elites >= self.population {
            return Err("elites must be smaller than the population".to_string());
        }
        if !(0.0..=1.0).contains(&self.mutation_rate) {
            return Err("mutation rate must be in [0, 1]".to_string());
        }
        Ok(())
    }
}

/// One candidate machine: flattened transitions plus per-state outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Genome {
    /// `trans[2*s + input]` = next state.
    trans: Vec<u32>,
    outputs: Vec<bool>,
}

impl Genome {
    fn random(states: usize, rng: &mut StdRng) -> Self {
        Genome {
            trans: (0..states * 2)
                .map(|_| rng.random_range(0..states as u32))
                .collect(),
            outputs: (0..states).map(|_| rng.random_bool(0.5)).collect(),
        }
    }

    fn to_dfa(&self) -> Dfa {
        let states = self.outputs.len();
        let trans: Vec<[u32; 2]> = (0..states)
            .map(|s| [self.trans[2 * s], self.trans[2 * s + 1]])
            .collect();
        Dfa::from_parts(trans, self.outputs.clone(), 0)
    }

    /// Prediction accuracy over the trace: the machine's output in the
    /// current state is its prediction of the next bit.
    fn fitness(&self, trace: &BitTrace) -> f64 {
        let mut state = 0usize;
        let mut correct = 0usize;
        for bit in trace {
            if self.outputs[state] == bit {
                correct += 1;
            }
            state = self.trans[2 * state + usize::from(bit)] as usize;
        }
        correct as f64 / trace.len().max(1) as f64
    }

    /// Uniform state-wise crossover.
    fn crossover(&self, other: &Genome, rng: &mut StdRng) -> Genome {
        let states = self.outputs.len();
        let mut child = self.clone();
        for s in 0..states {
            if rng.random_bool(0.5) {
                child.trans[2 * s] = other.trans[2 * s];
                child.trans[2 * s + 1] = other.trans[2 * s + 1];
                child.outputs[s] = other.outputs[s];
            }
        }
        child
    }

    fn mutate(&mut self, rate: f64, rng: &mut StdRng) {
        let states = self.outputs.len() as u32;
        for t in &mut self.trans {
            if rng.random_bool(rate) {
                *t = rng.random_range(0..states);
            }
        }
        for o in &mut self.outputs {
            if rng.random_bool(rate) {
                *o = !*o;
            }
        }
    }
}

/// The result of one evolutionary run.
#[derive(Debug, Clone)]
pub struct Evolved {
    /// The best machine found.
    pub machine: Dfa,
    /// Its training-trace prediction accuracy.
    pub accuracy: f64,
    /// Best accuracy after each generation (monotone non-decreasing).
    pub history: Vec<f64>,
}

/// Runs the genetic search for a Moore predictor fitting `trace`.
///
/// # Errors
///
/// Returns the validation message when `config` is invalid or the trace
/// is empty.
///
/// # Examples
///
/// ```
/// use fsmgen_evolve::{evolve, EvolveConfig};
/// use fsmgen_traces::BitTrace;
///
/// // Alternating behaviour is learnable by a 2-state machine.
/// let trace: BitTrace = "0101 0101 0101 0101 0101 0101".parse().unwrap();
/// let result = evolve(&trace, &EvolveConfig {
///     states: 2,
///     generations: 60,
///     ..EvolveConfig::default()
/// })?;
/// assert!(result.accuracy > 0.9);
/// # Ok::<(), String>(())
/// ```
pub fn evolve(trace: &BitTrace, config: &EvolveConfig) -> Result<Evolved, String> {
    config.validate()?;
    if trace.is_empty() {
        return Err("cannot evolve against an empty trace".to_string());
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut population: Vec<(Genome, f64)> = (0..config.population)
        .map(|_| {
            let g = Genome::random(config.states, &mut rng);
            let f = g.fitness(trace);
            (g, f)
        })
        .collect();

    let mut history = Vec::with_capacity(config.generations);
    for _ in 0..config.generations {
        population.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
        history.push(population[0].1);

        let mut next: Vec<(Genome, f64)> = population[..config.elites].to_vec();
        while next.len() < config.population {
            let parent_a = tournament(&population, config.tournament, &mut rng);
            let parent_b = tournament(&population, config.tournament, &mut rng);
            let mut child = parent_a.crossover(parent_b, &mut rng);
            child.mutate(config.mutation_rate, &mut rng);
            let f = child.fitness(trace);
            next.push((child, f));
        }
        population = next;
    }
    population.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
    let (best, accuracy) = population.swap_remove(0);
    history.push(accuracy);
    Ok(Evolved {
        machine: best.to_dfa().minimized(),
        accuracy,
        history,
    })
}

fn tournament<'a>(population: &'a [(Genome, f64)], k: usize, rng: &mut StdRng) -> &'a Genome {
    let mut best: Option<&(Genome, f64)> = None;
    for _ in 0..k {
        let cand = &population[rng.random_range(0..population.len())];
        if best.is_none_or(|b| cand.1 > b.1) {
            best = Some(cand);
        }
    }
    &best.expect("k >= 1").0
}

/// Replays any machine over a trace, returning its prediction accuracy —
/// the shared metric for comparing evolved and constructively designed
/// predictors.
#[must_use]
pub fn replay_accuracy(machine: &Dfa, trace: &BitTrace) -> f64 {
    let mut state = machine.start();
    let mut correct = 0usize;
    for bit in trace {
        if machine.output(state) == bit {
            correct += 1;
        }
        state = machine.step(state, bit);
    }
    correct as f64 / trace.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(states: usize) -> EvolveConfig {
        EvolveConfig {
            states,
            population: 32,
            generations: 60,
            ..EvolveConfig::default()
        }
    }

    #[test]
    fn learns_constant_behaviour() {
        let trace: BitTrace = "1".repeat(200).parse().unwrap();
        let r = evolve(&trace, &quick(2)).unwrap();
        assert!(r.accuracy > 0.99, "accuracy {}", r.accuracy);
    }

    #[test]
    fn learns_alternation() {
        let trace: BitTrace = "01".repeat(150).parse().unwrap();
        let r = evolve(&trace, &quick(2)).unwrap();
        assert!(r.accuracy > 0.95, "accuracy {}", r.accuracy);
        // The minimized solution is the 2-state flip-flop.
        assert!(r.machine.num_states() <= 2);
    }

    #[test]
    fn fitness_history_is_monotone() {
        let trace: BitTrace = "0011".repeat(80).parse().unwrap();
        let r = evolve(&trace, &quick(4)).unwrap();
        for w in r.history.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "elitism keeps the best: {w:?}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let trace: BitTrace = "0110".repeat(60).parse().unwrap();
        let a = evolve(&trace, &quick(3)).unwrap();
        let b = evolve(&trace, &quick(3)).unwrap();
        assert_eq!(a.machine, b.machine);
        let c = evolve(
            &trace,
            &EvolveConfig {
                seed: 7,
                ..quick(3)
            },
        )
        .unwrap();
        // Different seed may find a different (possibly equal) machine,
        // but the call must succeed.
        let _ = c;
    }

    #[test]
    fn invalid_configs_rejected() {
        let trace: BitTrace = "01".parse().unwrap();
        for bad in [
            EvolveConfig {
                states: 0,
                ..quick(2)
            },
            EvolveConfig {
                population: 1,
                ..quick(2)
            },
            EvolveConfig {
                tournament: 0,
                ..quick(2)
            },
            EvolveConfig {
                elites: 32,
                ..quick(2)
            },
            EvolveConfig {
                mutation_rate: 1.5,
                ..quick(2)
            },
        ] {
            assert!(evolve(&trace, &bad).is_err(), "{bad:?} should fail");
        }
        assert!(evolve(&BitTrace::new(), &quick(2)).is_err());
    }

    #[test]
    fn replay_matches_fitness_metric() {
        let trace: BitTrace = "0101".repeat(50).parse().unwrap();
        let r = evolve(&trace, &quick(2)).unwrap();
        let replayed = replay_accuracy(&r.machine, &trace);
        assert!(
            (replayed - r.accuracy).abs() < 0.02,
            "replay {replayed} vs fitness {}",
            r.accuracy
        );
    }
}
