//! Benchmarks the fsmgen-farm batch engine against a serial design loop
//! on a fleet-sized workload: the full branch-benchmark suite crossed
//! with several history lengths, designed repeatedly as happens across
//! input sets, sweep passes and re-runs of a customization campaign.
//!
//! What is measured, honestly: the farm's wall-clock win on this batch
//! comes from two independent mechanisms — the work-stealing pool
//! (scales with hardware threads; a wash on a single-core host) and the
//! content-addressed design cache (repeated configurations are designed
//! once and replayed from the cache regardless of core count). The
//! headline comparison below designs the same 72-job batch (6 benchmarks
//! × 3 histories × 4 passes) serially from scratch versus through a
//! 4-worker farm, and writes the farm's metrics (cache hit rate, p50/p95
//! latency, throughput) to `target/figures/farm_metrics.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen::Designer;
use fsmgen_bench::{banner, quick_mode, write_artifact};
use fsmgen_farm::{DesignJob, Farm, FarmConfig};
use fsmgen_traces::BitTrace;
use fsmgen_workloads::{BranchBenchmark, Input};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const HISTORIES: [usize; 3] = [2, 4, 6];
const PASSES: usize = 4;
const WORKERS: usize = 4;

/// Taken-bit traces for the whole branch suite, shared across jobs.
fn suite_traces(len: usize) -> Vec<(&'static str, Arc<BitTrace>)> {
    BranchBenchmark::ALL
        .into_iter()
        .map(|b| {
            let bits: BitTrace = b.trace(Input::TRAIN, len).iter().map(|e| e.taken).collect();
            (b.name(), Arc::new(bits))
        })
        .collect()
}

/// The fleet batch: every (benchmark, history) pair, `passes` times over
/// — the same shape a sweep or a multi-input campaign produces.
fn fleet_jobs(traces: &[(&'static str, Arc<BitTrace>)], passes: usize) -> Vec<DesignJob> {
    let mut jobs = Vec::new();
    for _ in 0..passes {
        for (_, trace) in traces {
            for &h in &HISTORIES {
                jobs.push(DesignJob::from_trace(
                    jobs.len() as u64,
                    Arc::clone(trace),
                    Designer::new(h),
                ));
            }
        }
    }
    jobs
}

/// Designs every job serially, no cache — the pre-farm baseline.
fn design_serially(jobs: &[DesignJob]) -> usize {
    jobs.iter()
        .map(|job| {
            let fsmgen_farm::JobInput::Trace(trace) = &job.input else {
                unreachable!("fleet jobs are trace jobs")
            };
            job.designer
                .design_from_trace(trace)
                .expect("fleet design must succeed")
                .fsm()
                .num_states()
        })
        .sum()
}

fn headline_comparison(len: usize) {
    banner("farm: serial vs parallel+cached fleet design");
    let traces = suite_traces(len);
    let jobs = fleet_jobs(&traces, PASSES);
    println!(
        "batch: {} jobs ({} benchmarks x {} histories x {} passes), {} trace bits each",
        jobs.len(),
        traces.len(),
        HISTORIES.len(),
        PASSES,
        len
    );

    let t0 = Instant::now();
    let serial_states = design_serially(&jobs);
    let serial = t0.elapsed();

    let farm = Farm::new(FarmConfig {
        workers: WORKERS,
        cache_capacity: 256,
    });
    let t0 = Instant::now();
    let report = farm.design_batch(fleet_jobs(&traces, PASSES));
    let parallel = t0.elapsed();

    // The farm must produce exactly the serial designs (determinism).
    let farm_states: usize = report
        .outcomes
        .iter()
        .map(|o| {
            o.result
                .as_ref()
                .expect("fleet design must succeed")
                .fsm()
                .num_states()
        })
        .sum();
    assert_eq!(
        serial_states, farm_states,
        "farm designs diverge from serial"
    );

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    println!(
        "serial:       {:>9.1} ms   ({} designs from scratch)",
        serial.as_secs_f64() * 1e3,
        jobs.len()
    );
    println!(
        "farm ({WORKERS} workers): {:>7.1} ms   ({} computed, {} cache hits)",
        parallel.as_secs_f64() * 1e3,
        report.metrics.cache.misses,
        report.metrics.cache.hits
    );
    println!("speedup:      {speedup:>9.2}x  (pool scales with cores; cache wins even on one)");
    println!("{}", report.metrics);
    write_artifact("farm_metrics.json", &report.metrics.to_json());
    assert!(
        speedup >= 2.0,
        "farm should be at least 2x serial on the repeated fleet batch, got {speedup:.2}x"
    );
}

/// Pins the obs recorder's "near-zero overhead with no sink installed"
/// guarantee on this workload: the disabled fast path — one relaxed
/// atomic load per span or counter call — must cost at most 2% of one
/// serial design even under a generous bound on call sites crossed.
fn disabled_obs_overhead(len: usize) {
    banner("obs: disabled-recorder overhead on the serial design path");
    assert!(
        !fsmgen_obs::enabled(),
        "no obs sink may be installed while measuring the disabled path"
    );
    let traces = suite_traces(len);
    let jobs = fleet_jobs(&traces, 1);

    // Per-design serial wall clock, instrumentation compiled in and
    // running its disabled fast path (as in every no-sink deployment).
    let t0 = Instant::now();
    black_box(design_serially(&jobs));
    let per_design = t0.elapsed().as_secs_f64() / jobs.len() as f64;

    // Direct cost of one disabled span + one disabled counter call.
    const CALLS: u64 = 1_000_000;
    let t0 = Instant::now();
    for _ in 0..CALLS {
        let _span = fsmgen_obs::span("bench-disabled");
        fsmgen_obs::counter("bench-disabled", "value", black_box(1));
    }
    let per_pair = t0.elapsed().as_secs_f64() / CALLS as f64;

    // One design crosses ~10 spans and ~15 counters; 64 span+counter
    // pairs is a generous upper bound on crossings per design.
    let bound = 64.0 * per_pair;
    let fraction = bound / per_design;
    println!(
        "per design: {:.3} ms serial, {:.1} ns per disabled span+counter pair,",
        per_design * 1e3,
        per_pair * 1e9
    );
    println!(
        "bounded overhead (64 pairs): {:.4} ms = {:.3}% of a design",
        bound * 1e3,
        fraction * 100.0
    );
    assert!(
        fraction <= 0.02,
        "disabled obs overhead bound {:.3}% exceeds the 2% budget",
        fraction * 100.0
    );
}

fn bench_farm(c: &mut Criterion) {
    let len = if quick_mode() { 4_000 } else { 20_000 };
    headline_comparison(len);
    disabled_obs_overhead(len);

    // Criterion view of the same contrast on one pass of the suite (no
    // repeats, so this isolates pool-vs-serial without the cache's help)
    // plus the fully-cached batch (pure cache replay throughput).
    let traces = suite_traces(len / 2);
    let mut group = c.benchmark_group("farm/fleet_18job");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(design_serially(&fleet_jobs(&traces, 1))))
    });
    group.bench_function("farm_4workers_cold", |b| {
        b.iter(|| {
            let farm = Farm::new(FarmConfig {
                workers: WORKERS,
                cache_capacity: 0, // no cache: pure pool
            });
            black_box(farm.design_batch(fleet_jobs(&traces, 1)).metrics.succeeded)
        })
    });
    let warm = Farm::new(FarmConfig {
        workers: WORKERS,
        cache_capacity: 256,
    });
    let _ = warm.design_batch(fleet_jobs(&traces, 1));
    group.bench_function("farm_4workers_warm_cache", |b| {
        b.iter(|| black_box(warm.design_batch(fleet_jobs(&traces, 1)).metrics.succeeded))
    });
    group.finish();
}

criterion_group!(farm_benches, bench_farm);
criterion_main!(farm_benches);
