//! Regenerates Figure 5 (misprediction rate vs estimated area: XScale,
//! gshare, LGC, custom-same and custom-diff on six benchmarks) and
//! benchmarks the predictor simulation kernels.
//!
//! The custom-FSM areas are priced with the linear model fitted by the
//! Figure 4 experiment, exactly as §7.4 prescribes.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen_bench::{banner, quick_mode};
use fsmgen_bpred::{simulate, CustomTrainer, Gshare, LocalGlobalChooser, XScaleBtb};
use fsmgen_experiments::fig4::{self, Fig4Config};
use fsmgen_experiments::fig5::{self, Fig5Config};
use fsmgen_experiments::headlines;
use fsmgen_experiments::report::{fig5_csv, fig5_table};
use fsmgen_workloads::{BranchBenchmark, Input};
use std::hint::black_box;

fn regenerate() {
    banner("Figure 5: misprediction rate vs estimated area");
    let quick = quick_mode();
    // First fit the area line from the Figure 4 population.
    let fig4_cfg = if quick {
        Fig4Config::quick()
    } else {
        Fig4Config::default()
    };
    let area = fig4::run(&fig4_cfg);
    println!(
        "using area model from Figure 4: area = {:.2} * states + {:.2}\n",
        area.slope, area.intercept
    );
    let mut config = if quick {
        Fig5Config::quick()
    } else {
        Fig5Config::default()
    };
    config.area_model = area.model();
    for panel in fig5::run(&config) {
        println!("{}", fig5_table(&panel));
        fsmgen_bench::write_artifact(&format!("fig5_{}.csv", panel.benchmark), &fig5_csv(&panel));
    }

    banner("Headline claims (§6.4 / §7.5) verified on this substrate");
    let claims = headlines::run(&headlines::HeadlineConfig {
        trace_len: config.trace_len,
    });
    println!("{}", headlines::table(&claims));
}

fn bench_kernels(c: &mut Criterion) {
    let trace = BranchBenchmark::Vortex.trace(Input::EVAL, 30_000);

    let mut group = c.benchmark_group("fig5/simulate_30k_branches");
    group.bench_function("xscale", |b| {
        b.iter(|| {
            let mut p = XScaleBtb::xscale();
            black_box(simulate(&mut p, black_box(&trace)))
        })
    });
    group.bench_function("gshare_4096", |b| {
        b.iter(|| {
            let mut p = Gshare::new(4096);
            black_box(simulate(&mut p, black_box(&trace)))
        })
    });
    group.bench_function("lgc_512", |b| {
        b.iter(|| {
            let mut p = LocalGlobalChooser::new(512, 10, 4096);
            black_box(simulate(&mut p, black_box(&trace)))
        })
    });

    let designs = CustomTrainer::paper_default().train(&trace, 4);
    group.bench_function("custom_4fsm", |b| {
        b.iter(|| {
            let mut p = designs.architecture(4);
            black_box(simulate(&mut p, black_box(&trace)))
        })
    });
    group.finish();

    c.bench_function("fig5/train_4_custom_fsms_h9", |b| {
        b.iter(|| {
            black_box(
                CustomTrainer::paper_default()
                    .train(black_box(&trace), 4)
                    .len(),
            )
        })
    });
}

fn benches(c: &mut Criterion) {
    regenerate();
    bench_kernels(c);
}

criterion_group!(fig5_benches, benches);
criterion_main!(fig5_benches);
