//! Benchmarks the compiled transition-table execution engine against the
//! interpreted `MoorePredictor` reference on a Figure 5-style workload:
//! a portfolio of machines designed from the branch suite's training
//! traces at several history lengths, each advanced through the
//! concatenated evaluation taken-bit stream.
//!
//! Three execution strategies do the same work — every lane's machine
//! advanced through every event:
//!
//! - **interpreted** — the status quo: one [`MoorePredictor`] walked
//!   serially per lane, exactly how `simulate`, `run_confidence` and
//!   design scoring drive machines today. Each step's table load depends
//!   on the previous state, so the walk is latency-bound.
//! - **compiled** — the same serial walk on [`CompiledPredictor`]'s
//!   dense table: fewer indirections per step, same dependency chain.
//! - **batched** — [`BatchEvaluator::advance_all`] sweeps all lanes
//!   from one struct-of-arrays table, keeping every lane's (independent)
//!   state chain in flight at once and retiring several events per
//!   fused-table gather: throughput-bound.
//!
//! The headline writes `target/figures/BENCH_exec.json` and asserts the
//! batched engine is at least 5x the interpreted baseline in lane-steps
//! per second (10x is the design target). Every strategy returns the
//! same final-state checksum, re-pinning bit-identity where the
//! throughput claim is made.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen::Designer;
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_bench::{banner, quick_mode, write_artifact};
use fsmgen_exec::{BatchEvaluator, CompiledMachine, CompiledPredictor};
use fsmgen_traces::BitTrace;
use fsmgen_workloads::{BranchBenchmark, Input};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Lanes in the evaluated bank: the size of a candidate portfolio swept
/// during customization (every benchmark's machine at every history).
const LANES: usize = 48;

/// History lengths of the designed portfolio.
const HISTORIES: [usize; 4] = [2, 4, 6, 8];

/// Timed repetitions per strategy; the best run is reported, which is
/// the standard guard against scheduler noise on a shared host.
const REPS: usize = 5;

/// Designs one machine per (branch benchmark, history) pair from TRAIN
/// traces and returns them with the concatenated EVAL taken-bit stream.
fn fig5_mix(len: usize) -> (Vec<Arc<Dfa>>, Vec<bool>) {
    let mut machines = Vec::new();
    let mut events = Vec::new();
    for bench in BranchBenchmark::ALL {
        let train: BitTrace = bench
            .trace(Input::TRAIN, len)
            .iter()
            .map(|e| e.taken)
            .collect();
        for h in HISTORIES {
            let design = Designer::new(h)
                .design_from_trace(&train)
                .expect("suite design must succeed");
            machines.push(Arc::new(design.fsm().clone()));
        }
        events.extend(bench.trace(Input::EVAL, len).iter().map(|e| e.taken));
    }
    (machines, events)
}

/// Round-robins the designed machines across the bank's lanes.
fn lane_machines(machines: &[Arc<Dfa>]) -> Vec<Arc<Dfa>> {
    (0..LANES)
        .map(|i| Arc::clone(&machines[i % machines.len()]))
        .collect()
}

/// Walks one interpreted predictor per lane through the whole event
/// stream, serially — the deployment status quo. Returns the final-state
/// checksum.
fn run_interpreted(lanes: &[Arc<Dfa>], events: &[bool]) -> u64 {
    let mut sum = 0u64;
    for machine in lanes {
        let mut p = MoorePredictor::new(Arc::clone(machine));
        for &bit in events {
            p.update(bit);
        }
        sum += u64::from(p.state());
    }
    sum
}

/// The same serial walk on the compiled single-stepper.
fn run_compiled(lanes: &[Arc<CompiledMachine>], events: &[bool]) -> u64 {
    let mut sum = 0u64;
    for machine in lanes {
        let mut p = CompiledPredictor::from_shared(Arc::clone(machine));
        for &bit in events {
            p.update(bit);
        }
        sum += u64::from(p.state());
    }
    sum
}

/// Advances the whole bank through the stream via the bulk entry point
/// (fused-table gathers under the hood). Build cost is inside the timed
/// region: compiling the batch is part of this strategy's price.
fn run_batched(lanes: &[Arc<CompiledMachine>], events: &[bool]) -> u64 {
    let mut bank = BatchEvaluator::new(lanes);
    bank.advance_all(events);
    (0..bank.len()).map(|l| u64::from(bank.state(l))).sum()
}

/// Best-of-`REPS` wall time of `run`, which must start from fresh state,
/// execute, and return the checksum every call.
fn best_secs(mut run: impl FnMut() -> u64, expect_sum: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let sum = black_box(run());
        best = best.min(t0.elapsed().as_secs_f64());
        assert_eq!(sum, expect_sum, "backends diverged mid-benchmark");
    }
    best
}

fn headline(len: usize) {
    banner("exec: interpreted vs compiled vs batched stepping");
    let (machines, events) = fig5_mix(len);
    let per_lane = lane_machines(&machines);
    let compiled: Vec<Arc<CompiledMachine>> = per_lane
        .iter()
        .map(|m| Arc::new(CompiledMachine::compile(m).expect("suite machines compile")))
        .collect();
    let steps = (events.len() * LANES) as f64;
    println!(
        "bank: {LANES} lanes over {} distinct machines, {} events ({:.1}M lane-steps)",
        machines.len(),
        events.len(),
        steps / 1e6
    );

    let expect_sum = run_interpreted(&per_lane, &events);
    let interpreted = best_secs(|| run_interpreted(&per_lane, &events), expect_sum);
    let compiled_secs = best_secs(|| run_compiled(&compiled, &events), expect_sum);
    let batched = best_secs(|| run_batched(&compiled, &events), expect_sum);

    let rate = |secs: f64| steps / secs.max(1e-12);
    let compiled_speedup = interpreted / compiled_secs.max(1e-12);
    let batched_speedup = interpreted / batched.max(1e-12);
    println!(
        "interpreted: {:>8.1} ms  ({:>7.1} M steps/s)",
        interpreted * 1e3,
        rate(interpreted) / 1e6
    );
    println!(
        "compiled:    {:>8.1} ms  ({:>7.1} M steps/s, {compiled_speedup:.1}x)",
        compiled_secs * 1e3,
        rate(compiled_secs) / 1e6
    );
    println!(
        "batched:     {:>8.1} ms  ({:>7.1} M steps/s, {batched_speedup:.1}x)",
        batched * 1e3,
        rate(batched) / 1e6
    );

    let json = format!(
        "{{\n  \"version\": 1,\n  \"kind\": \"exec_throughput\",\n  \"lanes\": {LANES},\n  \"machines\": {},\n  \"events\": {},\n  \"interpreted_steps_per_sec\": {:.0},\n  \"compiled_steps_per_sec\": {:.0},\n  \"batched_steps_per_sec\": {:.0},\n  \"compiled_speedup\": {compiled_speedup:.2},\n  \"batched_speedup\": {batched_speedup:.2}\n}}\n",
        machines.len(),
        events.len(),
        rate(interpreted),
        rate(compiled_secs),
        rate(batched),
    );
    write_artifact("BENCH_exec.json", &json);

    assert!(
        batched_speedup >= 5.0,
        "batched engine must be at least 5x interpreted, got {batched_speedup:.2}x"
    );
}

fn bench_exec(c: &mut Criterion) {
    let len = if quick_mode() { 6_000 } else { 30_000 };
    headline(len);

    // Criterion view of the same three strategies on a smaller slice so
    // regressions in any one engine are tracked independently.
    let (machines, events) = fig5_mix(len / 4);
    let per_lane = lane_machines(&machines);
    let compiled: Vec<Arc<CompiledMachine>> = per_lane
        .iter()
        .map(|m| Arc::new(CompiledMachine::compile(m).expect("suite machines compile")))
        .collect();
    let mut group = c.benchmark_group("exec/bank_48lane");
    group.sample_size(10);
    group.bench_function("interpreted", |b| {
        b.iter(|| black_box(run_interpreted(&per_lane, &events)))
    });
    group.bench_function("compiled", |b| {
        b.iter(|| black_box(run_compiled(&compiled, &events)))
    });
    group.bench_function("batched", |b| {
        b.iter(|| black_box(run_batched(&compiled, &events)))
    });
    group.finish();
}

criterion_group!(exec_benches, bench_exec);
criterion_main!(exec_benches);
