//! Benchmarks the sharded event-driven serve architecture against the
//! thread-per-connection baseline under a pipelined client swarm, and
//! publishes the service-level numbers the serve layer advertises.
//!
//! Both servers run in-process on loopback and are driven by the same
//! seeded `fsmgen loadgen` swarm (mixed design/stats/ping traffic over a
//! bounded trace pool, so the farm cache warms quickly and the contrast
//! isolates the connection-handling architecture, not design compute).
//! The event loop's edge on this workload is batched frame handling: one
//! `read` drains many pipelined frames, one `write` flushes many
//! responses, and N shard threads replace hundreds of parked connection
//! threads. The headline comparison writes sustained req/s, latency
//! percentiles and per-shard balance to `target/figures/BENCH_serve.json`
//! and gates the sharded architecture at >= 2x the threaded baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen_bench::{banner, quick_mode, write_artifact};
use fsmgen_serve::json::{self, Json};
use fsmgen_serve::{
    run_loadgen, Codec, LoadReport, LoadgenConfig, ServeConfig, Server, ServerHandle,
};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

const SHARDS: usize = 4;

/// An in-process server on a run thread, stopped via the handle.
struct Fixture {
    server: Arc<Server>,
    handle: ServerHandle,
    addr: String,
    thread: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Fixture {
    fn start(shards: usize) -> Fixture {
        let server = Arc::new(
            Server::bind(ServeConfig {
                shards,
                workers: 1,
                max_connections: 4096,
                queue_limit: 1 << 20,
                read_timeout: Duration::from_secs(30),
                ..ServeConfig::default()
            })
            .expect("bind"),
        );
        let handle = server.handle();
        let addr = server.local_addr().to_string();
        let runner = Arc::clone(&server);
        let thread = std::thread::spawn(move || runner.run());
        Fixture {
            server,
            handle,
            addr,
            thread: Some(thread),
        }
    }

    fn stop(mut self) -> Json {
        let stats = json::parse(&self.server.metrics_json()).expect("metrics JSON parses");
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            thread
                .join()
                .expect("server thread joins")
                .expect("server exits clean");
        }
        stats
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn swarm(addr: &str, connections: usize, requests_per_conn: usize) -> LoadgenConfig {
    LoadgenConfig {
        addr: addr.to_string(),
        connections,
        requests_per_conn,
        pipeline: 8,
        workers: 4,
        codec: Codec::BinaryV2,
        deadline: Duration::from_secs(120),
        ..LoadgenConfig::default()
    }
}

/// Runs the swarm `reps` times against one server and keeps the
/// best-throughput rep (first rep also warms the design cache, so the
/// sustained number reflects the steady state both architectures reach).
fn drive(addr: &str, connections: usize, requests_per_conn: usize, reps: usize) -> LoadReport {
    let mut best: Option<LoadReport> = None;
    for _ in 0..reps {
        let report = run_loadgen(&swarm(addr, connections, requests_per_conn));
        assert_eq!(report.connect_errors, 0, "swarm must connect: {report:?}");
        assert_eq!(report.aborted, 0, "swarm must finish: {report:?}");
        assert_eq!(
            report.responses_ok + report.responses_failed,
            report.requests_sent,
            "every pipelined request must be answered: {report:?}"
        );
        if best
            .as_ref()
            .is_none_or(|b| report.req_per_sec > b.req_per_sec)
        {
            best = Some(report);
        }
    }
    best.expect("at least one rep")
}

fn shard_balance(stats: &Json) -> Vec<u64> {
    stats
        .get("shards")
        .and_then(Json::as_array)
        .map(|entries| {
            entries
                .iter()
                .map(|e| e.get("requests_ok").and_then(Json::as_u64).unwrap_or(0))
                .collect()
        })
        .unwrap_or_default()
}

fn report_json(report: &LoadReport) -> String {
    format!(
        "{{\"req_per_sec\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
         \"responses_ok\": {}, \"responses_failed\": {}}}",
        report.req_per_sec,
        report.p50_us,
        report.p95_us,
        report.p99_us,
        report.responses_ok,
        report.responses_failed
    )
}

fn headline_comparison(connections: usize, requests_per_conn: usize, reps: usize) {
    banner("serve: threaded baseline vs sharded event loop");
    println!(
        "swarm: {connections} pipelined connections x {requests_per_conn} requests \
         (pipeline depth 8, binary v2), best of {reps} reps"
    );

    let threaded = Fixture::start(0);
    let threaded_report = drive(&threaded.addr, connections, requests_per_conn, reps);
    let threaded_stats = threaded.stop();
    assert!(
        shard_balance(&threaded_stats).is_empty(),
        "the threaded baseline reports no shard blocks"
    );

    let sharded = Fixture::start(SHARDS);
    let sharded_report = drive(&sharded.addr, connections, requests_per_conn, reps);
    let sharded_stats = sharded.stop();
    let balance = shard_balance(&sharded_stats);
    assert_eq!(balance.len(), SHARDS, "one counter block per shard");
    let busiest = balance.iter().copied().max().unwrap_or(0);
    let quietest = balance.iter().copied().min().unwrap_or(0);
    assert!(
        quietest > 0,
        "round-robin dispatch must load every shard: {balance:?}"
    );

    let speedup = sharded_report.req_per_sec / threaded_report.req_per_sec.max(1e-9);
    println!(
        "threaded (thread/conn): {:>9.0} req/s   p50 {:>5}us  p95 {:>5}us  p99 {:>5}us",
        threaded_report.req_per_sec,
        threaded_report.p50_us,
        threaded_report.p95_us,
        threaded_report.p99_us
    );
    println!(
        "sharded  ({SHARDS} shards):    {:>9.0} req/s   p50 {:>5}us  p95 {:>5}us  p99 {:>5}us",
        sharded_report.req_per_sec,
        sharded_report.p50_us,
        sharded_report.p95_us,
        sharded_report.p99_us
    );
    println!(
        "speedup: {speedup:.2}x   shard balance (requests_ok): {balance:?} \
         (busiest/quietest = {:.2})",
        busiest as f64 / quietest.max(1) as f64
    );

    let artifact = format!(
        "{{\n  \"version\": 1,\n  \"kind\": \"serve_throughput\",\n  \
         \"connections\": {connections},\n  \"requests_per_conn\": {requests_per_conn},\n  \
         \"pipeline\": 8,\n  \"shards\": {SHARDS},\n  \"threaded\": {},\n  \"sharded\": {},\n  \
         \"speedup\": {speedup:.3},\n  \"shard_requests_ok\": [{}]\n}}\n",
        report_json(&threaded_report),
        report_json(&sharded_report),
        balance
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    write_artifact("BENCH_serve.json", &artifact);
    assert!(
        speedup >= 2.0,
        "the sharded event loop must sustain at least 2x the threaded baseline \
         on the pipelined swarm, got {speedup:.2}x"
    );
}

fn bench_serve(c: &mut Criterion) {
    let (connections, requests_per_conn, reps) = if quick_mode() {
        (256, 32, 2)
    } else {
        (1000, 48, 3)
    };
    headline_comparison(connections, requests_per_conn, reps);

    // Criterion view of a small fixed swarm on both architectures — the
    // same contrast, sampled, without the 2x gate.
    let mut group = c.benchmark_group("serve/swarm_64conn");
    group.sample_size(10);
    let threaded = Fixture::start(0);
    let addr = threaded.addr.clone();
    group.bench_function("threaded", |b| {
        b.iter(|| black_box(run_loadgen(&swarm(&addr, 64, 16)).responses_ok))
    });
    drop(threaded);
    let sharded = Fixture::start(SHARDS);
    let addr = sharded.addr.clone();
    group.bench_function("sharded_4", |b| {
        b.iter(|| black_box(run_loadgen(&swarm(&addr, 64, 16)).responses_ok))
    });
    drop(sharded);
    group.finish();
}

criterion_group!(serve_benches, bench_serve);
criterion_main!(serve_benches);
