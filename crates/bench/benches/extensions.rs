//! Extension studies beyond the paper's evaluation, each anchored to a
//! passage of the paper:
//!
//! * **loop termination prediction** (§7.5 names it as the fix for
//!   `compress`'s dominant branch);
//! * **PPM** (§3.2 prior work, Chen et al.) as an idealized comparator;
//! * **evolutionary search vs the constructive flow** (§3.2, Emer & Gloy);
//! * **pipeline gating with FSM confidence** (§2.5, Manne et al.);
//! * **suite-customized counter FSMs for general purpose tables** (§1);
//! * **cache exclusion with designed FSMs** (§2.4, McFarling/Tyson);
//! * **net speculation benefit under squash vs re-execution recovery**
//!   (§6.2, Calder et al.).

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen::Designer;
use fsmgen_bench::banner;
use fsmgen_bpred::{
    design_suite_counter, simulate, simulate_gating, two_bit_counter_machine, BranchPredictor,
    Combining, CustomTrainer, FsmBranchConfidence, FsmTable, Gshare, LocalGlobalChooser,
    LoopAssisted, Ppm, ResettingConfidence, XScaleBtb,
};
use fsmgen_evolve::{evolve, replay_accuracy, EvolveConfig};
use fsmgen_traces::{BitTrace, BranchTrace, HistoryRegister};
use fsmgen_workloads::{BranchBenchmark, Input};
use std::hint::black_box;

const LEN: usize = 40_000;

fn loop_termination() {
    banner("Extension: loop termination prediction on compress (§7.5)");
    let eval = BranchBenchmark::Compress.trace(Input::EVAL, LEN);
    println!("{:<24} {:>10}", "predictor", "miss rate");
    let row = |p: &mut dyn BranchPredictor| {
        let r = simulate(p, &eval);
        println!("{:<24} {:>9.2}%", p.describe(), 100.0 * r.miss_rate());
    };
    row(&mut XScaleBtb::xscale());
    row(&mut LoopAssisted::new(XScaleBtb::xscale()));
    let train = BranchBenchmark::Compress.trace(Input::TRAIN, LEN);
    let designs = CustomTrainer::paper_default().train(&train, 4);
    row(&mut designs.architecture(4));
    // The paper's suggestion: customs for correlation + loop hardware for
    // the trip-count branch.
    row(&mut LoopAssisted::new(designs.architecture(4)));
}

fn ppm_comparison() {
    banner("Extension: idealized PPM (Chen et al., §3.2) vs tables and customs");
    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "xscale", "gshare4k", "combin.", "ppm-o8", "custom-6"
    );
    for bench in BranchBenchmark::ALL {
        let train = bench.trace(Input::TRAIN, LEN);
        let eval = bench.trace(Input::EVAL, LEN);
        let designs = CustomTrainer::paper_default().train(&train, 6);
        let rates = [
            simulate(&mut XScaleBtb::xscale(), &eval).miss_rate(),
            simulate(&mut Gshare::new(4096), &eval).miss_rate(),
            simulate(&mut Combining::new(1024, 4096, 1024), &eval).miss_rate(),
            simulate(&mut Ppm::new(8), &eval).miss_rate(),
            simulate(&mut designs.architecture(6), &eval).miss_rate(),
        ];
        println!(
            "{:<12} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}%",
            bench.name(),
            100.0 * rates[0],
            100.0 * rates[1],
            100.0 * rates[2],
            100.0 * rates[3],
            100.0 * rates[4]
        );
    }
}

fn evolution_comparison() {
    banner("Extension: genetic search (Emer & Gloy style, §3.2) vs the design flow");
    println!(
        "{:<10} {:>16} {:>16}",
        "trace", "designed acc", "evolved acc"
    );
    for bench in [BranchBenchmark::Ijpeg, BranchBenchmark::Compress] {
        let bits: BitTrace = bench
            .trace(Input::TRAIN, 20_000)
            .iter()
            .map(|e| e.taken)
            .collect();
        let design = Designer::new(6)
            .design_from_trace(&bits)
            .expect("long trace");
        let evolved = evolve(
            &bits,
            &EvolveConfig {
                states: design.fsm().num_states().max(2),
                generations: 80,
                ..EvolveConfig::default()
            },
        )
        .expect("valid config");
        println!(
            "{:<10} {:>13.1}% ({:>2}st) {:>10.1}% ({:>2}st)",
            bench.name(),
            100.0 * replay_accuracy(design.fsm(), &bits),
            design.fsm().num_states(),
            100.0 * evolved.accuracy,
            evolved.machine.num_states()
        );
    }
}

fn gating_study() {
    banner("Extension: pipeline gating with FSM confidence (§2.5)");
    let train = BranchBenchmark::Vortex.trace(Input::TRAIN, LEN);
    let eval = BranchBenchmark::Vortex.trace(Input::EVAL, LEN);

    // Train the FSM on the baseline's per-branch correctness stream.
    let mut predictor = XScaleBtb::xscale();
    let mut model = fsmgen::MarkovModel::new(6);
    let mut hists: std::collections::BTreeMap<u64, HistoryRegister> =
        std::collections::BTreeMap::new();
    for e in &train {
        let correct = predictor.predict(e.pc) == e.taken;
        let h = hists.entry(e.pc).or_insert_with(|| HistoryRegister::new(6));
        if h.is_full() {
            model.observe(h.value(), correct);
        }
        h.push(correct);
        predictor.update(e.pc, e.taken);
    }
    let design = Designer::new(6)
        .prob_threshold(0.8)
        .design_from_model(model)
        .expect("non-empty model");

    println!(
        "{:<26} {:>10} {:>11} {:>13}",
        "estimator", "coverage", "precision", "slots/branch"
    );
    let mut jrs = ResettingConfidence::new(256, 8, 4);
    let s1 = simulate_gating(&mut XScaleBtb::xscale(), &mut jrs, &eval);
    println!(
        "{:<26} {:>9.1}% {:>10.1}% {:>13.3}",
        "resetting(m8,t4)",
        100.0 * s1.flush_coverage(),
        100.0 * s1.gating_precision(),
        s1.net_savings(8.0, 2.0)
    );
    let mut fsm = FsmBranchConfidence::new(256, design.into_fsm(), "fsm-h6-t0.80");
    let s2 = simulate_gating(&mut XScaleBtb::xscale(), &mut fsm, &eval);
    println!(
        "{:<26} {:>9.1}% {:>10.1}% {:>13.3}",
        "fsm-h6-t0.80",
        100.0 * s2.flush_coverage(),
        100.0 * s2.gating_precision(),
        s2.net_savings(8.0, 2.0)
    );
}

fn suite_counter() {
    banner("Extension: suite-customized counter FSM in a general table (§1)");
    println!("{:<12} {:>10} {:>12}", "held-out", "2-bit", "suite FSM");
    for held_out in BranchBenchmark::ALL {
        let training: Vec<BranchTrace> = BranchBenchmark::ALL
            .into_iter()
            .filter(|b| *b != held_out)
            .map(|b| b.trace(Input::TRAIN, 15_000))
            .collect();
        let refs: Vec<&BranchTrace> = training.iter().collect();
        let Ok(design) = design_suite_counter(&refs, 4, &Designer::new(4)) else {
            continue;
        };
        let eval = held_out.trace(Input::EVAL, 20_000);
        let base = simulate(
            &mut FsmTable::new(1024, two_bit_counter_machine(), "2bit"),
            &eval,
        )
        .miss_rate();
        let custom = simulate(
            &mut FsmTable::new(1024, design.into_fsm(), "suite-h4"),
            &eval,
        )
        .miss_rate();
        println!(
            "{:<12} {:>9.2}% {:>11.2}%",
            held_out.name(),
            100.0 * base,
            100.0 * custom
        );
    }
}

fn recovery_speedup() {
    banner("Extension: net speculation benefit under squash vs re-execution recovery (§6.2)");
    use fsmgen_experiments::fig2::cross_training_model;
    use fsmgen_vpred::{
        run_confidence, FsmConfidence, RecoveryModel, SudConfidence, SudConfig, TwoDeltaStride,
    };
    use fsmgen_workloads::ValueBenchmark;
    println!(
        "{:<10} {:<22} {:>14} {:>14}",
        "benchmark", "estimator", "squash cyc/pred", "reexec cyc/pred"
    );
    for bench in [ValueBenchmark::Gcc, ValueBenchmark::Li] {
        let eval = bench.trace(Input::EVAL, LEN);
        let mut rows: Vec<(String, fsmgen_vpred::ConfidenceStats)> = Vec::new();
        for thr in [0.5, 0.95] {
            let model = cross_training_model(bench, 8, LEN);
            let design = Designer::new(8)
                .prob_threshold(thr)
                .design_from_model(model)
                .expect("non-empty model");
            let mut table = TwoDeltaStride::paper_default();
            let mut est = FsmConfidence::per_entry(
                table.len(),
                design.into_fsm(),
                format!("fsm-h8-t{thr:.2}"),
            );
            let stats = run_confidence(&mut table, &mut est, &eval);
            rows.push((format!("fsm-h8-t{thr:.2}"), stats));
        }
        let mut table = TwoDeltaStride::paper_default();
        let mut sud = SudConfidence::new(
            table.len(),
            SudConfig {
                max: 10,
                penalty: u32::MAX,
                threshold_pct: 80,
            },
        );
        let stats = run_confidence(&mut table, &mut sud, &eval);
        rows.push(("sud-m10-pfull-t80".to_string(), stats));
        for (label, stats) in rows {
            println!(
                "{:<10} {:<22} {:>14.4} {:>14.4}",
                bench.name(),
                label,
                RecoveryModel::squash().net_cycles_per_prediction(&stats),
                RecoveryModel::reexecute().net_cycles_per_prediction(&stats)
            );
        }
    }
}

fn cache_exclusion() {
    banner("Extension: cache exclusion with designed FSMs (§2.4)");
    use fsmgen_cache::{
        design_exclusion_fsm, run_cache, AllocationPolicy, AlwaysAllocate, Cache, CounterExclusion,
        FsmExclusion, MemoryWorkload,
    };
    let w = MemoryWorkload::pollution_mix();
    let train = w.generate(60_000, 1);
    let eval = w.generate(60_000, 2);
    let design =
        design_exclusion_fsm(&train, &Cache::embedded_8k(), 4).expect("reuse stream long enough");
    let fsm_states = design.fsm().num_states();
    println!("{:<26} {:>10} {:>10}", "policy", "hit rate", "bypasses");
    let report = |name: &str, policy: &mut dyn AllocationPolicy| {
        let stats = run_cache(&mut Cache::embedded_8k(), policy, &eval);
        println!(
            "{:<26} {:>9.1}% {:>10}",
            name,
            100.0 * stats.hit_rate(),
            stats.bypasses
        );
    };
    report("always-allocate", &mut AlwaysAllocate);
    report("counter-excl(m3,t0)", &mut CounterExclusion::new(3, 0));
    let label = format!("fsm-excl-h4 ({fsm_states}st)");
    report(
        &label,
        &mut FsmExclusion::new(design.into_fsm(), label.clone()),
    );
}

fn dual_path() {
    banner("Extension: selective dual-path execution (§2.3, Heil & Smith / PolyPath)");
    use fsmgen_bpred::{simulate_dual_path, DualPathModel};
    let eval = BranchBenchmark::Gsm.trace(Input::EVAL, LEN);
    let model = DualPathModel::small_smt();
    println!(
        "{:<22} {:>10} {:>11} {:>13}",
        "fork policy", "coverage", "precision", "slots/branch"
    );
    let mut selective = ResettingConfidence::new(256, 8, 4);
    let s = simulate_dual_path(&mut XScaleBtb::xscale(), &mut selective, &eval, &model);
    println!(
        "{:<22} {:>9.1}% {:>10.1}% {:>13.3}",
        "low-confidence only",
        100.0 * s.flush_coverage(),
        100.0 * s.fork_precision(),
        s.net_savings(8.0, 2.0)
    );
}

fn stream_buffers() {
    banner("Extension: predictor-guided stream buffer allocation (§2.4, [39])");
    use fsmgen_cache::{AllocateAlways, AllocationFilter, CounterFilter, StreamBufferUnit};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    // Two sequential loads and two random loads compete for two buffers.
    let run = |filter: &mut dyn AllocationFilter, label: &str| {
        let mut unit = StreamBufferUnit::new(2, 8, 5);
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..10_000u64 {
            unit.miss(0x40, 0x10_0000 + i * 32, filter);
            unit.miss(0x44, 0x20_0000 + i * 64, filter);
            unit.miss(
                0x80,
                0x4000_0000 + (rng.random::<u32>() as u64 & !31),
                filter,
            );
            unit.miss(
                0x84,
                0x8000_0000 + (rng.random::<u32>() as u64 & !31),
                filter,
            );
        }
        let s = unit.stats();
        println!(
            "{:<22} {:>9.1}% {:>11.1}%",
            label,
            100.0 * s.coverage(),
            100.0 * s.usefulness()
        );
    };
    println!("{:<22} {:>10} {:>12}", "filter", "coverage", "usefulness");
    run(&mut AllocateAlways, "allocate-always");
    run(&mut CounterFilter::two_bit(), "counter-filter");
}

fn bench_kernels(c: &mut Criterion) {
    let eval = BranchBenchmark::Compress.trace(Input::EVAL, 20_000);
    c.bench_function("ext/loop_assisted_xscale_20k", |b| {
        b.iter(|| {
            let mut p = LoopAssisted::new(XScaleBtb::xscale());
            black_box(simulate(&mut p, black_box(&eval)))
        })
    });
    c.bench_function("ext/ppm_o8_20k", |b| {
        b.iter(|| {
            let mut p = Ppm::new(8);
            black_box(simulate(&mut p, black_box(&eval)))
        })
    });
    c.bench_function("ext/lgc_20k", |b| {
        b.iter(|| {
            let mut p = LocalGlobalChooser::new(512, 10, 4096);
            black_box(simulate(&mut p, black_box(&eval)))
        })
    });

    let bits: BitTrace = eval.iter().map(|e| e.taken).collect();
    let mut group = c.benchmark_group("ext/evolve_20k_trace");
    group.sample_size(10);
    group.bench_function("pop32_gen40", |b| {
        b.iter(|| {
            black_box(
                evolve(
                    black_box(&bits),
                    &EvolveConfig {
                        states: 8,
                        population: 32,
                        generations: 40,
                        ..EvolveConfig::default()
                    },
                )
                .expect("valid config")
                .accuracy,
            )
        })
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    loop_termination();
    ppm_comparison();
    evolution_comparison();
    gating_study();
    suite_counter();
    recovery_speedup();
    cache_exclusion();
    dual_path();
    stream_buffers();
    bench_kernels(c);
}

criterion_group!(extension_benches, benches);
criterion_main!(extension_benches);
