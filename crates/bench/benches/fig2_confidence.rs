//! Regenerates Figure 2 (value-prediction confidence: coverage vs
//! accuracy, SUD counters vs cross-trained custom FSMs) and benchmarks the
//! confidence-evaluation kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen::Designer;
use fsmgen_bench::{banner, quick_mode};
use fsmgen_experiments::fig2::{self, Fig2Config};
use fsmgen_experiments::report::{fig2_csv, fig2_table};
use fsmgen_vpred::{
    per_entry_correctness_model, run_confidence, FsmConfidence, SudConfidence, SudConfig,
    TwoDeltaStride,
};
use fsmgen_workloads::{Input, ValueBenchmark};
use std::hint::black_box;

fn regenerate() {
    banner("Figure 2: value prediction confidence (coverage vs accuracy)");
    let config = if quick_mode() {
        Fig2Config::quick()
    } else {
        Fig2Config::default()
    };
    for panel in fig2::run(&config) {
        println!("{}", fig2_table(&panel));
        fsmgen_bench::write_artifact(&format!("fig2_{}.csv", panel.benchmark), &fig2_csv(&panel));
    }
}

fn bench_kernels(c: &mut Criterion) {
    let trace = ValueBenchmark::Li.trace(Input::EVAL, 20_000);
    let model = per_entry_correctness_model(&mut TwoDeltaStride::paper_default(), &trace, 6);

    c.bench_function("fig2/design_confidence_fsm_h6", |b| {
        b.iter(|| {
            let design = Designer::new(6)
                .prob_threshold(0.8)
                .design_from_model(black_box(model.clone()))
                .expect("model is non-empty");
            black_box(design.fsm().num_states())
        })
    });

    let design = Designer::new(6)
        .prob_threshold(0.8)
        .design_from_model(model)
        .expect("model is non-empty");
    c.bench_function("fig2/evaluate_fsm_confidence_20k_loads", |b| {
        b.iter(|| {
            let mut table = TwoDeltaStride::paper_default();
            let mut est = FsmConfidence::per_entry(table.len(), design.fsm().clone(), "bench");
            black_box(run_confidence(&mut table, &mut est, black_box(&trace)))
        })
    });

    c.bench_function("fig2/evaluate_sud_confidence_20k_loads", |b| {
        b.iter(|| {
            let mut table = TwoDeltaStride::paper_default();
            let mut est = SudConfidence::new(
                table.len(),
                SudConfig {
                    max: 10,
                    penalty: 2,
                    threshold_pct: 80,
                },
            );
            black_box(run_confidence(&mut table, &mut est, black_box(&trace)))
        })
    });
}

fn benches(c: &mut Criterion) {
    regenerate();
    bench_kernels(c);
}

criterion_group!(fig2_benches, benches);
criterion_main!(fig2_benches);
