//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * don't-care fraction vs machine size and training-trace accuracy
//!   (§4.3's "1% least seen histories" claim);
//! * exact Quine–McCluskey vs the Espresso-style heuristic;
//! * history-length sweep (design cost vs machine size);
//! * update-all-on-every-branch vs update-on-tag-match-only (§7.3/§7.6);
//! * state encoding (binary / Gray / one-hot) area impact.
//!
//! Each section prints its measured table, then registers Criterion
//! benchmarks for the costly kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsmgen::{Designer, PatternConfig};
use fsmgen_bench::banner;
use fsmgen_bpred::{simulate, CustomTrainer};
use fsmgen_experiments::fig2::correctness_bits;
use fsmgen_logicmin::{minimize, Algorithm};
use fsmgen_synth::{synthesize_area, Encoding};
use fsmgen_traces::BitTrace;
use fsmgen_workloads::{BranchBenchmark, Input, ValueBenchmark};
use std::hint::black_box;

/// The global taken/not-taken bit stream of a branch benchmark — a rich,
/// noisy history source for the design-flow ablations.
fn branch_bits(bench: BranchBenchmark, len: usize) -> BitTrace {
    bench
        .trace(Input::TRAIN, len)
        .iter()
        .map(|e| e.taken)
        .collect()
}

/// Accuracy of a designed predictor replayed over a trace.
fn replay_accuracy(design: &fsmgen::Design, bits: &BitTrace, warmup: usize) -> f64 {
    let mut p = design.predictor();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (i, b) in bits.iter().enumerate() {
        if i >= warmup {
            total += 1;
            if p.predict() == b {
                correct += 1;
            }
        }
        p.update(b);
    }
    correct as f64 / total.max(1) as f64
}

fn ablate_dont_care() {
    banner("Ablation: don't-care fraction (paper: 1% halves size, negligible accuracy cost)");
    let bits = branch_bits(BranchBenchmark::Gs, 40_000);
    println!("{:<10} {:>8} {:>10}", "dc-frac", "states", "accuracy");
    for frac in [0.0, 0.01, 0.05, 0.10] {
        let design = Designer::new(8)
            .pattern_config(PatternConfig {
                prob_threshold: 0.5,
                dont_care_fraction: frac,
            })
            .design_from_trace(&bits)
            .expect("trace long enough");
        println!(
            "{:<10} {:>8} {:>9.2}%",
            format!("{:.0}%", frac * 100.0),
            design.fsm().num_states(),
            100.0 * replay_accuracy(&design, &bits, 8)
        );
    }
}

fn ablate_minimizer() {
    banner("Ablation: exact Quine-McCluskey vs Espresso-style heuristic");
    let bits = branch_bits(BranchBenchmark::Vortex, 40_000);
    println!(
        "{:<12} {:>7} {:>7} {:>9}",
        "algorithm", "cubes", "lits", "states"
    );
    for (name, alg) in [
        ("exact", Algorithm::Exact),
        ("heuristic", Algorithm::Heuristic),
    ] {
        let design = Designer::new(8)
            .algorithm(alg)
            .design_from_trace(&bits)
            .expect("trace long enough");
        println!(
            "{:<12} {:>7} {:>7} {:>9}",
            name,
            design.cover().len(),
            design.cover().literal_count(),
            design.fsm().num_states()
        );
    }
}

fn ablate_short_window() {
    banner("Ablation: plain exact vs shortest-window minimization (extension)");
    println!(
        "{:<12} {:>6} {:>12} {:>12}",
        "trace", "N", "exact-states", "short-states"
    );
    let row = |name: &str, n: usize, bits: &BitTrace| {
        let exact = Designer::new(n)
            .design_from_trace(bits)
            .expect("long enough");
        let short = Designer::new(n)
            .algorithm(Algorithm::ShortWindow)
            .design_from_trace(bits)
            .expect("long enough");
        println!(
            "{:<12} {:>6} {:>12} {:>12}",
            name,
            n,
            exact.fsm().num_states(),
            short.fsm().num_states()
        );
    };
    // Periodic behaviours are where window choice matters most: the plain
    // minimizer may anchor on an old bit when recent bits suffice.
    for (name, pattern) in [("period-3", "110"), ("period-5", "11010")] {
        let bits: BitTrace = pattern.repeat(60).parse().expect("literal");
        for n in [4usize, 8] {
            row(name, n, &bits);
        }
    }
    for bench in [
        BranchBenchmark::Gs,
        BranchBenchmark::Vortex,
        BranchBenchmark::Compress,
    ] {
        let bits = branch_bits(bench, 40_000);
        for n in [6usize, 8] {
            row(bench.name(), n, &bits);
        }
    }
}

fn ablate_history() {
    banner("Ablation: history length vs machine size (paper: no need beyond N=10)");
    let bits = correctness_bits(ValueBenchmark::Li, Input::TRAIN, 40_000);
    println!("{:<6} {:>8} {:>10}", "N", "states", "accuracy");
    for n in [2usize, 4, 6, 8, 10] {
        let design = Designer::new(n)
            .design_from_trace(&bits)
            .expect("long enough");
        println!(
            "{:<6} {:>8} {:>9.2}%",
            n,
            design.fsm().num_states(),
            100.0 * replay_accuracy(&design, &bits, n)
        );
    }
}

fn ablate_update_policy() {
    banner("Ablation: update-all-on-every-branch vs update-on-tag-match (§7.3)");
    let train = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 40_000);
    let eval = BranchBenchmark::Ijpeg.trace(Input::EVAL, 40_000);
    let designs = CustomTrainer::paper_default().train(&train, 6);
    let mut all = designs.architecture(6);
    let mut matched = designs.architecture(6).with_update_on_match_only();
    let r_all = simulate(&mut all, &eval);
    let r_match = simulate(&mut matched, &eval);
    println!(
        "update-all:      {:>6.2}% miss rate",
        100.0 * r_all.miss_rate()
    );
    println!(
        "update-on-match: {:>6.2}% miss rate",
        100.0 * r_match.miss_rate()
    );
}

fn ablate_encoding() {
    banner("Ablation: state encoding area impact (binary / gray / one-hot)");
    let train = BranchBenchmark::Gsm.trace(Input::TRAIN, 40_000);
    let designs = CustomTrainer::paper_default().train(&train, 4);
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>8}",
        "branch", "states", "binary", "gray", "onehot"
    );
    for (pc, design) in designs.designs() {
        let fsm = design.fsm();
        let areas: Vec<f64> = [Encoding::Binary, Encoding::Gray, Encoding::OneHot]
            .iter()
            .map(|&e| synthesize_area(fsm, e).area)
            .collect();
        println!(
            "{:<#10x} {:>7} {:>8.0} {:>8.0} {:>8.0}",
            pc,
            fsm.num_states(),
            areas[0],
            areas[1],
            areas[2]
        );
    }
}

fn bench_kernels(c: &mut Criterion) {
    let bits = correctness_bits(ValueBenchmark::Gcc, Input::TRAIN, 30_000);
    let model = fsmgen::MarkovModel::from_bit_trace(8, &bits).unwrap();
    let sets = fsmgen::PatternSets::from_model(&model, &PatternConfig::default()).unwrap();

    let mut group = c.benchmark_group("ablate/minimizer_h8");
    for (name, alg) in [
        ("exact", Algorithm::Exact),
        ("heuristic", Algorithm::Heuristic),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &alg, |b, &alg| {
            b.iter(|| black_box(minimize(black_box(sets.spec()), alg)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablate/design_by_history");
    group.sample_size(20);
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    Designer::new(n)
                        .design_from_trace(black_box(&bits))
                        .unwrap()
                        .fsm()
                        .num_states(),
                )
            })
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    ablate_dont_care();
    ablate_minimizer();
    ablate_short_window();
    ablate_history();
    ablate_update_policy();
    ablate_encoding();
    bench_kernels(c);
}

criterion_group!(ablation_benches, benches);
criterion_main!(ablation_benches);
