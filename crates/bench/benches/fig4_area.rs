//! Regenerates Figure 4 (area vs number of states for a sample of custom
//! FSM predictors, with the fitted linear bound) and benchmarks the
//! structural synthesis kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use fsmgen_automata::compile_patterns;
use fsmgen_bench::{banner, quick_mode};
use fsmgen_experiments::fig4::{self, Fig4Config};
use fsmgen_experiments::report::{fig4_csv, fig4_table};
use fsmgen_synth::{synthesize_area, to_vhdl, Encoding, VhdlOptions};
use std::hint::black_box;

fn regenerate() {
    banner("Figure 4: synthesized area vs number of states");
    let config = if quick_mode() {
        Fig4Config::quick()
    } else {
        Fig4Config::default()
    };
    let result = fig4::run(&config);
    println!("{}", fig4_table(&result));
    fsmgen_bench::write_artifact("fig4_area.csv", &fig4_csv(&result));
}

fn bench_kernels(c: &mut Criterion) {
    let small = compile_patterns(&[vec![Some(true), None]]);
    let large = compile_patterns(&[
        vec![Some(false), None, Some(true), None],
        vec![Some(false), None, None, Some(true), None],
        vec![Some(true), Some(true), None, None, Some(false)],
    ]);

    let mut group = c.benchmark_group("fig4/synthesize_area");
    for (name, fsm) in [("4_states", &small), ("large", &large)] {
        group.bench_function(format!("{name}_{}st", fsm.num_states()), |b| {
            b.iter(|| black_box(synthesize_area(black_box(fsm), Encoding::Binary)))
        });
    }
    group.finish();

    c.bench_function("fig4/emit_vhdl_large", |b| {
        b.iter(|| black_box(to_vhdl(black_box(&large), &VhdlOptions::default())))
    });
}

fn benches(c: &mut Criterion) {
    regenerate();
    bench_kernels(c);
}

criterion_group!(fig4_benches, benches);
criterion_main!(fig4_benches);
