//! Benchmarks the automated design flow itself, stage by stage — the
//! paper reports "generating all of the FSM predictors for each program
//! ... took from 20 seconds to 2 minutes on a 500 MHZ Alpha 21264"; this
//! harness shows where the modern reimplementation spends its time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsmgen::{Designer, MarkovModel};
use fsmgen_automata::{Dfa, Nfa, Regex};
use fsmgen_logicmin::{minimize, Algorithm, FunctionSpec};
use fsmgen_traces::BitTrace;
use fsmgen_workloads::{BranchBenchmark, Input};
use std::hint::black_box;

/// A behaviour trace with learnable structure for flow benchmarks.
fn training_bits(len: usize) -> BitTrace {
    let mut state = 0xACE1_u32;
    (0..len)
        .map(|i| {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            // Mostly periodic with some noise.
            (i % 7 < 4) ^ (state >> 24 & 0x1f == 0)
        })
        .collect()
}

fn bench_stages(c: &mut Criterion) {
    let bits = training_bits(50_000);

    // Stage 1: Markov modeling.
    let mut group = c.benchmark_group("flow/markov_model_50k");
    for n in [4usize, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(MarkovModel::from_bit_trace(n, black_box(&bits)).unwrap()))
        });
    }
    group.finish();

    // Stage 2+3: pattern definition + logic minimization on a dense spec.
    let model = MarkovModel::from_bit_trace(9, &bits).unwrap();
    let sets = fsmgen::PatternSets::from_model(&model, &fsmgen::PatternConfig::default()).unwrap();
    let spec: &FunctionSpec = sets.spec();
    let mut group = c.benchmark_group("flow/minimize_h9_spec");
    group.bench_function("exact_qm", |b| {
        b.iter(|| black_box(minimize(black_box(spec), Algorithm::Exact)))
    });
    group.bench_function("espresso_heuristic", |b| {
        b.iter(|| black_box(minimize(black_box(spec), Algorithm::Heuristic)))
    });
    group.finish();

    // Stage 4+5: regex -> NFA -> DFA -> minimized -> reduced.
    let cover = minimize(spec, Algorithm::Exact);
    let patterns: Vec<Regex> = cover
        .cubes()
        .iter()
        .map(|cube| {
            Regex::pattern(
                &(0..9usize)
                    .rev()
                    .map(|v| cube.var(v))
                    .collect::<Vec<Option<bool>>>(),
            )
        })
        .collect();
    let lang = Regex::ending_in(patterns);
    c.bench_function("flow/regex_to_reduced_fsm", |b| {
        b.iter(|| {
            let dfa = Dfa::from_nfa(&Nfa::from_regex(black_box(&lang)));
            black_box(dfa.minimized().steady_state_reduced().num_states())
        })
    });

    // Whole flow at the paper's history lengths.
    let mut group = c.benchmark_group("flow/end_to_end_50k_trace");
    group.sample_size(20);
    for n in [2usize, 6, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                black_box(
                    Designer::new(n)
                        .design_from_trace(black_box(&bits))
                        .unwrap()
                        .fsm()
                        .num_states(),
                )
            })
        });
    }
    group.finish();

    // Workload generation throughput (the substrate cost).
    c.bench_function("flow/generate_vortex_trace_50k", |b| {
        b.iter(|| black_box(BranchBenchmark::Vortex.trace(Input::TRAIN, 50_000).len()))
    });
}

criterion_group!(flow_benches, bench_stages);
criterion_main!(flow_benches);
