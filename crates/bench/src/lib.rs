//! Shared helpers for the `fsmgen` benchmark harness.
//!
//! Each Criterion bench in `benches/` does two jobs: it *regenerates the
//! paper artifact* (printing the figure's rows/series to stdout, captured
//! into `bench_output.txt` by the top-level run), and it *benchmarks the
//! kernels* involved so performance regressions in the design flow and
//! simulators are visible.

#![forbid(unsafe_code)]

/// Prints a banner separating regenerated-figure output from Criterion's
/// own reporting.
pub fn banner(title: &str) {
    println!("\n{:=^72}\n", format!(" {title} "));
}

/// Environment-tunable experiment scale: set `FSMGEN_BENCH_SCALE=quick`
/// for a fast smoke run, anything else (or unset) for the full default
/// configuration.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("FSMGEN_BENCH_SCALE").is_ok_and(|v| v == "quick")
}

/// The workspace root: the nearest ancestor of this crate's manifest
/// directory holding a `Cargo.lock` (falling back to `../..`, this
/// crate's depth in the tree, when no lockfile exists yet).
fn workspace_root() -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .ancestors()
        .find(|dir| dir.join("Cargo.lock").is_file())
        .map_or_else(|| manifest.join("../.."), std::path::Path::to_path_buf)
}

/// Where build artifacts live: `$CARGO_TARGET_DIR` when set (relative
/// values are resolved against the workspace root, as cargo does),
/// otherwise `<workspace>/target`.
fn target_dir() -> std::path::PathBuf {
    match std::env::var_os("CARGO_TARGET_DIR") {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            if dir.is_absolute() {
                dir
            } else {
                workspace_root().join(dir)
            }
        }
        None => workspace_root().join("target"),
    }
}

/// Writes a regenerated-figure artifact (e.g. CSV) under
/// `<target-dir>/figures/`, creating the directory as needed, and prints
/// where it went. Respects `CARGO_TARGET_DIR` and finds the workspace
/// root by its lockfile, so artifacts land in the real target directory
/// wherever the bench runs from. Failures are reported but never abort a
/// bench run.
pub fn write_artifact(name: &str, contents: &str) {
    let dir = target_dir().join("figures");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_holds_the_lockfile() {
        assert!(workspace_root().join("Cargo.lock").is_file());
    }

    #[test]
    fn target_dir_is_anchored() {
        // Whatever CARGO_TARGET_DIR says, the result must be absolute
        // once the workspace root is (env is inherited from the cargo
        // invocation, so don't mutate it here — tests share a process).
        assert!(target_dir().is_absolute() || !workspace_root().is_absolute());
    }
}
