//! Shared helpers for the `fsmgen` benchmark harness.
//!
//! Each Criterion bench in `benches/` does two jobs: it *regenerates the
//! paper artifact* (printing the figure's rows/series to stdout, captured
//! into `bench_output.txt` by the top-level run), and it *benchmarks the
//! kernels* involved so performance regressions in the design flow and
//! simulators are visible.

#![forbid(unsafe_code)]

/// Prints a banner separating regenerated-figure output from Criterion's
/// own reporting.
pub fn banner(title: &str) {
    println!("\n{:=^72}\n", format!(" {title} "));
}

/// Environment-tunable experiment scale: set `FSMGEN_BENCH_SCALE=quick`
/// for a fast smoke run, anything else (or unset) for the full default
/// configuration.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var("FSMGEN_BENCH_SCALE").is_ok_and(|v| v == "quick")
}

/// Writes a regenerated-figure artifact (e.g. CSV) under
/// `target/figures/`, creating the directory as needed, and prints where
/// it went. Failures are reported but never abort a bench run.
pub fn write_artifact(name: &str, contents: &str) {
    // Benches run with the bench crate as CWD; anchor on the workspace
    // root so artifacts land in the top-level target/ directory.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("figures");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, contents) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}
