//! Property suite for the scenario engine: every generated plan
//! round-trips through JSON exactly, generates deterministically, and
//! never panics the engine — whatever the regime mix. Failing cases
//! print the offending plan JSON, so any counterexample is a one-line
//! repro: save the JSON and replay it with
//! `fsmgen scenario run --plan FILE`.

use fsmgen_scenario::{doublecheck, generate, ScenarioPlan};
use fsmgen_testkit::strategies::scenario_plan;
use proptest::prelude::*;

proptest! {
    /// `to_json` → `from_json` is the identity on valid plans. Exact
    /// equality includes every f64 knob: the writer emits shortest
    /// round-trip representations, so nothing is lost in transit.
    #[test]
    fn plan_json_round_trips_exactly(plan in scenario_plan()) {
        let json = plan.to_json();
        let back = ScenarioPlan::from_json(&json)
            .unwrap_or_else(|e| panic!("round-trip failed: {e}\nplan: {json}"));
        prop_assert_eq!(&back, &plan, "plan: {}", json);
        // A second encode is byte-stable (no float drift, no map
        // reordering).
        prop_assert_eq!(back.to_json(), json);
    }

    /// Generation is total and deterministic: any valid plan produces
    /// exactly `total_len` outcomes, twice over, identically — no
    /// panics, whatever the regime knobs.
    #[test]
    fn generation_never_panics_and_is_deterministic(plan in scenario_plan()) {
        let first = generate(&plan);
        let second = generate(&plan);
        prop_assert_eq!(first.len() as u64, plan.total_len(), "plan: {}", plan.to_json());
        prop_assert_eq!(first, second, "plan: {}", plan.to_json());
    }

    /// The full logged run doublechecks on arbitrary plans, not just
    /// the handwritten matrix: event lines and the final report render
    /// byte-identically across two runs.
    #[test]
    fn doublecheck_holds_on_arbitrary_plans(plan in scenario_plan()) {
        let machine = fsmgen_automata::compile_patterns(
            &fsmgen_automata::parse_pattern_list("0x1x | 0xx1x").unwrap(),
        );
        let log = doublecheck(&machine, &plan, fsmgen_exec::ExecBackend::Compiled, 256)
            .unwrap_or_else(|e| panic!("doublecheck diverged: {e}\nplan: {}", plan.to_json()));
        prop_assert!(log.contains("scenario_report"), "plan: {}", plan.to_json());
    }
}
