//! `fsmgen-testkit`: shared fixtures for the workspace's test suites.
//!
//! Before this crate existed, every `crates/*/tests/prop.rs` carried its
//! own copy of the same trace builders and proptest strategies. They are
//! consolidated here so a workload tweak (say, lengthening the biased
//! trace) lands in one place, and so integration tests that compare
//! subsystems (the farm's snapshot differential, the serve e2e
//! differential) are guaranteed to use the *same* workload matrix.
//!
//! Everything here is deterministic: two calls to any builder produce
//! identical bits, which is what differential tests rely on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use fsmgen_traces::{BitTrace, BranchEvent, BranchTrace};
use std::sync::Arc;

/// The history lengths the differential matrices sweep.
pub const HISTORIES: [usize; 3] = [2, 3, 4];

/// Figure 1's running example trace from the paper.
#[must_use]
pub fn paper_trace() -> BitTrace {
    "0000 1000 1011 1101 1110 1111"
        .parse()
        .unwrap_or_else(|_| unreachable!("literal trace parses"))
}

/// A strongly periodic (loop-branch-like) trace: `110` repeated.
#[must_use]
pub fn periodic_trace(reps: usize) -> BitTrace {
    "110"
        .repeat(reps)
        .parse()
        .unwrap_or_else(|_| unreachable!("literal trace parses"))
}

/// An alternating trace (worst case for a counter, easy for history).
#[must_use]
pub fn alternating_trace(reps: usize) -> BitTrace {
    "01".repeat(reps)
        .parse()
        .unwrap_or_else(|_| unreachable!("literal trace parses"))
}

/// A biased trace with occasional flips: xorshift-derived from a fixed
/// seed, ~87% taken.
#[must_use]
pub fn biased_trace(bits: usize) -> BitTrace {
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let mut out = String::with_capacity(bits);
    for _ in 0..bits {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Take 1 unless the low 3 bits are all zero.
        out.push(if x & 0b111 == 0 { '0' } else { '1' });
    }
    out.parse()
        .unwrap_or_else(|_| unreachable!("generated trace parses"))
}

/// The canonical workload matrix used by the differential harnesses:
/// named, deterministic behaviour traces standing in for branch traces.
#[must_use]
pub fn workload_matrix() -> Vec<(&'static str, Arc<BitTrace>)> {
    vec![
        ("paper", Arc::new(paper_trace())),
        ("periodic", Arc::new(periodic_trace(60))),
        ("alternating", Arc::new(alternating_trace(90))),
        ("biased", Arc::new(biased_trace(180))),
    ]
}

/// Proptest strategies shared across the workspace's property suites.
pub mod strategies {
    use super::{BitTrace, BranchEvent, BranchTrace};
    use fsmgen_automata::Dfa;
    use fsmgen_scenario::{Regime, ScenarioPlan, Segment};
    use proptest::prelude::*;
    use std::ops::Range;

    /// Raw bit vectors of a caller-chosen length range.
    pub fn bit_vec(len: Range<usize>) -> impl Strategy<Value = Vec<bool>> {
        proptest::collection::vec(any::<bool>(), len)
    }

    /// Bit vectors long enough for the design flow, mixed enough to avoid
    /// the degenerate all-same traces (those are still valid — covered by
    /// dedicated unit tests — but they design to trivial machines).
    pub fn design_bits() -> impl Strategy<Value = Vec<bool>> {
        bit_vec(24..160)
    }

    /// Arbitrary [`BitTrace`]s spanning the short-to-medium regime the
    /// core design-flow properties sweep.
    pub fn bit_trace() -> impl Strategy<Value = BitTrace> {
        bit_vec(12..200).prop_map(BitTrace::from_iter)
    }

    /// Arbitrary [`BranchTrace`]s over a bounded set of branch slots:
    /// each event's pc/target derive deterministically from its slot.
    pub fn branch_trace() -> impl Strategy<Value = BranchTrace> {
        branch_trace_with(32, 1..400)
    }

    /// Arbitrary well-formed [`Dfa`]s with a caller-chosen state-count
    /// range: uniformly random transitions and outputs, random start
    /// state. Nothing guarantees reachability, so these machines
    /// routinely carry unreachable states — exactly what table-lowering
    /// round-trip tests need to exercise (a compiler that trims or
    /// renumbers would be caught here).
    pub fn random_dfa(states: Range<usize>) -> impl Strategy<Value = Dfa> {
        states.prop_flat_map(|n| {
            let targets = proptest::collection::vec((0..n as u32, 0..n as u32), n..n + 1);
            let outputs = proptest::collection::vec(any::<bool>(), n..n + 1);
            (targets, outputs, 0..n as u32).prop_map(|(targets, outputs, start)| {
                let transitions = targets.into_iter().map(|(t0, t1)| [t0, t1]).collect();
                Dfa::from_parts(transitions, outputs, start)
            })
        })
    }

    /// Machines where every state only loops to itself — the predictor
    /// never moves, so any backend that mixes up state and output
    /// indexing produces visibly wrong streams.
    pub fn self_loop_dfa(states: Range<usize>) -> impl Strategy<Value = Dfa> {
        states.prop_flat_map(|n| {
            let outputs = proptest::collection::vec(any::<bool>(), n..n + 1);
            (outputs, 0..n as u32).prop_map(move |(outputs, start)| {
                let transitions = (0..n as u32).map(|s| [s, s]).collect();
                Dfa::from_parts(transitions, outputs, start)
            })
        })
    }

    /// Adversarial machines for the compiled-execution suites: a mix of
    /// unreachable-state-heavy random machines, self-loop-only machines,
    /// single-state machines, machines sitting exactly on the `u8` table
    /// boundary (255–256 states), and `u16`-spill machines just past it.
    pub fn adversarial_dfa() -> impl Strategy<Value = Dfa> {
        prop_oneof![
            random_dfa(1..2),
            random_dfa(2..48),
            self_loop_dfa(1..32),
            random_dfa(255..257),
            random_dfa(257..320),
        ]
    }

    /// As [`branch_trace`], with caller-chosen slot count and length.
    pub fn branch_trace_with(slots: u64, len: Range<usize>) -> impl Strategy<Value = BranchTrace> {
        proptest::collection::vec((0..slots, any::<bool>()), len).prop_map(|events| {
            events
                .into_iter()
                .map(|(slot, taken)| BranchEvent {
                    pc: 0x1000 + slot * 4,
                    target: 0x2000 + slot,
                    taken,
                })
                .collect()
        })
    }

    /// Arbitrary valid scenario [`Regime`]s covering all five variants,
    /// with knobs inside the ranges `ScenarioPlan::from_json` accepts
    /// (probabilities in `0..=1`, non-empty patterns, ages in `1..=64`).
    pub fn scenario_regime() -> impl Strategy<Value = Regime> {
        prop_oneof![
            (0.0..1.0f64).prop_map(|taken_prob| Regime::Biased { taken_prob }),
            proptest::collection::vec(any::<bool>(), 1..12)
                .prop_map(|pattern| Regime::Periodic { pattern }),
            (
                proptest::collection::vec(1u8..16, 1..4),
                any::<bool>(),
                0.0..0.4f64,
            )
                .prop_map(|(ages, invert, noise)| Regime::Correlated {
                    ages,
                    invert,
                    noise,
                }),
            (0.0..1.0f64, 0.0..1.0f64).prop_map(|(from, to)| Regime::Drift { from, to }),
            (0.0..1.0f64, 0.0..1.0f64, 1u64..64).prop_map(|(calm_prob, storm_prob, burst_len)| {
                Regime::Bursty {
                    calm_prob,
                    storm_prob,
                    burst_len,
                }
            }),
        ]
    }

    /// Arbitrary scenario [`Segment`]s: a valid regime over a short
    /// length (kept small so whole-plan properties stay fast).
    pub fn scenario_segment() -> impl Strategy<Value = Segment> {
        (1u64..600, scenario_regime()).prop_map(|(len, regime)| Segment { len, regime })
    }

    /// Arbitrary valid [`ScenarioPlan`]s: any seed, history in the
    /// accepted `1..=64`, and 1–6 segments. Every generated plan passes
    /// `ScenarioPlan::from_json(plan.to_json())` — the JSON round-trip
    /// property pins that.
    pub fn scenario_plan() -> impl Strategy<Value = ScenarioPlan> {
        (
            any::<u64>(),
            1usize..=16,
            proptest::collection::vec(scenario_segment(), 1..6),
        )
            .prop_map(|(seed, history, segments)| ScenarioPlan {
                seed,
                history,
                segments,
            })
    }
}

/// Synthetic obs-JSONL corpora with known span counts, plus corruption
/// mutators, for exercising the `fsmgen-obs` trace exporters.
pub mod obs_jsonl {
    use fsmgen_obs::ObsEvent;
    use std::time::Duration;

    /// Stage names the synthetic traces cycle through under each root.
    const STAGES: [&str; 4] = ["markov", "minimize", "dfa", "hopcroft"];

    /// Spans (start/end pairs) in a trace built by [`stamped_trace`] /
    /// [`unstamped_trace`] with the same shape parameters.
    #[must_use]
    pub fn span_count(roots: usize, depth: usize) -> usize {
        roots * (depth + 1)
    }

    /// A deterministic stamped trace: `roots` sequential root spans,
    /// each containing `depth` sequential child spans (names cycling
    /// through the pipeline stages) with one counter apiece. Timestamps
    /// are synthetic but self-consistent (children nest inside their
    /// root's window); every line carries `ts_us`/`tid` stamps.
    #[must_use]
    pub fn stamped_trace(roots: usize, depth: usize, tid: u64) -> String {
        build(roots, depth, |event, ts| {
            format!("{}\n", event.to_jsonl_stamped(ts, tid))
        })
    }

    /// As [`stamped_trace`], but without `ts_us`/`tid` — the legacy line
    /// format, for exercising synthetic-clock reconstruction.
    #[must_use]
    pub fn unstamped_trace(roots: usize, depth: usize) -> String {
        build(roots, depth, |event, _| format!("{}\n", event.to_jsonl()))
    }

    fn build(roots: usize, depth: usize, render: impl Fn(&ObsEvent, u64) -> String) -> String {
        let mut out = String::new();
        let mut id = 1u64;
        for root in 0..roots {
            let t0 = root as u64 * 10_000;
            out.push_str(&render(&ObsEvent::SpanStart { name: "design", id }, t0));
            let root_id = id;
            id += 1;
            let mut t = t0;
            for level in 0..depth {
                let name = STAGES[level % STAGES.len()];
                let start = t + 10;
                let end = start + 50;
                let child_id = id;
                id += 1;
                out.push_str(&render(&ObsEvent::SpanStart { name, id: child_id }, start));
                out.push_str(&render(
                    &ObsEvent::Counter {
                        span: name,
                        name: "items",
                        value: level as u64 + 1,
                    },
                    start + 1,
                ));
                out.push_str(&render(
                    &ObsEvent::SpanEnd {
                        name,
                        id: child_id,
                        wall: Duration::from_micros(50),
                    },
                    end,
                ));
                t = end;
            }
            let close = t + 10;
            out.push_str(&render(
                &ObsEvent::SpanEnd {
                    name: "design",
                    id: root_id,
                    wall: Duration::from_micros(close - t0),
                },
                close,
            ));
        }
        out
    }

    /// Replaces a byte at (or just before) `at` with a stray `"`, which
    /// breaks JSON parsing of the affected line wherever it lands: an
    /// extra quote either terminates a string early (leaving trailing
    /// garbage) or appears where a value separator was expected. Bytes
    /// that are already quotes, escapes or newlines are skipped so the
    /// damage is guaranteed and stays within one line.
    #[must_use]
    pub fn corrupt_byte(text: &str, at: usize) -> String {
        if text.is_empty() {
            return String::new();
        }
        let mut bytes = text.as_bytes().to_vec();
        let mut i = at.min(bytes.len() - 1);
        while i > 0 && matches!(bytes[i], b'\n' | b'"' | b'\\') {
            i -= 1;
        }
        if matches!(bytes[i], b'\n' | b'"' | b'\\') {
            // Clamped to the start without finding a safe byte; scan
            // forward instead (every line has plenty of plain bytes).
            i = bytes
                .iter()
                .position(|b| !matches!(b, b'\n' | b'"' | b'\\'))
                .unwrap_or(0);
        }
        bytes[i] = b'"';
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Truncates the text at byte `at` (clamped), producing a torn tail
    /// with no trailing newline when the cut lands mid-line.
    #[must_use]
    pub fn truncate_at(text: &str, at: usize) -> String {
        let mut cut = at.min(text.len());
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        text[..cut].to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(paper_trace(), paper_trace());
        assert_eq!(biased_trace(180), biased_trace(180));
        assert_eq!(periodic_trace(60).len(), 180);
        assert_eq!(alternating_trace(90).len(), 180);
    }

    #[test]
    fn biased_trace_is_biased() {
        let trace = biased_trace(180);
        let taken = trace.iter().filter(|&b| b).count();
        // ~87% taken by construction; allow generous slack.
        assert!(taken > 140, "only {taken}/180 taken");
        assert!(taken < 180, "degenerate all-taken trace");
    }

    #[test]
    fn matrix_names_are_unique() {
        let matrix = workload_matrix();
        assert_eq!(matrix.len(), 4);
        let mut names: Vec<_> = matrix.iter().map(|(n, _)| *n).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
