//! Suite-customized counter FSMs for general purpose processors.
//!
//! §1 of the paper: "Our approach can be used to automatically generate
//! small FSM predictors to perform well over a suite of applications for
//! a general purpose processor." For branch prediction that means
//! replacing the 2-bit counter in every table entry with one
//! automatically designed machine, trained on the aggregate per-branch
//! (local-history) behaviour of a whole workload suite — the same
//! aggregate-trace methodology §6 uses for confidence estimation.

use crate::sim::BranchPredictor;
use fsmgen::{Design, DesignError, Designer, MarkovModel};
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_traces::{BranchTrace, HistoryRegister};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The classic 2-bit saturating counter as a 4-state Moore machine —
/// "the most widely known FSM predictor" (§2.2) — for use as a baseline
/// per-entry automaton in [`FsmTable`].
#[must_use]
pub fn two_bit_counter_machine() -> Dfa {
    // States 0..=3; predict taken when >= 2; input 1 increments.
    let trans: Vec<[u32; 2]> = (0u32..4)
        .map(|s| [s.saturating_sub(1), (s + 1).min(3)])
        .collect();
    Dfa::from_parts(trans, vec![false, false, true, true], 0)
}

/// A bimodal-style table whose per-entry automaton is an arbitrary Moore
/// machine. With [`two_bit_counter_machine`] it is exactly a bimodal
/// predictor; with a designed machine it is the suite-customized
/// general-purpose predictor of §1.
#[derive(Debug, Clone)]
pub struct FsmTable {
    entries: Vec<MoorePredictor>,
    states_per_entry: usize,
    label: String,
}

impl FsmTable {
    /// Creates a table of `entries` instances of `machine`.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, machine: impl Into<Arc<Dfa>>, label: impl Into<String>) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        let machine = machine.into();
        FsmTable {
            states_per_entry: machine.num_states(),
            entries: (0..entries)
                .map(|_| MoorePredictor::new(Arc::clone(&machine)))
                .collect(),
            label: label.into(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.entries.len() - 1)
    }
}

impl BranchPredictor for FsmTable {
    fn predict(&mut self, pc: u64) -> bool {
        self.entries[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.entries[i].update(taken);
    }

    fn storage_bits(&self) -> usize {
        // Each entry stores a state id of the shared machine.
        let bits_per_entry =
            (usize::BITS - (self.states_per_entry.max(2) - 1).leading_zeros()) as usize;
        self.entries.len() * bits_per_entry
    }

    fn describe(&self) -> String {
        format!("fsmtable-{}x{}", self.entries.len(), self.label)
    }
}

/// Builds the aggregate local-history Markov model of a workload suite:
/// every static branch of every trace contributes `(last N own outcomes,
/// next outcome)` observations. This is the §1 "customized to a whole
/// workload" training set for a per-entry counter FSM.
#[must_use]
pub fn aggregate_local_model(traces: &[&BranchTrace], history: usize) -> MarkovModel {
    let mut model = MarkovModel::new(history);
    for trace in traces {
        let mut locals: BTreeMap<u64, HistoryRegister> = BTreeMap::new();
        for e in *trace {
            let h = locals
                .entry(e.pc)
                .or_insert_with(|| HistoryRegister::new(history));
            if h.is_full() {
                model.observe(h.value(), e.taken);
            }
            h.push(e.taken);
        }
    }
    model
}

/// Designs a suite-customized counter FSM from the aggregate local-history
/// model of `traces`.
///
/// # Errors
///
/// Propagates [`DesignError`] when the traces are too short to fill any
/// history window.
pub fn design_suite_counter(
    traces: &[&BranchTrace],
    history: usize,
    designer: &Designer,
) -> Result<Design, DesignError> {
    debug_assert_eq!(designer.history(), history);
    designer.design_from_model(aggregate_local_model(traces, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::tables::Bimodal;
    use fsmgen_workloads::{BranchBenchmark, Input};

    #[test]
    fn two_bit_machine_is_a_bimodal_predictor() {
        // FsmTable with the 2-bit machine behaves exactly like Bimodal
        // modulo the initial state (Bimodal starts weakly-not-taken=1,
        // the machine starts at 0); on a long trace the rates converge.
        let trace = BranchBenchmark::G721.trace(Input::TRAIN, 20_000);
        let mut a = FsmTable::new(1024, two_bit_counter_machine(), "2bit");
        let mut b = Bimodal::new(1024);
        let ra = simulate(&mut a, &trace);
        let rb = simulate(&mut b, &trace);
        assert!(
            (ra.miss_rate() - rb.miss_rate()).abs() < 0.01,
            "fsm-table {} vs bimodal {}",
            ra.miss_rate(),
            rb.miss_rate()
        );
    }

    #[test]
    fn aggregate_model_counts_all_branches() {
        let t1 = BranchBenchmark::Gs.trace(Input::TRAIN, 5_000);
        let t2 = BranchBenchmark::G721.trace(Input::TRAIN, 5_000);
        let solo = aggregate_local_model(&[&t1], 3);
        let both = aggregate_local_model(&[&t1, &t2], 3);
        assert!(both.total_observations() > solo.total_observations());
    }

    #[test]
    fn suite_counter_fsm_competitive_with_two_bit() {
        // Cross-trained: design on five benchmarks, evaluate on the sixth.
        let held_out = BranchBenchmark::G721;
        let training: Vec<BranchTrace> = BranchBenchmark::ALL
            .into_iter()
            .filter(|b| *b != held_out)
            .map(|b| b.trace(Input::TRAIN, 15_000))
            .collect();
        let refs: Vec<&BranchTrace> = training.iter().collect();
        let design = design_suite_counter(&refs, 4, &Designer::new(4)).expect("suite is non-empty");
        let eval = held_out.trace(Input::EVAL, 20_000);

        let mut custom = FsmTable::new(1024, design.into_fsm(), "suite-h4");
        let mut baseline = FsmTable::new(1024, two_bit_counter_machine(), "2bit");
        let rc = simulate(&mut custom, &eval);
        let rb = simulate(&mut baseline, &eval);
        // The designed counter must at least match the hand-designed
        // 2-bit counter on an unseen application (the §1 claim).
        assert!(
            rc.miss_rate() <= rb.miss_rate() + 0.01,
            "suite FSM {} vs 2-bit {}",
            rc.miss_rate(),
            rb.miss_rate()
        );
    }

    #[test]
    fn storage_accounting() {
        let t = FsmTable::new(256, two_bit_counter_machine(), "2bit");
        assert_eq!(t.storage_bits(), 256 * 2);
        assert_eq!(t.describe(), "fsmtable-256x2bit");
    }
}
