//! A compact in-order pipeline timing model: turns branch prediction
//! behaviour into cycles, the currency the customized-processor
//! motivation of §7.1 actually cares about ("the rapidly growing embedded
//! electronics industry demands high performance, low cost systems").
//!
//! The model is deliberately simple — an XScale-class single-issue
//! pipeline — because the paper's argument only needs the translation
//! from misprediction rate to performance: each dynamic branch costs one
//! cycle, plus a flush penalty when mispredicted, plus a taken-branch
//! fetch bubble; non-branch work is summarised as a fixed number of
//! instructions per branch at base CPI 1.

use crate::sim::BranchPredictor;
use fsmgen_traces::BranchTrace;
use serde::{Deserialize, Serialize};

/// Timing parameters of the modelled pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Non-branch instructions executed per dynamic branch (work that
    /// proceeds at CPI 1).
    pub insts_per_branch: f64,
    /// Flush penalty in cycles for a mispredicted branch.
    pub misprediction_penalty: f64,
    /// Fetch-bubble cycles for a correctly predicted *taken* branch
    /// (redirect cost on a simple front end).
    pub taken_bubble: f64,
}

impl PipelineModel {
    /// An XScale-class 7-stage pipeline: ~5 instructions per branch,
    /// 4-cycle branch resolution, 1-cycle taken-redirect bubble.
    #[must_use]
    pub fn xscale_class() -> Self {
        PipelineModel {
            insts_per_branch: 5.0,
            misprediction_penalty: 4.0,
            taken_bubble: 1.0,
        }
    }

    /// A deeper high-frequency pipeline where mispredictions hurt more.
    #[must_use]
    pub fn deep_pipeline() -> Self {
        PipelineModel {
            insts_per_branch: 5.0,
            misprediction_penalty: 12.0,
            taken_bubble: 1.0,
        }
    }
}

/// Cycle accounting for one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Instructions executed (branches plus modelled non-branch work).
    pub instructions: f64,
    /// Total cycles.
    pub cycles: f64,
    /// Cycles lost to misprediction flushes.
    pub flush_cycles: f64,
    /// Cycles lost to taken-branch fetch bubbles.
    pub bubble_cycles: f64,
}

impl PipelineStats {
    /// Cycles per instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.cycles / self.instructions.max(1.0)
    }

    /// Speedup of this run relative to another (`other.cycles / cycles`).
    #[must_use]
    pub fn speedup_over(&self, other: &PipelineStats) -> f64 {
        other.cycles / self.cycles.max(1.0)
    }
}

/// Runs `predictor` over `trace` under the timing model.
pub fn simulate_cycles<P: BranchPredictor + ?Sized>(
    predictor: &mut P,
    trace: &BranchTrace,
    model: &PipelineModel,
) -> PipelineStats {
    let mut flush_cycles = 0.0;
    let mut bubble_cycles = 0.0;
    for e in trace {
        let prediction = predictor.predict(e.pc);
        if prediction != e.taken {
            flush_cycles += model.misprediction_penalty;
        } else if e.taken {
            bubble_cycles += model.taken_bubble;
        }
        predictor.update(e.pc, e.taken);
    }
    let branches = trace.len() as f64;
    let instructions = branches * (1.0 + model.insts_per_branch);
    PipelineStats {
        instructions,
        cycles: instructions + flush_cycles + bubble_cycles,
        flush_cycles,
        bubble_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::CustomTrainer;
    use crate::xscale::XScaleBtb;
    use fsmgen_traces::BranchEvent;
    use fsmgen_workloads::{BranchBenchmark, Input};

    #[test]
    fn perfect_prediction_costs_only_bubbles() {
        // A predictor that is always right on a never-taken branch: CPI 1.
        struct Oracle;
        impl BranchPredictor for Oracle {
            fn predict(&mut self, _pc: u64) -> bool {
                false
            }
            fn update(&mut self, _pc: u64, _taken: bool) {}
            fn storage_bits(&self) -> usize {
                0
            }
            fn describe(&self) -> String {
                "oracle-nt".to_string()
            }
        }
        let trace: BranchTrace = (0..100)
            .map(|i| BranchEvent {
                pc: 0x40 + i,
                target: 0,
                taken: false,
            })
            .collect();
        let stats = simulate_cycles(&mut Oracle, &trace, &PipelineModel::xscale_class());
        assert_eq!(stats.flush_cycles, 0.0);
        assert_eq!(stats.bubble_cycles, 0.0);
        assert!((stats.cpi() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn misses_translate_to_cpi() {
        let trace = BranchBenchmark::Vortex.trace(Input::EVAL, 20_000);
        let model = PipelineModel::xscale_class();
        let base = simulate_cycles(&mut XScaleBtb::xscale(), &trace, &model);
        // Better prediction -> fewer cycles.
        let train = BranchBenchmark::Vortex.trace(Input::TRAIN, 20_000);
        let designs = CustomTrainer::paper_default().train(&train, 6);
        let custom = simulate_cycles(&mut designs.architecture(6), &trace, &model);
        assert!(custom.cycles < base.cycles);
        let speedup = custom.speedup_over(&base);
        assert!(
            speedup > 1.01 && speedup < 1.5,
            "expected a modest but real speedup, got {speedup:.3}"
        );
    }

    #[test]
    fn deeper_pipelines_amplify_the_win() {
        let eval = BranchBenchmark::Gsm.trace(Input::EVAL, 20_000);
        let train = BranchBenchmark::Gsm.trace(Input::TRAIN, 20_000);
        let designs = CustomTrainer::paper_default().train(&train, 6);
        let speedup_at = |model: PipelineModel| {
            let base = simulate_cycles(&mut XScaleBtb::xscale(), &eval, &model);
            let custom = simulate_cycles(&mut designs.architecture(6), &eval, &model);
            custom.speedup_over(&base)
        };
        let shallow = speedup_at(PipelineModel::xscale_class());
        let deep = speedup_at(PipelineModel::deep_pipeline());
        assert!(
            deep > shallow,
            "deep-pipeline speedup {deep:.3} must exceed shallow {shallow:.3}"
        );
    }

    #[test]
    fn accounting_identity() {
        let trace = BranchBenchmark::Gs.trace(Input::TRAIN, 5_000);
        let model = PipelineModel::xscale_class();
        let stats = simulate_cycles(&mut XScaleBtb::xscale(), &trace, &model);
        assert!(
            (stats.cycles - (stats.instructions + stats.flush_cycles + stats.bubble_cycles)).abs()
                < 1e-9
        );
        assert!(stats.cpi() >= 1.0);
    }
}
