//! Saturating up/down counters — "the majority of FSM predictors used in
//! prior research" (§3.1) and the baseline the paper's custom FSMs are
//! measured against.

use serde::{Deserialize, Serialize};

/// A saturating up/down (SUD) counter.
///
/// Four values define it (§3.1): the saturation threshold (maximum value),
/// the increment applied on one kind of event, the decrement applied on the
/// other, and the prediction threshold. The counter predicts "yes" when its
/// value exceeds the prediction threshold.
///
/// For branch prediction the events are taken/not-taken; for confidence
/// estimation they are correct/incorrect.
///
/// # Examples
///
/// The classic 2-bit branch counter:
///
/// ```
/// use fsmgen_bpred::SaturatingCounter;
///
/// let mut c = SaturatingCounter::two_bit();
/// assert!(!c.predict()); // starts at 0: predict not-taken
/// c.update(true);
/// c.update(true);
/// assert!(c.predict()); // two takens push it past the threshold
/// c.update(true);       // saturate at 3 (strongly taken)
/// c.update(false);
/// assert!(c.predict()); // hysteresis: one not-taken is tolerated
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
    inc: u32,
    dec: u32,
    threshold: u32,
}

impl SaturatingCounter {
    /// Creates a counter with the four defining parameters, starting at 0.
    ///
    /// `dec == u32::MAX` is interpreted as a *full* penalty: any down event
    /// resets the counter to zero (the paper's "full" miss penalty and the
    /// resetting counters of Jacobsen et al.).
    ///
    /// # Panics
    ///
    /// Panics if `max` is zero or `threshold > max`.
    #[must_use]
    pub fn new(max: u32, inc: u32, dec: u32, threshold: u32) -> Self {
        assert!(max > 0, "saturation threshold must be positive");
        assert!(threshold <= max, "prediction threshold must not exceed max");
        SaturatingCounter {
            value: 0,
            max,
            inc,
            dec,
            threshold,
        }
    }

    /// The standard 2-bit counter: max 3, ±1, predict when value > 1.
    #[must_use]
    pub fn two_bit() -> Self {
        SaturatingCounter::new(3, 1, 1, 1)
    }

    /// A resetting counter (Jacobsen et al.): increments by 1, resets to 0
    /// on a down event, predicts above `threshold`.
    #[must_use]
    pub fn resetting(max: u32, threshold: u32) -> Self {
        SaturatingCounter::new(max, 1, u32::MAX, threshold)
    }

    /// Starts the counter at `value` (clamped to the saturation range).
    #[must_use]
    pub fn with_value(mut self, value: u32) -> Self {
        self.value = value.min(self.max);
        self
    }

    /// Current prediction: `true` when the value exceeds the threshold.
    #[must_use]
    pub fn predict(&self) -> bool {
        self.value > self.threshold
    }

    /// Applies an event: `up == true` increments, else decrements, both
    /// saturating.
    pub fn update(&mut self, up: bool) {
        if up {
            self.value = self.value.saturating_add(self.inc).min(self.max);
        } else if self.dec == u32::MAX {
            self.value = 0;
        } else {
            self.value = self.value.saturating_sub(self.dec);
        }
    }

    /// The current counter value.
    #[must_use]
    pub fn value(&self) -> u32 {
        self.value
    }

    /// The saturation threshold (maximum value).
    #[must_use]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Storage cost in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        (32 - self.max.leading_zeros()) as usize
    }
}

impl Default for SaturatingCounter {
    /// The 2-bit counter, the field's default assumption.
    fn default() -> Self {
        SaturatingCounter::two_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_state_machine() {
        let mut c = SaturatingCounter::two_bit();
        // Classic sequence: 0 -> 1 -> 2 -> 3 -> saturate.
        let mut values = vec![c.value()];
        for _ in 0..4 {
            c.update(true);
            values.push(c.value());
        }
        assert_eq!(values, vec![0, 1, 2, 3, 3]);
        c.update(false);
        assert_eq!(c.value(), 2);
        assert!(c.predict());
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn full_penalty_resets() {
        let mut c = SaturatingCounter::resetting(10, 5);
        for _ in 0..8 {
            c.update(true);
        }
        assert!(c.predict());
        c.update(false);
        assert_eq!(c.value(), 0);
        assert!(!c.predict());
    }

    #[test]
    fn asymmetric_penalty() {
        let mut c = SaturatingCounter::new(10, 1, 5, 7);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 10);
        c.update(false);
        assert_eq!(c.value(), 5);
        assert!(!c.predict());
    }

    #[test]
    fn bits_accounting() {
        assert_eq!(SaturatingCounter::two_bit().bits(), 2);
        assert_eq!(SaturatingCounter::new(15, 1, 1, 7).bits(), 4);
        assert_eq!(SaturatingCounter::new(1, 1, 1, 0).bits(), 1);
    }

    #[test]
    #[should_panic(expected = "prediction threshold")]
    fn threshold_above_max_rejected() {
        let _ = SaturatingCounter::new(3, 1, 1, 4);
    }
}
