//! The branch-predictor interface and simulation harness.

use fsmgen_traces::BranchTrace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dynamic branch predictor that can be driven by a [`BranchTrace`].
///
/// The protocol per dynamic branch is: the simulator calls
/// [`BranchPredictor::predict`] with the branch PC, compares the answer to
/// the actual outcome, then calls [`BranchPredictor::update`] with that
/// outcome.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Informs the predictor of the resolved outcome of the branch at
    /// `pc`. Implementations update internal tables, histories and (for the
    /// custom architecture) every custom FSM.
    fn update(&mut self, pc: u64, taken: bool);

    /// Storage cost of the predictor's tables in bits (excluding any
    /// custom FSM logic, which is costed through the synthesized area
    /// model).
    fn storage_bits(&self) -> usize;

    /// Short human-readable description, e.g. `"gshare-4096"`.
    fn describe(&self) -> String;
}

/// Aggregate results of simulating one predictor over one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// Dynamic branches simulated.
    pub branches: usize,
    /// Mispredicted branches.
    pub mispredictions: usize,
    /// Per-static-branch `(executions, mispredictions)`.
    pub per_branch: BTreeMap<u64, (usize, usize)>,
}

impl SimResult {
    /// The overall misprediction rate, 0.0 for an empty run.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.branches as f64
        }
    }

    /// Static branches sorted by descending misprediction count — the
    /// profile used to choose which branches get custom FSMs (§7.3: "this
    /// identifies those branches that are causing the greatest amount of
    /// mispredictions").
    #[must_use]
    pub fn worst_branches(&self) -> Vec<(u64, usize)> {
        let mut v: Vec<(u64, usize)> = self
            .per_branch
            .iter()
            .map(|(&pc, &(_, misses))| (pc, misses))
            .collect();
        v.sort_by_key(|&(pc, misses)| (std::cmp::Reverse(misses), pc));
        v
    }
}

/// Runs `predictor` over `trace`, returning aggregate and per-branch
/// statistics.
pub fn simulate<P: BranchPredictor + ?Sized>(predictor: &mut P, trace: &BranchTrace) -> SimResult {
    let _span = fsmgen_obs::span("bpred-simulate");
    let mut result = SimResult::default();
    for event in trace {
        let prediction = predictor.predict(event.pc);
        let miss = prediction != event.taken;
        result.branches += 1;
        if miss {
            result.mispredictions += 1;
        }
        let entry = result.per_branch.entry(event.pc).or_insert((0, 0));
        entry.0 += 1;
        if miss {
            entry.1 += 1;
        }
        predictor.update(event.pc, event.taken);
    }
    fsmgen_obs::counter("bpred-simulate", "branches", result.branches as u64);
    fsmgen_obs::counter(
        "bpred-simulate",
        "mispredictions",
        result.mispredictions as u64,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_traces::BranchEvent;

    /// A predictor that always says "taken".
    struct AlwaysTaken;

    impl BranchPredictor for AlwaysTaken {
        fn predict(&mut self, _pc: u64) -> bool {
            true
        }
        fn update(&mut self, _pc: u64, _taken: bool) {}
        fn storage_bits(&self) -> usize {
            0
        }
        fn describe(&self) -> String {
            "always-taken".to_string()
        }
    }

    #[test]
    fn simulate_counts_misses() {
        let trace: BranchTrace = [
            BranchEvent {
                pc: 1,
                target: 2,
                taken: true,
            },
            BranchEvent {
                pc: 1,
                target: 2,
                taken: false,
            },
            BranchEvent {
                pc: 2,
                target: 3,
                taken: false,
            },
        ]
        .into_iter()
        .collect();
        let result = simulate(&mut AlwaysTaken, &trace);
        assert_eq!(result.branches, 3);
        assert_eq!(result.mispredictions, 2);
        assert!((result.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(result.per_branch[&1], (2, 1));
        assert_eq!(result.per_branch[&2], (1, 1));
    }

    #[test]
    fn worst_branches_ordering() {
        let mut r = SimResult::default();
        r.per_branch.insert(10, (5, 1));
        r.per_branch.insert(20, (5, 4));
        r.per_branch.insert(30, (5, 4));
        let worst = r.worst_branches();
        assert_eq!(worst, vec![(20, 4), (30, 4), (10, 1)]);
    }

    #[test]
    fn empty_sim() {
        let result = simulate(&mut AlwaysTaken, &BranchTrace::new());
        assert_eq!(result.miss_rate(), 0.0);
    }
}
