//! Branch predictor simulators for the FSM-predictor reproduction.
//!
//! Implements every predictor of the paper's §7 evaluation: the XScale
//! BTB baseline ([`XScaleBtb`]), McFarling's [`Gshare`], the 21264-style
//! [`LocalGlobalChooser`], a plain [`Bimodal`] table, and the customized
//! architecture ([`CustomArchitecture`]) that extends the BTB with
//! hard-wired per-branch FSM predictors. [`CustomTrainer`] runs the §7.3
//! flow: profile with the baseline, pick the worst branches, build
//! per-branch Markov models over global history, and design one FSM per
//! branch with the [`fsmgen`] design flow.
//!
//! # Examples
//!
//! ```
//! use fsmgen_bpred::{simulate, BranchPredictor, CustomTrainer, XScaleBtb};
//! use fsmgen_workloads::{BranchBenchmark, Input};
//!
//! let train = BranchBenchmark::Ijpeg.trace(Input::TRAIN, 20_000);
//! let eval = BranchBenchmark::Ijpeg.trace(Input::EVAL, 20_000);
//!
//! let mut baseline = XScaleBtb::xscale();
//! let base = simulate(&mut baseline, &eval);
//!
//! let designs = CustomTrainer::paper_default().train(&train, 4);
//! let mut custom = designs.architecture(4);
//! let with = simulate(&mut custom, &eval);
//! assert!(with.miss_rate() < base.miss_rate());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod combining;
mod counter;
mod custom;
mod gating;
mod general;
mod loop_pred;
mod pipeline;
mod ppm;
mod sim;
mod stream;
mod tables;
mod threads;
mod xscale;

pub use combining::Combining;
pub use counter::SaturatingCounter;
pub use custom::{
    CustomArchitecture, CustomDesigns, CustomEntry, CustomTrainer, CUSTOM_ENTRY_TAG_BITS,
};
pub use gating::{
    simulate_gating, BranchConfidence, FsmBranchConfidence, GatingStats, ResettingConfidence,
};
pub use general::{aggregate_local_model, design_suite_counter, two_bit_counter_machine, FsmTable};
pub use loop_pred::{LoopAssisted, LoopTermination};
pub use pipeline::{simulate_cycles, PipelineModel, PipelineStats};
pub use ppm::Ppm;
pub use sim::{simulate, BranchPredictor, SimResult};
pub use stream::{evaluate_stream, StreamAccuracy, StreamPredictor};
pub use tables::{Bimodal, Gshare, LocalGlobalChooser};
pub use threads::{simulate_dual_path, DualPathModel, DualPathStats};
pub use xscale::{XScaleBtb, BTB_ENTRY_BITS};
