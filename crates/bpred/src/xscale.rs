//! The XScale-style baseline: a coupled Branch Target Buffer whose entries
//! each hold a 2-bit counter, predicting not-taken on a BTB miss (§7.2).
//!
//! "Intel's XScale (StrongARM-2) processor has a 128 entry Branch Target
//! Buffer, and each entry in the BTB has a 2-bit saturating counter which
//! is used for branch prediction."

use crate::counter::SaturatingCounter;
use crate::sim::BranchPredictor;

/// Bits per BTB entry charged to storage: tag (30) + target (32) +
/// counter (2).
pub const BTB_ENTRY_BITS: usize = 64;

#[derive(Debug, Clone)]
struct Entry {
    tag: u64,
    counter: SaturatingCounter,
    valid: bool,
}

/// A direct-mapped, tag-checked BTB with per-entry 2-bit counters.
///
/// Prediction: BTB hit → the entry's counter; miss → not-taken. Taken
/// branches allocate their entry (with the counter initialized weakly
/// taken); not-taken branches that miss do not allocate, matching BTB
/// behaviour (only taken branches need targets).
#[derive(Debug, Clone)]
pub struct XScaleBtb {
    entries: Vec<Entry>,
}

impl XScaleBtb {
    /// The XScale configuration: 128 entries.
    #[must_use]
    pub fn xscale() -> Self {
        XScaleBtb::new(128)
    }

    /// Creates a BTB with `entries` direct-mapped entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        XScaleBtb {
            entries: vec![
                Entry {
                    tag: 0,
                    counter: SaturatingCounter::two_bit(),
                    valid: false,
                };
                entries
            ],
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.entries.len() - 1)
    }

    /// Number of BTB entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the BTB has no entries (never; kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl BranchPredictor for XScaleBtb {
    fn predict(&mut self, pc: u64) -> bool {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == pc {
            e.counter.predict()
        } else {
            false // not-taken on BTB miss
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        let e = &mut self.entries[i];
        if e.valid && e.tag == pc {
            e.counter.update(taken);
        } else if taken {
            // Allocate on taken: weakly-taken initial state.
            *e = Entry {
                tag: pc,
                counter: SaturatingCounter::two_bit().with_value(2),
                valid: true,
            };
        }
    }

    fn storage_bits(&self) -> usize {
        self.entries.len() * BTB_ENTRY_BITS
    }

    fn describe(&self) -> String {
        format!("xscale-btb-{}", self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use fsmgen_traces::{BranchEvent, BranchTrace};

    #[test]
    fn miss_predicts_not_taken() {
        let mut btb = XScaleBtb::xscale();
        assert!(!btb.predict(0x1234));
    }

    #[test]
    fn taken_branch_allocates_and_predicts() {
        let mut btb = XScaleBtb::xscale();
        btb.update(0x100, true);
        assert!(btb.predict(0x100), "allocated weakly-taken");
    }

    #[test]
    fn not_taken_branches_never_allocate() {
        let mut btb = XScaleBtb::xscale();
        for _ in 0..10 {
            btb.update(0x100, false);
        }
        assert!(!btb.predict(0x100));
        // And the entry is still invalid: a conflicting taken branch
        // allocates immediately.
        btb.update(0x100 + 4 * 128, true);
        assert!(btb.predict(0x100 + 4 * 128));
    }

    #[test]
    fn conflict_eviction() {
        let mut btb = XScaleBtb::new(4);
        btb.update(0x10, true); // index 4>>2 & 3
        let alias = 0x10 + 4 * 4; // same index, different tag
        btb.update(alias, true);
        // Original evicted -> miss -> not-taken.
        assert!(!btb.predict(0x10));
        assert!(btb.predict(alias));
    }

    #[test]
    fn learns_biased_workload() {
        let trace: BranchTrace = (0..2000)
            .map(|i| BranchEvent {
                pc: 0x40 + (i % 8) * 16,
                target: 0,
                taken: (i % 8) < 6, // 6 always-taken, 2 always-not-taken
            })
            .collect();
        let r = simulate(&mut XScaleBtb::xscale(), &trace);
        assert!(r.miss_rate() < 0.02, "miss rate {}", r.miss_rate());
    }

    #[test]
    fn storage() {
        assert_eq!(XScaleBtb::xscale().storage_bits(), 128 * BTB_ENTRY_BITS);
    }
}
