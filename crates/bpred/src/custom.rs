//! The customized branch prediction architecture (§7.2, Figure 3): an
//! XScale-style BTB extended with per-branch custom FSM predictors that
//! are tag-matched, hard-wired to specific branches, and updated in
//! parallel on every branch.

use crate::sim::{simulate, BranchPredictor};
use crate::xscale::XScaleBtb;
use fsmgen::{Design, Designer, MarkovModel};
use fsmgen_automata::MoorePredictor;
use fsmgen_exec::{BatchEvaluator, CompiledMachine, ExecBackend};
use fsmgen_traces::{BranchTrace, HistoryRegister};
use std::sync::Arc;

/// Bits charged per custom entry for its tag and target fields (the FSM
/// logic itself is costed through the synthesized area model).
pub const CUSTOM_ENTRY_TAG_BITS: usize = 62;

/// One hard-wired custom predictor: the branch address it is locked to and
/// its running FSM instance.
#[derive(Debug, Clone)]
pub struct CustomEntry {
    /// The branch PC this FSM was built for ("locked down by the system
    /// software").
    pub pc: u64,
    /// The running predictor instance.
    pub predictor: MoorePredictor,
}

/// The custom architecture: baseline BTB plus fully-associative custom
/// entries.
///
/// Prediction: a custom tag match wins; otherwise the BTB predicts.
/// Update: the BTB updates as usual and *every* custom FSM transitions on
/// *every* branch outcome — the paper's update-all policy, which
/// guarantees each FSM is in the state determined by the last H global
/// outcomes whenever its branch is fetched (§7.6).
#[derive(Debug, Clone)]
pub struct CustomArchitecture {
    btb: XScaleBtb,
    customs: Vec<CustomEntry>,
    /// When `false`, custom FSMs update only on their own branch — the
    /// ablation mode contrasted with the paper's policy.
    update_all: bool,
    /// The compiled execution bank: one SoA lane per custom entry, in
    /// `customs` order. `None` runs the interpreted reference walk.
    /// While the bank is active the `customs` predictor instances hold
    /// machine metadata only — their interpreted state is not advanced.
    compiled: Option<BatchEvaluator>,
}

impl CustomArchitecture {
    /// Creates the architecture from a baseline BTB and custom entries,
    /// on the interpreted reference backend. Use
    /// [`CustomArchitecture::with_backend`] (or
    /// [`CustomDesigns::architecture`], which defaults to the compiled
    /// backend) to select execution.
    #[must_use]
    pub fn new(btb: XScaleBtb, customs: Vec<CustomEntry>) -> Self {
        CustomArchitecture {
            btb,
            customs,
            update_all: true,
            compiled: None,
        }
    }

    /// Selects the execution backend. `Compiled` lowers every custom
    /// FSM into one batched transition-table bank; if any machine
    /// exceeds the table limit (never for designed machines) this
    /// silently keeps the interpreted walk — the two are differentially
    /// tested bit-identical, so the choice only affects wall-time.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.compiled = match backend {
            ExecBackend::Interpreted => None,
            ExecBackend::Compiled => Self::compile_bank(&self.customs),
        };
        self
    }

    /// Installs an already-compiled bank (the farm's cache-insert
    /// artifacts). Lane order must match `customs` order.
    pub(crate) fn with_compiled_bank(mut self, machines: &[Arc<CompiledMachine>]) -> Self {
        debug_assert_eq!(machines.len(), self.customs.len());
        self.compiled = Some(BatchEvaluator::new(machines));
        self
    }

    fn compile_bank(customs: &[CustomEntry]) -> Option<BatchEvaluator> {
        let machines: Option<Vec<Arc<CompiledMachine>>> = customs
            .iter()
            .map(|c| {
                CompiledMachine::compile(c.predictor.machine())
                    .ok()
                    .map(Arc::new)
            })
            .collect();
        machines.map(|m| BatchEvaluator::new(&m))
    }

    /// The backend this instance is running on.
    #[must_use]
    pub fn backend(&self) -> ExecBackend {
        if self.compiled.is_some() {
            ExecBackend::Compiled
        } else {
            ExecBackend::Interpreted
        }
    }

    /// Switches to updating each custom FSM only on its own branch
    /// (ablation of the paper's update-all-on-every-branch policy).
    #[must_use]
    pub fn with_update_on_match_only(mut self) -> Self {
        self.update_all = false;
        self
    }

    /// The custom entries.
    #[must_use]
    pub fn customs(&self) -> &[CustomEntry] {
        &self.customs
    }

    /// Total states across all custom FSMs (the area driver of §7.4).
    #[must_use]
    pub fn total_custom_states(&self) -> usize {
        self.customs.iter().map(|c| c.predictor.num_states()).sum()
    }
}

impl BranchPredictor for CustomArchitecture {
    fn predict(&mut self, pc: u64) -> bool {
        if let Some(lane) = self.customs.iter().position(|c| c.pc == pc) {
            match &self.compiled {
                Some(bank) => bank.output(lane),
                None => self.customs[lane].predictor.predict(),
            }
        } else {
            self.btb.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.btb.update(pc, taken);
        if let Some(bank) = &mut self.compiled {
            if self.update_all {
                // The paper's every-branch-updates-every-FSM loop is the
                // batched fast path: one branch-free SoA sweep.
                bank.step_all(taken);
            } else if let Some(lane) = self.customs.iter().position(|c| c.pc == pc) {
                bank.step(lane, taken);
            }
        } else if self.update_all {
            for entry in &mut self.customs {
                entry.predictor.update(taken);
            }
        } else if let Some(entry) = self.customs.iter_mut().find(|c| c.pc == pc) {
            entry.predictor.update(taken);
        }
    }

    fn storage_bits(&self) -> usize {
        self.btb.storage_bits() + self.customs.len() * CUSTOM_ENTRY_TAG_BITS
    }

    fn describe(&self) -> String {
        format!("custom-{}fsm", self.customs.len())
    }
}

/// The §7.3 training flow: profile with the baseline, pick the worst
/// branches, build per-branch Markov models over *global* history, and
/// design one FSM per branch.
#[derive(Debug, Clone)]
pub struct CustomTrainer {
    history: usize,
    designer: Designer,
    btb_entries: usize,
}

impl CustomTrainer {
    /// Creates a trainer with the paper's parameters: global history
    /// length 9 and the default design flow.
    #[must_use]
    pub fn paper_default() -> Self {
        CustomTrainer::new(9)
    }

    /// Creates a trainer with the given global-history length.
    ///
    /// # Panics
    ///
    /// Panics if `history` is out of the designer's supported range.
    #[must_use]
    pub fn new(history: usize) -> Self {
        CustomTrainer {
            history,
            designer: Designer::new(history),
            btb_entries: 128,
        }
    }

    /// Replaces the design-flow configuration (keeps the history length in
    /// sync with this trainer).
    #[must_use]
    pub fn designer(mut self, designer: Designer) -> Self {
        assert_eq!(
            designer.history(),
            self.history,
            "designer history must match trainer history"
        );
        self.designer = designer;
        self
    }

    /// Sets the baseline BTB size (default 128, the XScale value).
    #[must_use]
    pub fn btb_entries(mut self, entries: usize) -> Self {
        self.btb_entries = entries;
        self
    }

    /// Steps 1–2 of the training flow: profile with the baseline, pick
    /// the `max_customs` worst branches, and build one Markov model per
    /// branch keyed on global history. Returned worst-first.
    fn profile_and_model(
        &self,
        training: &BranchTrace,
        max_customs: usize,
    ) -> Vec<(u64, MarkovModel)> {
        // Step 1: profile with the baseline predictor.
        let mut baseline = XScaleBtb::new(self.btb_entries);
        let profile = simulate(&mut baseline, training);
        let targets: Vec<u64> = profile
            .worst_branches()
            .into_iter()
            .take(max_customs)
            .filter(|&(_, misses)| misses > 0)
            .map(|(pc, _)| pc)
            .collect();

        // Step 2: per-branch Markov models keyed on global history.
        let mut models: std::collections::BTreeMap<u64, MarkovModel> = targets
            .iter()
            .map(|&pc| (pc, MarkovModel::new(self.history)))
            .collect();
        let mut global = HistoryRegister::new(self.history);
        for event in training {
            if global.is_full() {
                if let Some(model) = models.get_mut(&event.pc) {
                    model.observe(global.value(), event.taken);
                }
            }
            global.push(event.taken);
        }
        targets
            .into_iter()
            .filter_map(|pc| models.remove(&pc).map(|m| (pc, m)))
            .collect()
    }

    /// Trains custom FSMs for the `max_customs` worst branches of
    /// `training`, returning the per-branch designs ordered worst-first.
    ///
    /// Branches whose design fails (e.g. a branch never executed with a
    /// full history) are skipped.
    #[must_use]
    pub fn train(&self, training: &BranchTrace, max_customs: usize) -> CustomDesigns {
        // Step 3: design one FSM per branch.
        let designs: Vec<(u64, Design)> = self
            .profile_and_model(training, max_customs)
            .into_iter()
            .filter_map(|(pc, model)| self.designer.design_from_model(model).ok().map(|d| (pc, d)))
            .collect();
        // Compile once at train time, mirroring the farm path's
        // compile-at-cache-insert: architecture() sweeps reuse these.
        let precompiled = designs
            .iter()
            .map(|(_, d)| CompiledMachine::compile(d.fsm()).ok().map(Arc::new))
            .collect();
        CustomDesigns {
            designs,
            precompiled,
            btb_entries: self.btb_entries,
        }
    }

    /// Like [`CustomTrainer::train`], but designs the per-branch FSMs as
    /// one batch on `farm` — the fleet path. Profiling and model building
    /// (steps 1–2) are shared with the serial flow, so the result is
    /// **identical** to [`CustomTrainer::train`] at any worker count;
    /// repeated hot-branch models across benchmarks hit the farm's design
    /// cache.
    #[must_use]
    pub fn train_parallel(
        &self,
        training: &BranchTrace,
        max_customs: usize,
        farm: &fsmgen_farm::Farm,
    ) -> CustomDesigns {
        self.train_parallel_with_metrics(training, max_customs, farm)
            .0
    }

    /// [`CustomTrainer::train_parallel`] plus the batch's
    /// [`FarmMetrics`](fsmgen_farm::FarmMetrics) — cache hit rate,
    /// throughput, latency quantiles — so experiment drivers can report
    /// the farm's contribution alongside the figures.
    #[must_use]
    pub fn train_parallel_with_metrics(
        &self,
        training: &BranchTrace,
        max_customs: usize,
        farm: &fsmgen_farm::Farm,
    ) -> (CustomDesigns, fsmgen_farm::FarmMetrics) {
        let modeled = self.profile_and_model(training, max_customs);
        let jobs: Vec<fsmgen_farm::DesignJob> = modeled
            .iter()
            .enumerate()
            .map(|(i, (_, model))| {
                fsmgen_farm::DesignJob::from_model(i as u64, model.clone(), self.designer.clone())
            })
            .collect();
        let report = farm.design_batch(jobs);
        // Step 3, batched: keep worst-first order, skip failed designs —
        // exactly the serial `.ok()` semantics. The farm compiled each
        // design at cache-insert, so warm hits arrive ready to run.
        let mut designs = Vec::new();
        let mut precompiled = Vec::new();
        for ((pc, _), outcome) in modeled.into_iter().zip(report.outcomes) {
            if let Ok(d) = outcome.result {
                designs.push((pc, (*d).clone()));
                precompiled.push(outcome.compiled.clone());
            }
        }
        (
            CustomDesigns {
                designs,
                precompiled,
                btb_entries: self.btb_entries,
            },
            report.metrics,
        )
    }

    /// [`CustomTrainer::train_parallel_with_metrics`] warm-started from a
    /// persistent snapshot: the farm's design cache is loaded from
    /// `cache_file` before the batch (if the file exists; corrupt records
    /// are skipped, never fatal) and re-persisted afterwards, so repeated
    /// training runs across processes skip the design pipeline entirely.
    #[must_use]
    pub fn train_parallel_warm(
        &self,
        training: &BranchTrace,
        max_customs: usize,
        farm: &fsmgen_farm::Farm,
        cache_file: &std::path::Path,
    ) -> (CustomDesigns, fsmgen_farm::FarmMetrics) {
        if cache_file.exists() {
            // A snapshot we cannot read just means a cold start.
            let _ = farm.load_cache_snapshot(cache_file);
        }
        let result = self.train_parallel_with_metrics(training, max_customs, farm);
        let _ = farm.save_cache_snapshot(cache_file);
        result
    }
}

/// The result of training: per-branch designs, worst branch first, from
/// which architectures with any number of custom predictors can be
/// instantiated.
#[derive(Debug, Clone)]
pub struct CustomDesigns {
    designs: Vec<(u64, Design)>,
    /// Table artifacts compiled once (at farm cache-insert or at serial
    /// train time), parallel to `designs`. `None` slots compile lazily.
    precompiled: Vec<Option<Arc<CompiledMachine>>>,
    btb_entries: usize,
}

impl CustomDesigns {
    /// The per-branch designs, worst branch first.
    #[must_use]
    pub fn designs(&self) -> &[(u64, Design)] {
        &self.designs
    }

    /// The compiled table artifact for design `i`, if one was produced.
    #[must_use]
    pub fn compiled(&self, i: usize) -> Option<&Arc<CompiledMachine>> {
        self.precompiled.get(i).and_then(|c| c.as_ref())
    }

    /// Number of branches a design was produced for.
    #[must_use]
    pub fn len(&self) -> usize {
        self.designs.len()
    }

    /// `true` when no designs were produced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.designs.is_empty()
    }

    /// Instantiates the architecture using the first `num_customs` designs
    /// (clamped to the available count) — the Figure 5 curve is generated
    /// by sweeping this parameter. Runs on the default backend
    /// ([`ExecBackend::Compiled`]); the interpreted reference walk is
    /// available via [`CustomDesigns::architecture_with_backend`].
    #[must_use]
    pub fn architecture(&self, num_customs: usize) -> CustomArchitecture {
        self.architecture_with_backend(num_customs, ExecBackend::default())
    }

    /// As [`CustomDesigns::architecture`], on an explicit backend.
    #[must_use]
    pub fn architecture_with_backend(
        &self,
        num_customs: usize,
        backend: ExecBackend,
    ) -> CustomArchitecture {
        let take = self.designs.len().min(num_customs);
        let customs: Vec<CustomEntry> = self.designs[..take]
            .iter()
            .map(|(pc, design)| CustomEntry {
                pc: *pc,
                predictor: design.predictor(),
            })
            .collect();
        let arch = CustomArchitecture::new(XScaleBtb::new(self.btb_entries), customs);
        match backend {
            ExecBackend::Interpreted => arch,
            ExecBackend::Compiled => {
                // Prefer the compile-once artifacts; fill gaps here.
                let machines: Option<Vec<Arc<CompiledMachine>>> = (0..take)
                    .map(|i| {
                        self.compiled(i).cloned().or_else(|| {
                            CompiledMachine::compile(self.designs[i].1.fsm())
                                .ok()
                                .map(Arc::new)
                        })
                    })
                    .collect();
                match machines {
                    Some(m) => arch.with_compiled_bank(&m),
                    None => arch,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_traces::BranchEvent;

    /// A two-branch trace where the second branch copies the first's
    /// outcome and the first alternates — hard for 2-bit counters, trivial
    /// for a global-history FSM.
    fn correlated_trace(n: usize) -> BranchTrace {
        let mut t = BranchTrace::new();
        let mut a = false;
        for _ in 0..n {
            a = !a;
            t.push(BranchEvent {
                pc: 0x100,
                target: 0,
                taken: a,
            });
            t.push(BranchEvent {
                pc: 0x200,
                target: 0,
                taken: a,
            });
        }
        t
    }

    #[test]
    fn trainer_targets_worst_branches_first() {
        let trace = correlated_trace(1000);
        let designs = CustomTrainer::new(4).train(&trace, 2);
        assert_eq!(designs.len(), 2);
        // Both branches alternate so both are ~50% under 2-bit counters.
        let pcs: Vec<u64> = designs.designs().iter().map(|&(pc, _)| pc).collect();
        assert!(pcs.contains(&0x100) && pcs.contains(&0x200));
    }

    #[test]
    fn custom_fsm_fixes_correlated_branch() {
        let trace = correlated_trace(2000);
        let designs = CustomTrainer::new(4).train(&trace, 2);
        let mut baseline = XScaleBtb::xscale();
        let base = simulate(&mut baseline, &trace);
        let mut custom = designs.architecture(2);
        let with = simulate(&mut custom, &trace);
        assert!(
            with.miss_rate() < 0.05,
            "customs should nearly eliminate misses, got {}",
            with.miss_rate()
        );
        assert!(
            base.miss_rate() > 0.4,
            "baseline must thrash, got {}",
            base.miss_rate()
        );
    }

    #[test]
    fn architecture_curve_is_incremental() {
        let trace = correlated_trace(500);
        let designs = CustomTrainer::new(4).train(&trace, 2);
        assert_eq!(designs.architecture(0).customs().len(), 0);
        assert_eq!(designs.architecture(1).customs().len(), 1);
        assert_eq!(designs.architecture(5).customs().len(), 2); // clamped
    }

    #[test]
    fn update_all_policy_keeps_fsm_in_sync() {
        // The FSM for branch B (copies A two back) must be correct even
        // though B is predicted only at its own slots — because every
        // branch updates it (§7.6).
        let trace = correlated_trace(1000);
        let designs = CustomTrainer::new(4).train(&trace, 1);
        let target_pc = designs.designs()[0].0;
        let mut arch = designs.architecture(1);
        let r = simulate(&mut arch, &trace);
        let (execs, misses) = r.per_branch[&target_pc];
        assert!(
            (misses as f64) < 0.05 * execs as f64,
            "custom branch missed {misses}/{execs}"
        );
    }

    /// Like `correlated_trace` but the leader branch is pseudo-random, so
    /// the follower's outcome is unknowable without observing the leader.
    fn random_leader_trace(n: usize) -> BranchTrace {
        let mut t = BranchTrace::new();
        let mut state = 0x1234_5678_u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state >> 62 & 1 == 1;
            t.push(BranchEvent {
                pc: 0x100,
                target: 0,
                taken: a,
            });
            t.push(BranchEvent {
                pc: 0x200,
                target: 0,
                taken: a,
            });
        }
        t
    }

    #[test]
    fn match_only_ablation_changes_behaviour() {
        let trace = random_leader_trace(1500);
        let designs = CustomTrainer::new(4).train(&trace, 1);
        let mut all = designs.architecture(1);
        let mut only = designs.architecture(1).with_update_on_match_only();
        let r_all = simulate(&mut all, &trace);
        let r_only = simulate(&mut only, &trace);
        // With match-only updates the FSM sees its own history, not the
        // global one it was trained on — accuracy must degrade here.
        assert!(r_all.miss_rate() < r_only.miss_rate());
    }

    #[test]
    fn parallel_training_matches_serial() {
        let trace = correlated_trace(800);
        let trainer = CustomTrainer::new(4);
        let serial = trainer.train(&trace, 2);
        for workers in [1, 2, 8] {
            let farm = fsmgen_farm::Farm::new(fsmgen_farm::FarmConfig {
                workers,
                cache_capacity: 16,
            });
            let parallel = trainer.train_parallel(&trace, 2, &farm);
            assert_eq!(parallel.len(), serial.len());
            for ((pc_s, d_s), (pc_p, d_p)) in serial.designs().iter().zip(parallel.designs()) {
                assert_eq!(pc_s, pc_p);
                assert_eq!(d_s.fsm(), d_p.fsm(), "workers={workers}");
            }
        }
    }

    #[test]
    fn warm_training_round_trips_through_a_snapshot() {
        let trace = correlated_trace(800);
        let trainer = CustomTrainer::new(4);
        let dir = std::env::temp_dir().join(format!("fsmgen-bpred-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trainer.fsnap");

        let config = || fsmgen_farm::FarmConfig {
            workers: 2,
            cache_capacity: 16,
        };
        let cold_farm = fsmgen_farm::Farm::new(config());
        let (cold, cold_metrics) = trainer.train_parallel_warm(&trace, 2, &cold_farm, &path);
        assert_eq!(cold_metrics.cache.snapshot_hits, 0);
        assert!(path.exists(), "snapshot must be persisted");

        let warm_farm = fsmgen_farm::Farm::new(config());
        let (warm, warm_metrics) = trainer.train_parallel_warm(&trace, 2, &warm_farm, &path);
        assert_eq!(warm_metrics.cache.misses, 0, "{:?}", warm_metrics.cache);
        assert!(warm_metrics.cache.snapshot_hits > 0);
        assert_eq!(cold.len(), warm.len());
        for ((pc_c, d_c), (pc_w, d_w)) in cold.designs().iter().zip(warm.designs()) {
            assert_eq!(pc_c, pc_w);
            assert_eq!(d_c, d_w, "warm design differs for pc {pc_c:#x}");
        }

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn architecture_defaults_to_compiled_backend() {
        let trace = correlated_trace(500);
        let designs = CustomTrainer::new(4).train(&trace, 2);
        let arch = designs.architecture(2);
        assert_eq!(arch.backend(), ExecBackend::Compiled);
        let slow = designs.architecture_with_backend(2, ExecBackend::Interpreted);
        assert_eq!(slow.backend(), ExecBackend::Interpreted);
        // Serial training precompiled every design.
        assert!(designs.compiled(0).is_some());
        assert!(designs.compiled(1).is_some());
    }

    #[test]
    fn compiled_backend_is_bit_identical_to_interpreted() {
        for (label, trace) in [
            ("correlated", correlated_trace(1200)),
            ("random-leader", random_leader_trace(1200)),
        ] {
            let designs = CustomTrainer::new(4).train(&trace, 2);
            let mut fast = designs.architecture_with_backend(2, ExecBackend::Compiled);
            let mut slow = designs.architecture_with_backend(2, ExecBackend::Interpreted);
            let r_fast = simulate(&mut fast, &trace);
            let r_slow = simulate(&mut slow, &trace);
            assert_eq!(r_fast, r_slow, "{label}: update-all backends diverged");

            let mut fast = designs
                .architecture_with_backend(2, ExecBackend::Compiled)
                .with_update_on_match_only();
            let mut slow = designs
                .architecture_with_backend(2, ExecBackend::Interpreted)
                .with_update_on_match_only();
            let r_fast = simulate(&mut fast, &trace);
            let r_slow = simulate(&mut slow, &trace);
            assert_eq!(r_fast, r_slow, "{label}: match-only backends diverged");
        }
    }

    #[test]
    fn farm_outcomes_carry_compiled_artifacts() {
        let trace = correlated_trace(800);
        let trainer = CustomTrainer::new(4);
        let farm = fsmgen_farm::Farm::new(fsmgen_farm::FarmConfig {
            workers: 2,
            cache_capacity: 16,
        });
        let designs = trainer.train_parallel(&trace, 2, &farm);
        for i in 0..designs.len() {
            let compiled = designs.compiled(i).expect("farm compiles at insert");
            assert_eq!(
                compiled.num_states() as usize,
                designs.designs()[i].1.fsm().num_states()
            );
        }
        // The architecture built from farm artifacts matches serial.
        let serial = trainer.train(&trace, 2);
        let mut a = designs.architecture(2);
        let mut b = serial.architecture(2);
        assert_eq!(simulate(&mut a, &trace), simulate(&mut b, &trace));
    }

    #[test]
    fn storage_accounting() {
        let trace = correlated_trace(200);
        let designs = CustomTrainer::new(3).train(&trace, 2);
        let arch = designs.architecture(2);
        assert_eq!(
            arch.storage_bits(),
            XScaleBtb::xscale().storage_bits() + 2 * CUSTOM_ENTRY_TAG_BITS
        );
        assert!(arch.total_custom_states() >= 2);
    }
}
