//! Selective dual-path execution (§2.3): "These architecture designs use
//! FSM predictors to predict when to spawn speculative threads or when to
//! execute down additional paths" (citing Heil & Smith's selective dual
//! path execution and Klauser et al.'s PolyPath).
//!
//! The model: at every conditional branch the machine may *fork* a
//! speculative thread down the not-predicted path. If the branch turns
//! out mispredicted, the fork saved the flush (the alternate path was
//! already running); if predicted correctly, the fork wasted a thread
//! context. Contexts are scarce: a fork occupies one until the branch
//! resolves, and forks requested when all contexts are busy are dropped.
//! The confidence estimator decides where to spend contexts — exactly
//! the job §2.3 gives FSM predictors.

use crate::gating::BranchConfidence;
use crate::sim::BranchPredictor;
use fsmgen_traces::BranchTrace;
use serde::{Deserialize, Serialize};

/// Machine parameters for dual-path execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualPathModel {
    /// Simultaneous speculative thread contexts.
    pub contexts: usize,
    /// Branches until a forked branch resolves (occupancy duration).
    pub resolve_latency: u32,
}

impl DualPathModel {
    /// A small SMT-style machine: 2 spare contexts, 4-branch resolution.
    #[must_use]
    pub fn small_smt() -> Self {
        DualPathModel {
            contexts: 2,
            resolve_latency: 4,
        }
    }
}

/// Outcome counts of a dual-path run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualPathStats {
    /// Dynamic branches simulated.
    pub branches: usize,
    /// Forks that covered an actual misprediction (flush avoided).
    pub saved_flushes: usize,
    /// Forks spent on correctly predicted branches (wasted context time).
    pub wasted_forks: usize,
    /// Fork requests dropped because every context was busy.
    pub dropped_forks: usize,
    /// Mispredictions with no covering fork (full flush paid).
    pub uncovered_flushes: usize,
}

impl DualPathStats {
    /// Fraction of mispredictions covered by a fork.
    #[must_use]
    pub fn flush_coverage(&self) -> f64 {
        let wrong = self.saved_flushes + self.uncovered_flushes;
        if wrong == 0 {
            0.0
        } else {
            self.saved_flushes as f64 / wrong as f64
        }
    }

    /// Fraction of taken forks that were justified.
    #[must_use]
    pub fn fork_precision(&self) -> f64 {
        let forks = self.saved_flushes + self.wasted_forks;
        if forks == 0 {
            0.0
        } else {
            self.saved_flushes as f64 / forks as f64
        }
    }

    /// Net cycles saved per branch: a covered misprediction saves
    /// `flush_cost` minus the dual-path fetch overhead; a wasted fork
    /// costs its fetch overhead.
    #[must_use]
    pub fn net_savings(&self, flush_cost: f64, fork_cost: f64) -> f64 {
        (self.saved_flushes as f64 * (flush_cost - fork_cost)
            - self.wasted_forks as f64 * fork_cost)
            / self.branches.max(1) as f64
    }
}

/// Runs dual-path execution: forks are requested on *low-confidence*
/// branches (the paper's selective policy) subject to context
/// availability.
pub fn simulate_dual_path<P, C>(
    predictor: &mut P,
    confidence: &mut C,
    trace: &BranchTrace,
    model: &DualPathModel,
) -> DualPathStats
where
    P: BranchPredictor + ?Sized,
    C: BranchConfidence + ?Sized,
{
    let mut stats = DualPathStats::default();
    // Remaining occupancy per context.
    let mut contexts = vec![0u32; model.contexts];
    for e in trace {
        for c in &mut contexts {
            *c = c.saturating_sub(1);
        }
        let prediction = predictor.predict(e.pc);
        let correct = prediction == e.taken;
        let want_fork = !confidence.confident(e.pc);
        stats.branches += 1;
        if want_fork {
            match contexts.iter_mut().find(|c| **c == 0) {
                Some(slot) => {
                    *slot = model.resolve_latency;
                    if correct {
                        stats.wasted_forks += 1;
                    } else {
                        stats.saved_flushes += 1;
                    }
                }
                None => {
                    stats.dropped_forks += 1;
                    if !correct {
                        stats.uncovered_flushes += 1;
                    }
                }
            }
        } else if !correct {
            stats.uncovered_flushes += 1;
        }
        confidence.record(e.pc, correct);
        predictor.update(e.pc, e.taken);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gating::ResettingConfidence;
    use crate::xscale::XScaleBtb;
    use fsmgen_traces::BranchEvent;
    use fsmgen_workloads::{BranchBenchmark, Input};

    /// A confidence stub with a fixed answer.
    struct Fixed(bool);
    impl BranchConfidence for Fixed {
        fn confident(&mut self, _pc: u64) -> bool {
            self.0
        }
        fn record(&mut self, _pc: u64, _correct: bool) {}
        fn describe(&self) -> String {
            format!("fixed-{}", self.0)
        }
    }

    fn alternating_trace(n: usize) -> BranchTrace {
        (0..n)
            .map(|i| BranchEvent {
                pc: 0x40,
                target: 0,
                taken: i % 2 == 0,
            })
            .collect()
    }

    #[test]
    fn accounting_is_complete() {
        let trace = BranchBenchmark::Vortex.trace(Input::TRAIN, 10_000);
        let mut conf = ResettingConfidence::new(256, 8, 4);
        let stats = simulate_dual_path(
            &mut XScaleBtb::xscale(),
            &mut conf,
            &trace,
            &DualPathModel::small_smt(),
        );
        assert_eq!(stats.branches, trace.len());
        // Every fork request is either taken (saved or wasted) or dropped.
        assert!(stats.saved_flushes + stats.wasted_forks + stats.dropped_forks <= stats.branches);
    }

    #[test]
    fn always_confident_never_forks() {
        let trace = alternating_trace(500);
        let stats = simulate_dual_path(
            &mut XScaleBtb::xscale(),
            &mut Fixed(true),
            &trace,
            &DualPathModel::small_smt(),
        );
        assert_eq!(
            stats.saved_flushes + stats.wasted_forks + stats.dropped_forks,
            0
        );
        assert!(stats.uncovered_flushes > 0, "alternation thrashes counters");
    }

    #[test]
    fn context_pressure_drops_forks() {
        // Never confident + one context + long latency: most fork
        // requests find the context busy.
        let trace = alternating_trace(1_000);
        let model = DualPathModel {
            contexts: 1,
            resolve_latency: 10,
        };
        let stats = simulate_dual_path(&mut XScaleBtb::xscale(), &mut Fixed(false), &trace, &model);
        assert!(stats.dropped_forks > stats.saved_flushes + stats.wasted_forks);
    }

    #[test]
    fn selective_forking_beats_fork_never_on_hard_workloads() {
        let trace = BranchBenchmark::Gsm.trace(Input::EVAL, 30_000);
        let model = DualPathModel::small_smt();
        let mut conf = ResettingConfidence::new(256, 8, 4);
        let selective = simulate_dual_path(&mut XScaleBtb::xscale(), &mut conf, &trace, &model);
        let never = simulate_dual_path(&mut XScaleBtb::xscale(), &mut Fixed(true), &trace, &model);
        // Flush cost 8, fork cost 2 (same scale as the gating study).
        assert!(
            selective.net_savings(8.0, 2.0) > never.net_savings(8.0, 2.0),
            "selective {:.3} vs never {:.3}",
            selective.net_savings(8.0, 2.0),
            never.net_savings(8.0, 2.0)
        );
        assert!(selective.flush_coverage() > 0.3);
    }

    #[test]
    fn metrics_ranges() {
        let stats = DualPathStats {
            branches: 100,
            saved_flushes: 10,
            wasted_forks: 10,
            dropped_forks: 5,
            uncovered_flushes: 5,
        };
        assert!((stats.flush_coverage() - 10.0 / 15.0).abs() < 1e-12);
        assert!((stats.fork_precision() - 0.5).abs() < 1e-12);
        // 10*(8-2) - 10*2 = 40 over 100 branches.
        assert!((stats.net_savings(8.0, 2.0) - 0.4).abs() < 1e-12);
    }
}
