//! Table-based general-purpose predictors: bimodal, gshare (McFarling) and
//! the local/global chooser (LGC, 21264-style) the paper compares against.

use crate::counter::SaturatingCounter;
use crate::sim::BranchPredictor;
use fsmgen_traces::HistoryRegister;

fn index_bits(entries: usize) -> u32 {
    debug_assert!(entries.is_power_of_two());
    entries.trailing_zeros()
}

/// A bimodal predictor: a table of 2-bit counters indexed by the low PC
/// bits (Smith, 1981).
#[derive(Debug, Clone)]
pub struct Bimodal {
    counters: Vec<SaturatingCounter>,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        Bimodal {
            counters: vec![SaturatingCounter::two_bit().with_value(1); entries],
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Branch PCs are word aligned; drop the low 2 bits first.
        (pc >> 2) as usize & (self.counters.len() - 1)
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i].update(taken);
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 2
    }

    fn describe(&self) -> String {
        format!("bimodal-{}", self.counters.len())
    }
}

/// McFarling's gshare: a table of 2-bit counters indexed by
/// `PC xor global history` (§7.5 comparison predictor).
#[derive(Debug, Clone)]
pub struct Gshare {
    counters: Vec<SaturatingCounter>,
    history: HistoryRegister,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` counters and a history as
    /// long as the index.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or below 4.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries >= 4,
            "table size must be a power of two >= 4"
        );
        let bits = index_bits(entries) as usize;
        Gshare {
            counters: vec![SaturatingCounter::two_bit().with_value(1); entries],
            history: HistoryRegister::new(bits),
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize ^ self.history.value() as usize) & (self.counters.len() - 1)
    }
}

impl BranchPredictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i].update(taken);
        self.history.push(taken);
    }

    fn storage_bits(&self) -> usize {
        self.counters.len() * 2 + self.history.len()
    }

    fn describe(&self) -> String {
        format!("gshare-{}", self.counters.len())
    }
}

/// The Local/Global Chooser (LGC): a two-level local predictor, a global
/// predictor and a meta chooser, "similar to the predictor found in the
/// Alpha 21264" (§7.5).
#[derive(Debug, Clone)]
pub struct LocalGlobalChooser {
    /// First level: per-PC local history registers.
    local_histories: Vec<HistoryRegister>,
    /// Second level: counters indexed by local history.
    local_counters: Vec<SaturatingCounter>,
    /// Global counters indexed by global history.
    global_counters: Vec<SaturatingCounter>,
    /// Chooser counters indexed by global history; predict-true means "use
    /// the global prediction".
    chooser: Vec<SaturatingCounter>,
    global_history: HistoryRegister,
    local_bits: usize,
}

impl LocalGlobalChooser {
    /// Creates an LGC. `local_entries` first-level history registers of
    /// `local_bits` bits; the second level has `2^local_bits` counters;
    /// `global_entries` counters and chooser entries.
    ///
    /// # Panics
    ///
    /// Panics if the table sizes are not powers of two or `local_bits` is
    /// zero or above 16.
    #[must_use]
    pub fn new(local_entries: usize, local_bits: usize, global_entries: usize) -> Self {
        assert!(local_entries.is_power_of_two(), "local table must be 2^k");
        assert!(global_entries.is_power_of_two() && global_entries >= 4);
        assert!((1..=16).contains(&local_bits), "local history 1..=16 bits");
        let gbits = index_bits(global_entries) as usize;
        LocalGlobalChooser {
            local_histories: vec![HistoryRegister::new(local_bits); local_entries],
            local_counters: vec![SaturatingCounter::new(7, 1, 1, 3).with_value(3); 1 << local_bits],
            global_counters: vec![SaturatingCounter::two_bit().with_value(1); global_entries],
            chooser: vec![SaturatingCounter::two_bit().with_value(1); global_entries],
            global_history: HistoryRegister::new(gbits),
            local_bits,
        }
    }

    fn local_slot(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.local_histories.len() - 1)
    }

    fn predictions(&self, pc: u64) -> (bool, bool, bool) {
        let lh = self.local_histories[self.local_slot(pc)].value() as usize;
        let local = self.local_counters[lh & ((1 << self.local_bits) - 1)].predict();
        let gi = self.global_history.value() as usize & (self.global_counters.len() - 1);
        let global = self.global_counters[gi].predict();
        let use_global = self.chooser[gi].predict();
        (local, global, use_global)
    }
}

impl BranchPredictor for LocalGlobalChooser {
    fn predict(&mut self, pc: u64) -> bool {
        let (local, global, use_global) = self.predictions(pc);
        if use_global {
            global
        } else {
            local
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let (local, global, _) = self.predictions(pc);
        let slot = self.local_slot(pc);
        let lh = self.local_histories[slot].value() as usize & ((1 << self.local_bits) - 1);
        let gi = self.global_history.value() as usize & (self.global_counters.len() - 1);

        self.local_counters[lh].update(taken);
        self.global_counters[gi].update(taken);
        // Train the chooser only when the components disagree.
        if local != global {
            self.chooser[gi].update(global == taken);
        }
        self.local_histories[slot].push(taken);
        self.global_history.push(taken);
    }

    fn storage_bits(&self) -> usize {
        self.local_histories.len() * self.local_bits
            + self.local_counters.len() * 3
            + self.global_counters.len() * 2
            + self.chooser.len() * 2
            + self.global_history.len()
    }

    fn describe(&self) -> String {
        format!(
            "lgc-{}x{}l-{}g",
            self.local_histories.len(),
            self.local_bits,
            self.global_counters.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use fsmgen_traces::{BranchEvent, BranchTrace};

    fn repeat_trace(pattern: &[(u64, bool)], times: usize) -> BranchTrace {
        std::iter::repeat_with(|| pattern.iter().copied())
            .take(times)
            .flatten()
            .map(|(pc, taken)| BranchEvent {
                pc,
                target: pc + 8,
                taken,
            })
            .collect()
    }

    #[test]
    fn bimodal_learns_bias() {
        let trace = repeat_trace(&[(0x100, true), (0x104, false)], 500);
        let mut p = Bimodal::new(64);
        let r = simulate(&mut p, &trace);
        assert!(r.miss_rate() < 0.01, "miss rate {}", r.miss_rate());
    }

    #[test]
    fn bimodal_aliasing() {
        // Two branches mapping to the same entry with opposite bias thrash.
        let trace = repeat_trace(&[(0x0, true), (0x100, false)], 300);
        let mut small = Bimodal::new(4); // 0x0 and 0x100 alias (index uses pc>>2)
        let r_small = simulate(&mut small, &trace);
        let mut big = Bimodal::new(1024);
        let r_big = simulate(&mut big, &trace);
        assert!(r_big.miss_rate() < r_small.miss_rate());
    }

    #[test]
    fn gshare_learns_global_correlation() {
        // Branch B follows branch A's outcome; A alternates.
        let mut trace = BranchTrace::new();
        let mut a_outcome = false;
        for _ in 0..1000 {
            a_outcome = !a_outcome;
            trace.push(BranchEvent {
                pc: 0x40,
                target: 0,
                taken: a_outcome,
            });
            trace.push(BranchEvent {
                pc: 0x80,
                target: 0,
                taken: a_outcome,
            });
        }
        let mut g = Gshare::new(1024);
        let r = simulate(&mut g, &trace);
        assert!(
            r.miss_rate() < 0.02,
            "gshare should capture correlation, got {}",
            r.miss_rate()
        );
        let mut b = Bimodal::new(1024);
        let rb = simulate(&mut b, &trace);
        assert!(
            r.miss_rate() < rb.miss_rate(),
            "gshare must beat bimodal here"
        );
    }

    #[test]
    fn lgc_learns_local_patterns() {
        // Period-3 local pattern on one branch, random-ish other branch.
        let mut trace = BranchTrace::new();
        for i in 0..3000usize {
            trace.push(BranchEvent {
                pc: 0x40,
                target: 0,
                taken: i % 3 != 2,
            });
            trace.push(BranchEvent {
                pc: 0x80,
                target: 0,
                taken: (i * 2654435761) % 7 < 3,
            });
        }
        let mut lgc = LocalGlobalChooser::new(256, 10, 1024);
        let r = simulate(&mut lgc, &trace);
        // The period-3 branch should be almost perfectly predicted.
        let (_execs, misses) = r.per_branch[&0x40];
        assert!(
            (misses as f64) < 0.05 * 3000.0,
            "local pattern not captured: {misses} misses"
        );
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(Bimodal::new(128).storage_bits(), 256);
        assert_eq!(Gshare::new(1024).storage_bits(), 2048 + 10);
        let lgc = LocalGlobalChooser::new(128, 8, 512);
        assert_eq!(
            lgc.storage_bits(),
            128 * 8 + 256 * 3 + 512 * 2 + 512 * 2 + 9
        );
    }

    #[test]
    fn describe_strings() {
        assert_eq!(Bimodal::new(64).describe(), "bimodal-64");
        assert_eq!(Gshare::new(256).describe(), "gshare-256");
        assert_eq!(
            LocalGlobalChooser::new(128, 10, 512).describe(),
            "lgc-128x10l-512g"
        );
    }
}
