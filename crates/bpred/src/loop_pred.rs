//! Loop termination prediction (Sherwood & Calder, HPC 2000 — cited in
//! §7.5 as the mechanism that would fix `compress`'s dominant branch:
//! "This branch would benefit from having a loop count instruction in a
//! embedded processor, or could easily be captured via customizing the
//! branch predictor to perform loop termination prediction").
//!
//! Each tracked branch carries a trip-count detector: the predictor
//! counts consecutive taken outcomes, learns the iteration count at which
//! the branch falls through, and once the same trip count has been
//! confirmed twice predicts not-taken exactly at the learned boundary.

use crate::sim::BranchPredictor;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Default)]
struct LoopEntry {
    /// Taken outcomes seen since the last not-taken.
    current_run: u32,
    /// Learned trip count (taken run length before the exit).
    trip: Option<u32>,
    /// Confidence that `trip` is stable (saturates at 3).
    confidence: u8,
}

impl LoopEntry {
    fn predict(&self) -> bool {
        match self.trip {
            // Predict not-taken only at the learned boundary and only
            // once the trip count has been confirmed.
            Some(t) if self.confidence >= 2 => self.current_run < t,
            // Learning: fall back to taken (the loop heuristic).
            _ => true,
        }
    }

    fn update(&mut self, taken: bool) {
        if taken {
            self.current_run = self.current_run.saturating_add(1);
            return;
        }
        // Exit observed: the completed run is a trip-count sample.
        let run = self.current_run;
        self.current_run = 0;
        match self.trip {
            Some(t) if t == run => {
                self.confidence = (self.confidence + 1).min(3);
            }
            _ => {
                self.trip = Some(run);
                self.confidence = 1;
            }
        }
    }
}

/// A loop termination predictor covering every static branch it sees,
/// with a fallback "predict taken" policy while trip counts are being
/// learned.
///
/// This is an *extension* predictor: the paper does not evaluate it, but
/// names it as the right tool for `compress`'s dominant branch, and the
/// `loop_termination` test below demonstrates exactly that.
///
/// # Examples
///
/// ```
/// use fsmgen_bpred::{BranchPredictor, LoopTermination};
///
/// let mut p = LoopTermination::new();
/// // A trip-count-3 loop: T T N repeating. After two confirmations the
/// // exit is predicted exactly.
/// for _ in 0..4 {
///     for taken in [true, true, false] {
///         p.update(0x40, taken);
///     }
/// }
/// assert!(p.predict(0x40));   // iteration 1: taken
/// p.update(0x40, true);
/// assert!(p.predict(0x40));   // iteration 2: taken
/// p.update(0x40, true);
/// assert!(!p.predict(0x40));  // boundary: exit predicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct LoopTermination {
    entries: BTreeMap<u64, LoopEntry>,
}

impl LoopTermination {
    /// Creates an empty loop predictor.
    #[must_use]
    pub fn new() -> Self {
        LoopTermination::default()
    }

    /// Number of static branches currently tracked.
    #[must_use]
    pub fn tracked_branches(&self) -> usize {
        self.entries.len()
    }

    /// The learned trip count for a branch, if confirmed.
    #[must_use]
    pub fn trip_count(&self, pc: u64) -> Option<u32> {
        self.entries
            .get(&pc)
            .and_then(|e| (e.confidence >= 2).then_some(e.trip).flatten())
    }
}

impl BranchPredictor for LoopTermination {
    fn predict(&mut self, pc: u64) -> bool {
        self.entries.entry(pc).or_default().predict()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.entries.entry(pc).or_default().update(taken);
    }

    fn storage_bits(&self) -> usize {
        // Per entry: 30-bit tag + two 16-bit counters + 2-bit confidence.
        self.entries.len() * (30 + 16 + 16 + 2)
    }

    fn describe(&self) -> String {
        format!("loop-term-{}", self.entries.len())
    }
}

/// A hybrid that overlays loop termination prediction on another
/// predictor: branches with a confirmed trip count use the loop
/// predictor, everything else falls through to the base. This is the
/// "loop count instruction in an embedded processor" design point of
/// §7.5.
#[derive(Debug, Clone)]
pub struct LoopAssisted<P> {
    base: P,
    loops: LoopTermination,
}

impl<P: BranchPredictor> LoopAssisted<P> {
    /// Wraps a base predictor with loop termination assistance.
    #[must_use]
    pub fn new(base: P) -> Self {
        LoopAssisted {
            base,
            loops: LoopTermination::new(),
        }
    }

    /// The wrapped base predictor.
    #[must_use]
    pub fn base(&self) -> &P {
        &self.base
    }
}

impl<P: BranchPredictor> BranchPredictor for LoopAssisted<P> {
    fn predict(&mut self, pc: u64) -> bool {
        if self.loops.trip_count(pc).is_some() {
            self.loops.predict(pc)
        } else {
            self.base.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        self.loops.update(pc, taken);
        self.base.update(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.base.storage_bits() + self.loops.storage_bits()
    }

    fn describe(&self) -> String {
        format!("loop+{}", self.base.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::xscale::XScaleBtb;
    use fsmgen_traces::{BranchEvent, BranchTrace};

    fn loop_trace(trip: u32, loops: usize) -> BranchTrace {
        let mut t = BranchTrace::new();
        for _ in 0..loops {
            for i in 0..trip {
                t.push(BranchEvent {
                    pc: 0x100,
                    target: 0,
                    taken: i != trip - 1,
                });
            }
        }
        t
    }

    #[test]
    fn learns_trip_count() {
        let mut p = LoopTermination::new();
        let trace = loop_trace(8, 3);
        for e in &trace {
            p.update(e.pc, e.taken);
        }
        assert_eq!(p.trip_count(0x100), Some(7)); // 7 takens then exit
    }

    #[test]
    fn perfect_after_warmup() {
        let trace = loop_trace(12, 50);
        let mut p = LoopTermination::new();
        let r = simulate(&mut p, &trace);
        // Only the first couple of loops may miss.
        assert!(
            r.mispredictions <= 4,
            "expected near-perfect loop prediction, got {} misses",
            r.mispredictions
        );
    }

    #[test]
    fn two_bit_counter_always_misses_exits() {
        let trace = loop_trace(12, 50);
        let mut base = XScaleBtb::xscale();
        let r = simulate(&mut base, &trace);
        // A 2-bit counter mispredicts every exit (1 in 12).
        assert!(r.mispredictions >= 45, "got {}", r.mispredictions);
    }

    #[test]
    fn trip_count_change_relearned() {
        let mut p = LoopTermination::new();
        for e in &loop_trace(5, 10) {
            p.update(e.pc, e.taken);
        }
        assert_eq!(p.trip_count(0x100), Some(4));
        for e in &loop_trace(9, 10) {
            p.update(e.pc, e.taken);
        }
        assert_eq!(p.trip_count(0x100), Some(8));
    }

    #[test]
    fn loop_assisted_fixes_compress_style_latch() {
        // A benchmark-style trace: loop latch + biased branch.
        let mut t = BranchTrace::new();
        for i in 0..4000usize {
            t.push(BranchEvent {
                pc: 0x40,
                target: 0,
                taken: i % 16 != 15,
            });
            t.push(BranchEvent {
                pc: 0x44,
                target: 0,
                taken: true,
            });
        }
        let mut plain = XScaleBtb::xscale();
        let r_plain = simulate(&mut plain, &t);
        let mut assisted = LoopAssisted::new(XScaleBtb::xscale());
        let r_assisted = simulate(&mut assisted, &t);
        assert!(r_assisted.miss_rate() < r_plain.miss_rate() / 2.0);
        assert!(assisted.describe().starts_with("loop+"));
    }

    #[test]
    fn irregular_branch_stays_on_base() {
        let mut p = LoopAssisted::new(XScaleBtb::xscale());
        // Alternating branch never confirms a stable trip count of use;
        // trip=0 (no takens before exit) may be learned, meaning predict
        // not-taken at run 0 — which for pure alternation is right half
        // the time; the point is it must not panic or diverge.
        for i in 0..100 {
            let _ = p.predict(0x80);
            p.update(0x80, i % 2 == 0);
        }
    }
}
