//! Streaming accuracy evaluation over outcome streams.
//!
//! The batch simulators in [`crate::sim`] consume a whole
//! [`fsmgen_traces::BranchTrace`] at once; the scenario engine and the
//! design service instead see *streams* — one outcome at a time, from a
//! live regime mix or off the wire — and need accuracy both cumulative
//! (the duel verdict) and windowed (the collapse signal). This module
//! gives every single-stream predictor shape one interface
//! ([`StreamPredictor`]) and one accumulator ([`StreamAccuracy`]):
//! the interpreted [`MoorePredictor`], its compiled twin
//! [`CompiledPredictor`] (the differential tests pin these to identical
//! streams) and the paper's saturating-counter fallback.

use crate::counter::SaturatingCounter;
use fsmgen_automata::MoorePredictor;
use fsmgen_exec::CompiledPredictor;
use fsmgen_obs::WindowedAccuracy;

/// One-outcome-at-a-time prediction: return the prediction for the next
/// outcome, then absorb the actual outcome.
pub trait StreamPredictor {
    /// Predicts the next outcome, then updates on the actual `outcome`.
    /// Returns the prediction that was made (compare with `outcome` for
    /// a hit).
    fn predict_then_update(&mut self, outcome: bool) -> bool;
}

impl StreamPredictor for SaturatingCounter {
    fn predict_then_update(&mut self, outcome: bool) -> bool {
        let prediction = self.predict();
        self.update(outcome);
        prediction
    }
}

impl StreamPredictor for MoorePredictor {
    fn predict_then_update(&mut self, outcome: bool) -> bool {
        // predict_and_update returns *correctness*; we want the
        // prediction itself.
        let prediction = self.predict();
        self.update(outcome);
        prediction
    }
}

impl StreamPredictor for CompiledPredictor {
    fn predict_then_update(&mut self, outcome: bool) -> bool {
        let prediction = self.predict();
        self.update(outcome);
        prediction
    }
}

/// Cumulative + windowed accuracy over one outcome stream.
#[derive(Debug, Clone)]
pub struct StreamAccuracy {
    total: u64,
    correct: u64,
    window: WindowedAccuracy,
}

impl StreamAccuracy {
    /// An empty accumulator with a `window`-outcome ring for the
    /// windowed rate.
    #[must_use]
    pub fn new(window: usize) -> Self {
        StreamAccuracy {
            total: 0,
            correct: 0,
            window: WindowedAccuracy::new(window),
        }
    }

    /// Records one prediction outcome.
    pub fn observe(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.correct += 1;
        }
        self.window.record(hit);
    }

    /// Outcomes observed so far.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Correct predictions so far.
    #[must_use]
    pub fn correct(&self) -> u64 {
        self.correct
    }

    /// Cumulative accuracy (0 when nothing was observed).
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Hit rate over the trailing window (`None` while empty).
    #[must_use]
    pub fn windowed_rate(&self) -> Option<f64> {
        self.window.rate()
    }
}

/// Drives `predictor` over `outcomes`, returning the accumulated
/// accuracy (cumulative and over a trailing `window`).
pub fn evaluate_stream<P: StreamPredictor>(
    predictor: &mut P,
    outcomes: impl IntoIterator<Item = bool>,
    window: usize,
) -> StreamAccuracy {
    let mut acc = StreamAccuracy::new(window);
    for outcome in outcomes {
        let prediction = predictor.predict_then_update(outcome);
        acc.observe(prediction == outcome);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen::Designer;
    use fsmgen_exec::CompiledMachine;

    fn alternating(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 2 == 1).collect()
    }

    #[test]
    fn counter_streams_like_its_batch_self() {
        // A 2-bit counter on an all-taken stream converges immediately.
        let mut counter = SaturatingCounter::two_bit();
        let acc = evaluate_stream(&mut counter, std::iter::repeat_n(true, 100), 16);
        assert_eq!(acc.total(), 100);
        assert!(acc.accuracy() > 0.95, "{}", acc.accuracy());
        assert_eq!(acc.windowed_rate(), Some(1.0));
    }

    #[test]
    fn counter_suffers_on_alternation() {
        let mut counter = SaturatingCounter::two_bit();
        let acc = evaluate_stream(&mut counter, alternating(200), 32);
        assert!(
            acc.accuracy() < 0.6,
            "a counter should not track alternation: {}",
            acc.accuracy()
        );
    }

    #[test]
    fn interpreted_and_compiled_streams_are_identical() {
        let bits: Vec<bool> = "0000100010111101111011110001"
            .chars()
            .map(|c| c == '1')
            .collect();
        let design = Designer::new(3)
            .design_from_trace(&bits.iter().copied().collect())
            .expect("design");
        let machine = CompiledMachine::compile(design.fsm()).expect("compile");
        let mut interpreted = design.predictor();
        let mut compiled = CompiledPredictor::new(machine);
        for &bit in &bits {
            let a = interpreted.predict_then_update(bit);
            let b = compiled.predict_then_update(bit);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stream_accuracy_counts() {
        let mut acc = StreamAccuracy::new(2);
        acc.observe(true);
        acc.observe(false);
        acc.observe(false);
        assert_eq!(acc.total(), 3);
        assert_eq!(acc.correct(), 1);
        assert!((acc.accuracy() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.windowed_rate(), Some(0.0));
    }
}
