//! McFarling's combining predictor (DEC WRL TN-36, the paper's reference
//! [26] for gshare): a bimodal predictor and a gshare predictor run in
//! parallel, with a table of 2-bit chooser counters — indexed by PC —
//! picking which component to trust per branch.
//!
//! The LGC of §7.5 is the local/global instance of this idea; this is the
//! bimodal/gshare instance, completing the classic combining family for
//! the Figure 5 comparisons.

use crate::counter::SaturatingCounter;
use crate::sim::BranchPredictor;
use crate::tables::{Bimodal, Gshare};

/// A bimodal + gshare combining predictor with a per-PC chooser.
///
/// # Examples
///
/// ```
/// use fsmgen_bpred::{BranchPredictor, Combining};
///
/// let mut p = Combining::new(1024, 4096, 1024);
/// let _ = p.predict(0x40);
/// p.update(0x40, true);
/// assert!(p.storage_bits() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Combining {
    bimodal: Bimodal,
    gshare: Gshare,
    /// Predict-true means "use gshare".
    chooser: Vec<SaturatingCounter>,
}

impl Combining {
    /// Creates the predictor with the given component table sizes and
    /// chooser entries (all powers of two).
    ///
    /// # Panics
    ///
    /// Panics if any size is not a power of two (propagated from the
    /// component constructors) or `chooser_entries` is zero.
    #[must_use]
    pub fn new(bimodal_entries: usize, gshare_entries: usize, chooser_entries: usize) -> Self {
        assert!(
            chooser_entries.is_power_of_two(),
            "chooser size must be a power of two"
        );
        Combining {
            bimodal: Bimodal::new(bimodal_entries),
            gshare: Gshare::new(gshare_entries),
            chooser: vec![SaturatingCounter::two_bit().with_value(1); chooser_entries],
        }
    }

    fn chooser_index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.chooser.len() - 1)
    }
}

impl BranchPredictor for Combining {
    fn predict(&mut self, pc: u64) -> bool {
        if self.chooser[self.chooser_index(pc)].predict() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let bim = self.bimodal.predict(pc);
        let gsh = self.gshare.predict(pc);
        // Train the chooser toward the component that was right, only on
        // disagreement (McFarling's rule).
        if bim != gsh {
            let i = self.chooser_index(pc);
            self.chooser[i].update(gsh == taken);
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
    }

    fn storage_bits(&self) -> usize {
        self.bimodal.storage_bits() + self.gshare.storage_bits() + self.chooser.len() * 2
    }

    fn describe(&self) -> String {
        format!(
            "combining({}+{})",
            self.bimodal.describe(),
            self.gshare.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use fsmgen_traces::{BranchEvent, BranchTrace};
    use fsmgen_workloads::{BranchBenchmark, Input};

    /// A workload with one biased branch (bimodal's strength) and one
    /// globally-correlated branch (gshare's strength).
    fn mixed_trace(n: usize) -> BranchTrace {
        let mut t = BranchTrace::new();
        let mut state = 3u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let coin = state >> 62 & 1 == 1;
            t.push(BranchEvent {
                pc: 0x100,
                target: 0,
                taken: coin,
            }); // driver
            t.push(BranchEvent {
                pc: 0x104,
                target: 0,
                taken: coin,
            }); // copies driver
            t.push(BranchEvent {
                pc: 0x108,
                target: 0,
                taken: true,
            }); // biased
        }
        t
    }

    #[test]
    fn beats_both_components_on_mixed_work() {
        let trace = mixed_trace(3_000);
        let combined = simulate(&mut Combining::new(1024, 1024, 1024), &trace);
        let bimodal = simulate(&mut Bimodal::new(1024), &trace);
        let gshare = simulate(&mut Gshare::new(1024), &trace);
        assert!(
            combined.miss_rate() <= bimodal.miss_rate() + 0.01
                && combined.miss_rate() <= gshare.miss_rate() + 0.01,
            "combined {:.3} vs bimodal {:.3} / gshare {:.3}",
            combined.miss_rate(),
            bimodal.miss_rate(),
            gshare.miss_rate()
        );
        // The correlated branch must be captured (gshare side).
        let (execs, misses) = combined.per_branch[&0x104];
        assert!((misses as f64) < 0.1 * execs as f64);
    }

    #[test]
    fn competitive_on_the_benchmark_suite() {
        for bench in [BranchBenchmark::Gsm, BranchBenchmark::G721] {
            let trace = bench.trace(Input::TRAIN, 20_000);
            let combined = simulate(&mut Combining::new(1024, 4096, 1024), &trace);
            let gshare = simulate(&mut Gshare::new(4096), &trace);
            assert!(
                combined.miss_rate() <= gshare.miss_rate() + 0.005,
                "{bench}: combined {:.3} vs gshare {:.3}",
                combined.miss_rate(),
                gshare.miss_rate()
            );
        }
    }

    #[test]
    fn storage_and_describe() {
        let p = Combining::new(256, 512, 128);
        assert_eq!(p.storage_bits(), 256 * 2 + (512 * 2 + 9) + 128 * 2);
        assert_eq!(p.describe(), "combining(bimodal-256+gshare-512)");
    }

    #[test]
    #[should_panic(expected = "chooser size")]
    fn bad_chooser_size_rejected() {
        let _ = Combining::new(256, 256, 100);
    }
}
