//! Pipeline gating (§2.5): "Manne et al. examined using confidence
//! estimation to find branches that had a high miss rate, and then for
//! those branches, stall the fetch unit until the branch direction is
//! resolved. This can save a significant amount of power for branches
//! that have a high miss rate."
//!
//! This module applies the paper's automatically designed FSM estimators
//! to that use case: a branch-confidence estimator watches the direction
//! predictor's correctness stream and gates fetch on low confidence. The
//! accounting follows the pipeline-gating literature: gating a branch
//! that *would have been mispredicted* saves the wrong-path fetch energy;
//! gating a branch that would have been predicted correctly costs stall
//! cycles.

use crate::counter::SaturatingCounter;
use crate::sim::BranchPredictor;
use fsmgen_automata::{Dfa, MoorePredictor};
use fsmgen_traces::BranchTrace;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A branch-confidence estimator: predicts whether the direction
/// predictor's next prediction for this branch will be correct.
pub trait BranchConfidence {
    /// Is the upcoming prediction for `pc` trusted?
    fn confident(&mut self, pc: u64) -> bool;

    /// Records whether the prediction for `pc` was correct.
    fn record(&mut self, pc: u64, correct: bool);

    /// Short description for reporting.
    fn describe(&self) -> String;
}

/// JRS-style confidence: a table of resetting counters indexed by PC
/// (Jacobsen, Rotenberg & Smith, §3.1's "Resetting Counters").
#[derive(Debug, Clone)]
pub struct ResettingConfidence {
    counters: Vec<SaturatingCounter>,
    max: u32,
    threshold: u32,
}

impl ResettingConfidence {
    /// Creates a table of `entries` resetting counters that report
    /// confidence once `threshold` consecutive correct predictions have
    /// been observed (saturating at `max`).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `threshold > max`.
    #[must_use]
    pub fn new(entries: usize, max: u32, threshold: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        ResettingConfidence {
            counters: vec![SaturatingCounter::resetting(max, threshold); entries],
            max,
            threshold,
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.counters.len() - 1)
    }
}

impl BranchConfidence for ResettingConfidence {
    fn confident(&mut self, pc: u64) -> bool {
        self.counters[self.index(pc)].predict()
    }

    fn record(&mut self, pc: u64, correct: bool) {
        let i = self.index(pc);
        self.counters[i].update(correct);
    }

    fn describe(&self) -> String {
        format!(
            "resetting-{}x(m{},t{})",
            self.counters.len(),
            self.max,
            self.threshold
        )
    }
}

/// FSM branch confidence: a table of instances of one automatically
/// designed machine, each fed its branch-slot's correctness stream —
/// the §6.3 technique pointed at branch prediction instead of value
/// prediction.
#[derive(Debug, Clone)]
pub struct FsmBranchConfidence {
    instances: Vec<MoorePredictor>,
    label: String,
}

impl FsmBranchConfidence {
    /// Creates `entries` instances of `machine` (power-of-two entries,
    /// indexed by PC).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    #[must_use]
    pub fn new(entries: usize, machine: impl Into<Arc<Dfa>>, label: impl Into<String>) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table size must be a power of two"
        );
        let machine = machine.into();
        FsmBranchConfidence {
            instances: (0..entries)
                .map(|_| MoorePredictor::new(Arc::clone(&machine)))
                .collect(),
            label: label.into(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        (pc >> 2) as usize & (self.instances.len() - 1)
    }
}

impl BranchConfidence for FsmBranchConfidence {
    fn confident(&mut self, pc: u64) -> bool {
        self.instances[self.index(pc)].predict()
    }

    fn record(&mut self, pc: u64, correct: bool) {
        let i = self.index(pc);
        self.instances[i].update(correct);
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

/// Outcome counts of a pipeline-gating run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatingStats {
    /// Dynamic branches simulated.
    pub branches: usize,
    /// Branches gated while the prediction would have been wrong — the
    /// wrong-path fetch work saved (the win).
    pub saved_flushes: usize,
    /// Branches gated although the prediction would have been right —
    /// stalls paid for nothing (the cost).
    pub wasted_stalls: usize,
    /// Ungated branches whose prediction was wrong — savings missed.
    pub missed_flushes: usize,
    /// Ungated branches predicted correctly — business as usual.
    pub clean: usize,
}

impl GatingStats {
    /// Fraction of mispredictions caught by gating (the power win).
    #[must_use]
    pub fn flush_coverage(&self) -> f64 {
        let wrong = self.saved_flushes + self.missed_flushes;
        if wrong == 0 {
            0.0
        } else {
            self.saved_flushes as f64 / wrong as f64
        }
    }

    /// Fraction of gating decisions that were justified (gating
    /// precision; 1.0 means no performance was wasted).
    #[must_use]
    pub fn gating_precision(&self) -> f64 {
        let gated = self.saved_flushes + self.wasted_stalls;
        if gated == 0 {
            0.0
        } else {
            self.saved_flushes as f64 / gated as f64
        }
    }

    /// Net fetch slots saved per branch under a simple cost model where a
    /// flush wastes `flush_cost` slots and a stall wastes `stall_cost`.
    #[must_use]
    pub fn net_savings(&self, flush_cost: f64, stall_cost: f64) -> f64 {
        (self.saved_flushes as f64 * (flush_cost - stall_cost)
            - self.wasted_stalls as f64 * stall_cost)
            / self.branches.max(1) as f64
    }
}

/// Simulates pipeline gating: `predictor` supplies directions,
/// `confidence` decides when to gate fetch.
pub fn simulate_gating<P, C>(
    predictor: &mut P,
    confidence: &mut C,
    trace: &BranchTrace,
) -> GatingStats
where
    P: BranchPredictor + ?Sized,
    C: BranchConfidence + ?Sized,
{
    let mut stats = GatingStats::default();
    for e in trace {
        let prediction = predictor.predict(e.pc);
        let correct = prediction == e.taken;
        let gate = !confidence.confident(e.pc);
        stats.branches += 1;
        match (gate, correct) {
            (true, false) => stats.saved_flushes += 1,
            (true, true) => stats.wasted_stalls += 1,
            (false, false) => stats.missed_flushes += 1,
            (false, true) => stats.clean += 1,
        }
        confidence.record(e.pc, correct);
        predictor.update(e.pc, e.taken);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xscale::XScaleBtb;
    use fsmgen_automata::compile_patterns;
    use fsmgen_traces::BranchEvent;

    fn mixed_trace(n: usize) -> BranchTrace {
        let mut t = BranchTrace::new();
        let mut state = 7u64;
        for i in 0..n {
            // One easy branch, one hard branch.
            t.push(BranchEvent {
                pc: 0x40,
                target: 0,
                taken: true,
            });
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            t.push(BranchEvent {
                pc: 0x80,
                target: 0,
                taken: state >> 62 & 1 == 1 || i % 3 == 0,
            });
        }
        t
    }

    #[test]
    fn accounting_is_complete() {
        let trace = mixed_trace(2_000);
        let mut conf = ResettingConfidence::new(256, 8, 4);
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &trace);
        assert_eq!(
            stats.branches,
            stats.saved_flushes + stats.wasted_stalls + stats.missed_flushes + stats.clean
        );
        assert_eq!(stats.branches, trace.len());
    }

    #[test]
    fn gating_targets_the_hard_branch() {
        // The resetting counter keeps the easy branch confident and the
        // hard branch mostly gated, so flush coverage is substantial with
        // decent precision.
        let trace = mixed_trace(4_000);
        let mut conf = ResettingConfidence::new(256, 16, 8);
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &trace);
        assert!(
            stats.flush_coverage() > 0.6,
            "coverage {}",
            stats.flush_coverage()
        );
        assert!(stats.wasted_stalls < stats.branches / 2);
    }

    #[test]
    fn fsm_confidence_pluggable() {
        // Confident only after two consecutive correct predictions.
        let machine = compile_patterns(&[vec![Some(true), Some(true)]]);
        let trace = mixed_trace(2_000);
        let mut conf = FsmBranchConfidence::new(256, machine, "fsm-cc");
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &trace);
        assert!(stats.saved_flushes > 0);
        assert_eq!(conf.describe(), "fsm-cc");
    }

    #[test]
    fn net_savings_model() {
        let stats = GatingStats {
            branches: 100,
            saved_flushes: 10,
            wasted_stalls: 5,
            missed_flushes: 5,
            clean: 80,
        };
        // flush costs 8 slots, stall costs 2: 10*(8-2) - 5*2 = 50 over 100.
        assert!((stats.net_savings(8.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((stats.flush_coverage() - 10.0 / 15.0).abs() < 1e-12);
        assert!((stats.gating_precision() - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_fine() {
        let mut conf = ResettingConfidence::new(64, 4, 2);
        let stats = simulate_gating(&mut XScaleBtb::xscale(), &mut conf, &BranchTrace::new());
        assert_eq!(stats, GatingStats::default());
        assert_eq!(stats.flush_coverage(), 0.0);
        assert_eq!(stats.gating_precision(), 0.0);
    }
}
