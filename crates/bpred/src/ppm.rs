//! Prediction by Partial Matching (Chen, Coffey & Mudge, ASPLOS 1996 —
//! the data-compression-derived predictor the paper discusses as prior
//! work in §3.2).
//!
//! "There are M tables from size 2 to 2^M. Each PPM entry contains a
//! frequency for the number of times the next bit was 0 (not-taken) and
//! the number of times it was (1) taken. All of the PPM tables are then
//! searched in parallel for each history length. The PPM table entry that
//! had the highest probability was then used for the prediction."

use crate::sim::BranchPredictor;
use fsmgen_traces::HistoryRegister;
use std::collections::BTreeMap;

/// One frequency cell.
#[derive(Debug, Clone, Copy, Default)]
struct Freq {
    zeros: u32,
    ones: u32,
}

impl Freq {
    fn total(&self) -> u32 {
        self.zeros + self.ones
    }

    /// Laplace-smoothed probability that the next bit is 1.
    fn prob_one(&self) -> f64 {
        (self.ones as f64 + 1.0) / (self.total() as f64 + 2.0)
    }

    /// Confidence-weighted distance from 1/2; the selection criterion for
    /// "the entry that had the highest probability".
    fn strength(&self) -> f64 {
        (self.prob_one() - 0.5).abs()
    }
}

/// A PPM branch predictor of order `max_order`: tables for every global
/// history length `1..=max_order`, searched in parallel, with the most
/// confidently biased matching context providing the prediction.
///
/// Contexts are per-branch: each table is keyed on `(pc, history)`, which
/// matches how PPM was applied to branch streams.
///
/// # Examples
///
/// ```
/// use fsmgen_bpred::{BranchPredictor, Ppm};
///
/// let mut p = Ppm::new(4);
/// // Train an alternating branch; PPM locks on at order 1.
/// for i in 0..64 {
///     let taken = i % 2 == 0;
///     let _ = p.predict(0x10);
///     p.update(0x10, taken);
/// }
/// // The final training outcome was N (i = 63), so the next is T.
/// assert!(p.predict(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct Ppm {
    max_order: usize,
    /// `tables[k]` is the order-(k+1) context table.
    tables: Vec<BTreeMap<(u64, u32), Freq>>,
    history: HistoryRegister,
}

impl Ppm {
    /// Creates a PPM predictor with contexts up to `max_order` history
    /// bits.
    ///
    /// # Panics
    ///
    /// Panics if `max_order` is zero or above 24.
    #[must_use]
    pub fn new(max_order: usize) -> Self {
        assert!(
            (1..=24).contains(&max_order),
            "PPM order must be in 1..=24, got {max_order}"
        );
        Ppm {
            max_order,
            tables: vec![BTreeMap::new(); max_order],
            history: HistoryRegister::new(max_order),
        }
    }

    /// The context value for order `k` (1-based): the low `k` history
    /// bits.
    fn context(&self, order: usize) -> u32 {
        let mask = if order == 32 {
            u32::MAX
        } else {
            (1u32 << order) - 1
        };
        self.history.value() & mask
    }

    /// Total stored contexts across all orders.
    #[must_use]
    pub fn stored_contexts(&self) -> usize {
        self.tables.iter().map(BTreeMap::len).sum()
    }
}

impl BranchPredictor for Ppm {
    fn predict(&mut self, pc: u64) -> bool {
        // Search all orders in parallel; pick the strongest context that
        // has been seen at least twice, preferring longer matches on ties.
        let mut best: Option<(f64, usize, bool)> = None;
        for order in (1..=self.max_order).rev() {
            if let Some(f) = self.tables[order - 1].get(&(pc, self.context(order))) {
                if f.total() >= 2 {
                    let s = f.strength();
                    let better = match best {
                        None => true,
                        Some((bs, border, _)) => {
                            s > bs + 1e-12 || (s >= bs - 1e-12 && order > border)
                        }
                    };
                    if better {
                        best = Some((s, order, f.prob_one() >= 0.5));
                    }
                }
            }
        }
        best.is_none_or(|(_, _, taken)| taken)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        for order in 1..=self.max_order {
            let ctx = self.context(order);
            let f = self.tables[order - 1].entry((pc, ctx)).or_default();
            if taken {
                f.ones += 1;
            } else {
                f.zeros += 1;
            }
        }
        self.history.push(taken);
    }

    fn storage_bits(&self) -> usize {
        // Idealized (unbounded) PPM: charge each stored context at tag +
        // two 8-bit counters, plus the history register.
        self.stored_contexts() * (32 + 16) + self.max_order
    }

    fn describe(&self) -> String {
        format!("ppm-o{}", self.max_order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use crate::tables::Gshare;
    use fsmgen_traces::{BranchEvent, BranchTrace};
    use fsmgen_workloads::{BranchBenchmark, Input};

    #[test]
    fn captures_global_correlation() {
        // Branch B copies branch A two back; PPM at order >= 2 nails it.
        let mut t = BranchTrace::new();
        let mut state = 99u64;
        for _ in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = state >> 62 & 1 == 1;
            t.push(BranchEvent {
                pc: 0x10,
                target: 0,
                taken: a,
            });
            t.push(BranchEvent {
                pc: 0x20,
                target: 0,
                taken: a,
            });
        }
        let mut p = Ppm::new(4);
        let r = simulate(&mut p, &t);
        let (execs, misses) = r.per_branch[&0x20];
        assert!(
            (misses as f64) < 0.03 * execs as f64,
            "copier branch missed {misses}/{execs}"
        );
    }

    #[test]
    fn longer_contexts_win_when_needed() {
        // Outcome = XOR of the last 3 outcomes of the same branch: needs
        // order 3 exactly.
        let mut t = BranchTrace::new();
        let mut h = [true, false, true];
        for _ in 0..3000 {
            let next = h[0] ^ h[1] ^ h[2];
            t.push(BranchEvent {
                pc: 0x40,
                target: 0,
                taken: next,
            });
            h = [h[1], h[2], next];
        }
        let mut p = Ppm::new(6);
        let r = simulate(&mut p, &t);
        assert!(r.miss_rate() < 0.02, "miss rate {}", r.miss_rate());
    }

    #[test]
    fn competitive_with_gshare_on_benchmarks() {
        // Idealized PPM should be at least as good as a mid-size gshare
        // on the synthetic suite (it is the stronger model).
        let trace = BranchBenchmark::Gsm.trace(Input::TRAIN, 20_000);
        let r_ppm = simulate(&mut Ppm::new(8), &trace);
        let r_gsh = simulate(&mut Gshare::new(4096), &trace);
        assert!(
            r_ppm.miss_rate() <= r_gsh.miss_rate() + 0.01,
            "ppm {} vs gshare {}",
            r_ppm.miss_rate(),
            r_gsh.miss_rate()
        );
    }

    #[test]
    fn storage_grows_with_contexts() {
        let mut p = Ppm::new(3);
        assert_eq!(p.stored_contexts(), 0);
        p.update(0x10, true);
        p.update(0x10, false);
        assert!(p.stored_contexts() > 0);
        assert!(p.storage_bits() > 0);
        assert_eq!(p.describe(), "ppm-o3");
    }

    #[test]
    #[should_panic(expected = "PPM order")]
    fn zero_order_rejected() {
        let _ = Ppm::new(0);
    }
}
