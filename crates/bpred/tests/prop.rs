//! Property-based tests for the branch predictor simulators: accounting
//! invariants, determinism, and counter behaviour under arbitrary event
//! sequences.

use fsmgen_bpred::{
    simulate, Bimodal, BranchPredictor, Gshare, LocalGlobalChooser, LoopTermination, Ppm,
    SaturatingCounter, XScaleBtb,
};
use fsmgen_testkit::strategies::branch_trace as trace_strategy;
use fsmgen_traces::{BranchEvent, BranchTrace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-branch accounting always sums to the totals.
    #[test]
    fn simulation_accounting(trace in trace_strategy()) {
        let mut p = XScaleBtb::xscale();
        let r = simulate(&mut p, &trace);
        prop_assert_eq!(r.branches, trace.len());
        let (execs, misses): (usize, usize) = r
            .per_branch
            .values()
            .fold((0, 0), |(e, m), &(pe, pm)| (e + pe, m + pm));
        prop_assert_eq!(execs, r.branches);
        prop_assert_eq!(misses, r.mispredictions);
        prop_assert!(r.miss_rate() >= 0.0 && r.miss_rate() <= 1.0);
    }

    /// Every predictor is deterministic: identical traces give identical
    /// results.
    #[test]
    fn predictors_are_deterministic(trace in trace_strategy()) {
        fn run2<P: BranchPredictor, F: Fn() -> P>(make: F, t: &BranchTrace) -> (usize, usize) {
            let a = simulate(&mut make(), t);
            let b = simulate(&mut make(), t);
            assert_eq!(a, b);
            (a.branches, a.mispredictions)
        }
        run2(|| Bimodal::new(64), &trace);
        run2(|| Gshare::new(256), &trace);
        run2(|| LocalGlobalChooser::new(64, 6, 256), &trace);
        run2(XScaleBtb::xscale, &trace);
        run2(|| Ppm::new(4), &trace);
        run2(LoopTermination::new, &trace);
    }

    /// Saturating counters always stay within [0, max] and honour the
    /// threshold semantics.
    #[test]
    fn counter_stays_in_range(
        max in 1u32..64,
        inc in 1u32..8,
        dec in prop_oneof![Just(u32::MAX), (1u32..8).prop_map(|d| d)],
        events in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let threshold = max / 2;
        let mut c = SaturatingCounter::new(max, inc, dec, threshold);
        for e in events {
            c.update(e);
            prop_assert!(c.value() <= max);
            prop_assert_eq!(c.predict(), c.value() > threshold);
        }
    }

    /// An always-taken workload is eventually predicted perfectly by every
    /// table predictor (warmup aside).
    #[test]
    fn biased_workloads_are_learned(slots in 1u64..8) {
        let trace: BranchTrace = (0..800)
            .map(|i| BranchEvent {
                pc: 0x4000 + (i % slots) * 4,
                target: 0,
                taken: true,
            })
            .collect();
        for result in [
            simulate(&mut Bimodal::new(64), &trace),
            simulate(&mut Gshare::new(1024), &trace),
            simulate(&mut XScaleBtb::xscale(), &trace),
        ] {
            // Allowance: per-slot counter warmup plus gshare's history
            // warmup (each new history value hits a cold counter).
            prop_assert!(
                result.mispredictions <= (slots as usize) * 4 + 16,
                "{} misses on an always-taken workload",
                result.mispredictions
            );
        }
    }

    /// PPM context storage grows monotonically and is bounded by
    /// orders x dynamic branches.
    #[test]
    fn ppm_storage_bounds(trace in trace_strategy()) {
        let mut p = Ppm::new(4);
        let mut last = 0usize;
        for e in &trace {
            let _ = p.predict(e.pc);
            p.update(e.pc, e.taken);
            let now = p.stored_contexts();
            prop_assert!(now >= last);
            last = now;
        }
        prop_assert!(last <= 4 * trace.len());
    }

    /// Loop predictor trip counts, when confirmed, equal an actually
    /// observed taken-run length.
    #[test]
    fn loop_trip_counts_are_observed_runs(
        trips in proptest::collection::vec(1u32..12, 2..12),
    ) {
        let mut trace = BranchTrace::new();
        for &t in &trips {
            for i in 0..t {
                trace.push(BranchEvent {
                    pc: 0x40,
                    target: 0,
                    taken: i != t - 1,
                });
            }
        }
        let mut p = LoopTermination::new();
        for e in &trace {
            p.update(e.pc, e.taken);
        }
        if let Some(trip) = p.trip_count(0x40) {
            prop_assert!(
                trips.iter().any(|&t| t - 1 == trip),
                "confirmed trip {trip} never observed in {trips:?}"
            );
        }
    }
}

/// Named, deterministic pin for the historical `biased_workloads_are_learned`
/// regression (the checked-in proptest seed shrank to `slots = 1`): a
/// single hot always-taken branch must be learned within the warmup
/// allowance by every table predictor. This covers the regression even
/// under proptest stubs that do not replay `.proptest-regressions` seeds.
#[test]
fn regression_single_slot_always_taken_is_learned() {
    let slots = 1u64;
    let trace: BranchTrace = (0..800)
        .map(|i| BranchEvent {
            pc: 0x4000 + (i % slots) * 4,
            target: 0,
            taken: true,
        })
        .collect();
    for (name, result) in [
        ("bimodal", simulate(&mut Bimodal::new(64), &trace)),
        ("gshare", simulate(&mut Gshare::new(1024), &trace)),
        ("xscale", simulate(&mut XScaleBtb::xscale(), &trace)),
    ] {
        assert!(
            result.mispredictions <= (slots as usize) * 4 + 16,
            "{name}: {} misses on a single-slot always-taken workload",
            result.mispredictions
        );
    }
}
