//! Design-flow resource budgets and the graceful-degradation report.
//!
//! A [`DesignBudget`] caps the expensive stages of the §4 pipeline (logic
//! minimization and automaton construction) and optionally the wall clock.
//! When a stage would exceed the budget, the [`Designer`](crate::Designer)
//! does not fail outright: it walks a *degradation ladder* — heuristic
//! minimizer, then shorter history orders, then a plain saturating counter
//! — and records each step taken in a [`Degradation`] report attached to
//! the returned design.

use fsmgen_automata::AutomataBudget;
use fsmgen_logicmin::MinimizeBudget;
use std::fmt;
use std::time::Instant;

/// Resource limits for one design-flow run. A default-constructed budget is
/// unlimited, making the budgeted flow identical to the plain one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesignBudget {
    /// Maximum DFA states subset construction may materialize (also caps
    /// the steady-state reduction iteration).
    pub max_dfa_states: Option<usize>,
    /// Maximum Thompson NFA states.
    pub max_nfa_states: Option<usize>,
    /// Maximum minterms the logic minimizer may enumerate explicitly.
    pub max_minterms: Option<usize>,
    /// Maximum prime-implicant cubes alive during Quine–McCluskey merging
    /// (exact minimizer only).
    pub max_primes: Option<usize>,
    /// Maximum branch-and-bound nodes in the exact covering step before it
    /// degrades (internally, without error) to greedy selection.
    pub max_cover_nodes: Option<usize>,
    /// Wall-clock deadline for the whole run.
    pub deadline: Option<Instant>,
}

impl DesignBudget {
    /// A budget with every limit disabled.
    #[must_use]
    pub fn unlimited() -> Self {
        DesignBudget::default()
    }

    /// `true` when no limit is set.
    #[must_use]
    pub fn is_unlimited(&self) -> bool {
        *self == DesignBudget::default()
    }

    /// The logic-minimization slice of this budget.
    #[must_use]
    pub fn minimize_budget(&self) -> MinimizeBudget {
        MinimizeBudget {
            max_minterms: self.max_minterms,
            max_primes: self.max_primes,
            max_cover_nodes: self.max_cover_nodes,
            deadline: self.deadline,
        }
    }

    /// The automaton-construction slice of this budget.
    #[must_use]
    pub fn automata_budget(&self) -> AutomataBudget {
        AutomataBudget {
            max_nfa_states: self.max_nfa_states,
            max_dfa_states: self.max_dfa_states,
            deadline: self.deadline,
        }
    }
}

/// One rung of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rung {
    /// The exact minimizer was replaced by the Espresso-style heuristic.
    HeuristicMinimizer,
    /// The history order was reduced to the contained value.
    ReducedOrder(usize),
    /// The design fell back to a 2-bit saturating counter (no history
    /// window at all).
    SaturatingCounter,
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::HeuristicMinimizer => f.write_str("heuristic minimizer"),
            Rung::ReducedOrder(n) => write!(f, "history order reduced to {n}"),
            Rung::SaturatingCounter => f.write_str("saturating-counter fallback"),
        }
    }
}

/// One recorded fallback: which rung was taken and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationStep {
    /// The ladder rung the designer fell to.
    pub rung: Rung,
    /// The pipeline stage whose failure triggered the fallback.
    pub stage: &'static str,
    /// Human-readable failure description (typically the budget error).
    pub reason: String,
}

impl fmt::Display for DegradationStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at {}: {})", self.rung, self.stage, self.reason)
    }
}

/// The degradation report attached to every [`Design`](crate::Design): the
/// ordered list of ladder rungs the designer had to take. Empty when the
/// requested configuration fit the budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degradation {
    steps: Vec<DegradationStep>,
}

impl Degradation {
    /// Reconstructs a report from recorded steps — the deserialization
    /// path (e.g. the farm's persistent cache snapshots). The designer
    /// itself records steps internally; this does not validate that the
    /// sequence is one the ladder could actually produce.
    #[must_use]
    pub fn from_steps(steps: Vec<DegradationStep>) -> Self {
        Degradation { steps }
    }

    /// `true` when at least one fallback was taken.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !self.steps.is_empty()
    }

    /// The recorded fallbacks, in the order they were taken.
    #[must_use]
    pub fn steps(&self) -> &[DegradationStep] {
        &self.steps
    }

    /// The final rung reached, or `None` for an undegraded design.
    #[must_use]
    pub fn final_rung(&self) -> Option<Rung> {
        self.steps.last().map(|s| s.rung)
    }

    pub(crate) fn record(&mut self, rung: Rung, stage: &'static str, reason: String) {
        self.steps.push(DegradationStep {
            rung,
            stage,
            reason,
        });
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return f.write_str("no degradation");
        }
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = DesignBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b.minimize_budget(), MinimizeBudget::unlimited());
        assert_eq!(b.automata_budget(), AutomataBudget::unlimited());
    }

    #[test]
    fn budget_slices_carry_limits() {
        let b = DesignBudget {
            max_dfa_states: Some(64),
            max_minterms: Some(512),
            ..DesignBudget::default()
        };
        assert!(!b.is_unlimited());
        assert_eq!(b.automata_budget().max_dfa_states, Some(64));
        assert_eq!(b.minimize_budget().max_minterms, Some(512));
    }

    #[test]
    fn degradation_report_accumulates() {
        let mut d = Degradation::default();
        assert!(!d.is_degraded());
        assert_eq!(d.to_string(), "no degradation");
        d.record(
            Rung::HeuristicMinimizer,
            "minimize",
            "too many primes".into(),
        );
        d.record(Rung::ReducedOrder(4), "minimize", "still too many".into());
        assert!(d.is_degraded());
        assert_eq!(d.steps().len(), 2);
        assert_eq!(d.final_rung(), Some(Rung::ReducedOrder(4)));
        let text = d.to_string();
        assert!(text.contains("heuristic minimizer"));
        assert!(text.contains("reduced to 4"));
    }
}
