//! Deterministic fault injection for the design pipeline.
//!
//! A *failpoint* forces a named pipeline stage to fail on demand so the
//! degradation ladder and error paths can be exercised end to end without
//! crafting pathological inputs for every stage. The facility is modeled on
//! the `fail` crate but is dependency-free and thread-local: each test
//! thread configures its own failures and cannot perturb others.
//!
//! Stages consulted by [`Designer`](crate::Designer):
//! `"patterns"`, `"minimize"`, `"nfa"`, `"dfa"`, `"hopcroft"`, `"reduce"`,
//! `"counter"`. The `fsmgen-farm` batch engine additionally consults
//! `"farm-worker"` once per job, from whichever worker thread picked the
//! job up, and the `fsmgen-serve` design service consults `"serve-conn"`
//! once per accepted connection (a fired failpoint drops the connection
//! before any frame is read, counted as an injected fault in the serve
//! metrics).
//!
//! # Thread-local vs. global registries
//!
//! [`configure`] arms a failpoint for the *current thread* only — the right
//! scope for single-threaded pipeline tests, which may run concurrently in
//! one test binary. Multi-threaded consumers (the farm's worker pool)
//! never run pipeline stages on the configuring thread, so a second,
//! process-wide registry exists: [`configure_global`] /
//! [`clear_global`] arm failpoints visible from *every* thread. [`fire`]
//! consults the thread-local registry first, then the global one; a
//! counted global failpoint decrements atomically under its lock, so
//! `count = 1` fires on exactly one worker across the whole process.
//!
//! The whole module is gated on the `failpoints` cargo feature (on by
//! default). With the feature off, [`fire`] compiles to a constant `None`
//! and the configuration functions are no-ops, so production builds can
//! drop the machinery entirely.
//!
//! # Examples
//!
//! ```
//! use fsmgen::failpoints;
//!
//! // Make the minimizer report budget exhaustion twice, then recover.
//! failpoints::configure_from_spec("minimize=budget:2").unwrap();
//! if cfg!(feature = "failpoints") {
//!     assert!(failpoints::fire("minimize").is_some());
//!     assert!(failpoints::fire("minimize").is_some());
//!     assert!(failpoints::fire("minimize").is_none());
//! }
//! failpoints::clear();
//! ```

use std::fmt;

/// What a fired failpoint makes the stage report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The stage pretends its resource budget was exceeded, which makes the
    /// designer take the next degradation rung.
    BudgetExceeded,
    /// The stage reports a hard internal error.
    Error,
}

impl fmt::Display for FailAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailAction::BudgetExceeded => f.write_str("budget"),
            FailAction::Error => f.write_str("error"),
        }
    }
}

#[cfg(feature = "failpoints")]
mod enabled {
    use super::FailAction;
    use std::cell::RefCell;
    use std::sync::Mutex;

    struct Failpoint {
        stage: String,
        action: FailAction,
        /// Remaining fires; `None` means unlimited.
        remaining: Option<u32>,
    }

    thread_local! {
        static REGISTRY: RefCell<Vec<Failpoint>> = const { RefCell::new(Vec::new()) };
    }

    /// Process-wide registry, consulted by [`fire`] after the thread-local
    /// one. Lock poisoning is survivable here: the registry holds plain
    /// data, so a panicking configurator cannot leave it inconsistent.
    static GLOBAL: Mutex<Vec<Failpoint>> = Mutex::new(Vec::new());

    fn with_global<R>(f: impl FnOnce(&mut Vec<Failpoint>) -> R) -> R {
        let mut guard = GLOBAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard)
    }

    /// Arms `stage` to fail with `action`. `count` limits how many times it
    /// fires (`None` = every time until [`clear`]); a later call for the
    /// same stage replaces the earlier one.
    pub fn configure(stage: &str, action: FailAction, count: Option<u32>) {
        REGISTRY.with_borrow_mut(|reg| {
            reg.retain(|fp| fp.stage != stage);
            reg.push(Failpoint {
                stage: stage.to_owned(),
                action,
                remaining: count,
            });
        });
    }

    /// Arms `stage` to fail with `action` on *any* thread in the process.
    /// Semantics otherwise match [`configure`]; a counted global failpoint
    /// is consumed atomically, so `count = 1` fires exactly once across
    /// all worker threads.
    pub fn configure_global(stage: &str, action: FailAction, count: Option<u32>) {
        with_global(|reg| {
            reg.retain(|fp| fp.stage != stage);
            reg.push(Failpoint {
                stage: stage.to_owned(),
                action,
                remaining: count,
            });
        });
    }

    /// Parses one spec and hands every entry to `apply`.
    fn parse_spec(
        spec: &str,
        mut apply: impl FnMut(&str, FailAction, Option<u32>),
    ) -> Result<(), String> {
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (stage, rhs) = entry
                .split_once('=')
                .ok_or_else(|| format!("failpoint entry '{entry}' is missing '='"))?;
            let (action, count) = match rhs.split_once(':') {
                Some((action, count)) => {
                    let n: u32 = count
                        .parse()
                        .map_err(|_| format!("failpoint count '{count}' is not a number"))?;
                    (action, Some(n))
                }
                None => (rhs, None),
            };
            let action = match action {
                "budget" => FailAction::BudgetExceeded,
                "error" => FailAction::Error,
                other => {
                    return Err(format!(
                        "failpoint action '{other}' must be 'budget' or 'error'"
                    ))
                }
            };
            if stage.is_empty() {
                return Err(format!("failpoint entry '{entry}' has an empty stage"));
            }
            apply(stage, action, count);
        }
        Ok(())
    }

    /// Arms failpoints from a compact spec string: a comma-separated list
    /// of `stage=action` or `stage=action:count` entries, where action is
    /// `budget` or `error`. Example: `"minimize=budget:2,dfa=error"`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn configure_from_spec(spec: &str) -> Result<(), String> {
        parse_spec(spec, configure)
    }

    /// Like [`configure_from_spec`] but arms the process-wide registry, so
    /// the failpoints fire on worker threads too (the farm's
    /// `"farm-worker"` stage needs this).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed entry.
    pub fn configure_from_spec_global(spec: &str) -> Result<(), String> {
        parse_spec(spec, configure_global)
    }

    /// Disarms every failpoint on this thread.
    pub fn clear() {
        REGISTRY.with_borrow_mut(Vec::clear);
    }

    /// Disarms every process-wide failpoint.
    pub fn clear_global() {
        with_global(Vec::clear);
    }

    fn consume(reg: &mut [Failpoint], stage: &str) -> Option<FailAction> {
        let fp = reg.iter_mut().find(|fp| fp.stage == stage)?;
        match &mut fp.remaining {
            Some(0) => None,
            Some(n) => {
                *n -= 1;
                Some(fp.action)
            }
            None => Some(fp.action),
        }
    }

    /// Consults the thread-local registry, then the process-wide one, for
    /// `stage`: returns the armed action and consumes one fire, or `None`
    /// when the stage is not armed (or its fire count is spent).
    #[must_use]
    pub fn fire(stage: &str) -> Option<FailAction> {
        REGISTRY
            .with_borrow_mut(|reg| consume(reg, stage))
            .or_else(|| with_global(|reg| consume(reg, stage)))
    }
}

#[cfg(feature = "failpoints")]
pub use enabled::{
    clear, clear_global, configure, configure_from_spec, configure_from_spec_global,
    configure_global, fire,
};

#[cfg(not(feature = "failpoints"))]
mod disabled {
    use super::FailAction;

    /// No-op: the `failpoints` feature is disabled.
    pub fn configure(_stage: &str, _action: FailAction, _count: Option<u32>) {}

    /// No-op: the `failpoints` feature is disabled.
    pub fn configure_global(_stage: &str, _action: FailAction, _count: Option<u32>) {}

    /// No-op: the `failpoints` feature is disabled. Specs still parse so
    /// CLI flags behave consistently, but nothing is armed.
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn configure_from_spec(_spec: &str) -> Result<(), String> {
        Ok(())
    }

    /// No-op: the `failpoints` feature is disabled.
    ///
    /// # Errors
    ///
    /// Never fails.
    pub fn configure_from_spec_global(_spec: &str) -> Result<(), String> {
        Ok(())
    }

    /// No-op: the `failpoints` feature is disabled.
    pub fn clear() {}

    /// No-op: the `failpoints` feature is disabled.
    pub fn clear_global() {}

    /// Always `None`: the `failpoints` feature is disabled.
    #[must_use]
    pub fn fire(_stage: &str) -> Option<FailAction> {
        None
    }
}

#[cfg(not(feature = "failpoints"))]
pub use disabled::{
    clear, clear_global, configure, configure_from_spec, configure_from_spec_global,
    configure_global, fire,
};

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn unarmed_stage_never_fires() {
        clear();
        assert_eq!(fire("minimize"), None);
    }

    #[test]
    fn counted_fires_are_consumed() {
        clear();
        configure("dfa", FailAction::BudgetExceeded, Some(2));
        assert_eq!(fire("dfa"), Some(FailAction::BudgetExceeded));
        assert_eq!(fire("dfa"), Some(FailAction::BudgetExceeded));
        assert_eq!(fire("dfa"), None);
        clear();
    }

    #[test]
    fn unlimited_fires_until_cleared() {
        clear();
        configure("nfa", FailAction::Error, None);
        for _ in 0..10 {
            assert_eq!(fire("nfa"), Some(FailAction::Error));
        }
        clear();
        assert_eq!(fire("nfa"), None);
    }

    #[test]
    fn spec_parsing() {
        clear();
        configure_from_spec("minimize=budget:1, dfa=error").unwrap();
        assert_eq!(fire("minimize"), Some(FailAction::BudgetExceeded));
        assert_eq!(fire("minimize"), None);
        assert_eq!(fire("dfa"), Some(FailAction::Error));
        assert_eq!(fire("dfa"), Some(FailAction::Error));
        clear();
    }

    #[test]
    fn spec_errors_are_reported() {
        assert!(configure_from_spec("nonsense").is_err());
        assert!(configure_from_spec("stage=explode").is_err());
        assert!(configure_from_spec("stage=budget:lots").is_err());
        assert!(configure_from_spec("=budget").is_err());
        clear();
    }

    #[test]
    fn global_failpoints_fire_on_other_threads() {
        // A stage name no other test uses, so parallel test threads
        // consulting the shared global registry are not perturbed.
        configure_global("global-smoke", FailAction::Error, Some(2));
        let seen = std::thread::spawn(|| fire("global-smoke"))
            .join()
            .expect("worker thread");
        assert_eq!(seen, Some(FailAction::Error));
        assert_eq!(fire("global-smoke"), Some(FailAction::Error));
        assert_eq!(fire("global-smoke"), None);
        clear_global();
    }

    #[test]
    fn global_spec_arms_process_wide() {
        configure_from_spec_global("global-spec-smoke=budget:1").unwrap();
        let seen = std::thread::spawn(|| fire("global-spec-smoke"))
            .join()
            .expect("worker thread");
        assert_eq!(seen, Some(FailAction::BudgetExceeded));
        assert_eq!(fire("global-spec-smoke"), None);
        clear_global();
    }

    #[test]
    fn reconfiguring_replaces() {
        clear();
        configure("reduce", FailAction::Error, None);
        configure("reduce", FailAction::BudgetExceeded, Some(1));
        assert_eq!(fire("reduce"), Some(FailAction::BudgetExceeded));
        assert_eq!(fire("reduce"), None);
        clear();
    }
}
