//! Pattern definition (§4.3): partitioning observed histories into the
//! "predict 1", "predict 0" and "don't care" sets.

use crate::markov::MarkovModel;
use fsmgen_logicmin::{FunctionSpec, SpecError};
use serde::{Deserialize, Serialize};

/// Configuration of the pattern-definition stage.
///
/// * `prob_threshold` — a history joins the predict-1 set when
///   `P[1 | history] >= prob_threshold`. The paper uses 1/2 for plain
///   prediction-accuracy minimization; raising it toward 1.0 trades
///   coverage for accuracy, which is how the confidence-estimation Pareto
///   curves of Figure 2 are generated.
/// * `dont_care_fraction` — the least-seen histories, up to this fraction
///   of all dynamic observations, are placed in the don't-care set. "By
///   placing only the 1% least seen histories in the don't care set can
///   reduce the size of the predictor by a factor of two with negligible
///   impact on prediction accuracy."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PatternConfig {
    /// Minimum `P[1 | history]` for the predict-1 set.
    pub prob_threshold: f64,
    /// Fraction of dynamic observations whose (rarest) histories become
    /// don't-cares.
    pub dont_care_fraction: f64,
}

impl Default for PatternConfig {
    /// The paper's defaults: threshold 1/2, rarest 1% as don't-cares.
    fn default() -> Self {
        PatternConfig {
            prob_threshold: 0.5,
            dont_care_fraction: 0.01,
        }
    }
}

impl PatternConfig {
    /// A configuration with no don't-care compression, useful for exactness
    /// comparisons and the don't-care ablation study.
    #[must_use]
    pub fn without_dont_cares(prob_threshold: f64) -> Self {
        PatternConfig {
            prob_threshold,
            dont_care_fraction: 0.0,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message when `prob_threshold` is outside `(0, 1]` or
    /// `dont_care_fraction` outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.prob_threshold > 0.0 && self.prob_threshold <= 1.0) {
            return Err(format!(
                "prob_threshold must be in (0, 1], got {}",
                self.prob_threshold
            ));
        }
        if !(0.0..1.0).contains(&self.dont_care_fraction) {
            return Err(format!(
                "dont_care_fraction must be in [0, 1), got {}",
                self.dont_care_fraction
            ));
        }
        Ok(())
    }
}

/// The §4.3 partition of history space for one predictor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSets {
    spec: FunctionSpec,
    dont_care_observations: u64,
    total_observations: u64,
}

impl PatternSets {
    /// Partitions the histories of `model` into predict-1 / predict-0 /
    /// don't-care sets per `config`.
    ///
    /// Histories that never occur in the trace are implicit don't-cares.
    /// Among observed histories, the rarest ones are demoted to don't-care
    /// until their cumulative dynamic count would exceed
    /// `config.dont_care_fraction` of all observations.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the model order exceeds the logic
    /// minimizer's width limit (not reachable through [`MarkovModel`]'s own
    /// limits) and propagates internal consistency failures.
    pub fn from_model(model: &MarkovModel, config: &PatternConfig) -> Result<Self, SpecError> {
        debug_assert!(config.validate().is_ok(), "invalid PatternConfig");
        let total = model.total_observations();
        let budget = (total as f64 * config.dont_care_fraction) as u64;

        // Sort observed histories by dynamic count ascending; demote the
        // rarest while the budget lasts.
        let mut by_rarity: Vec<(u32, u64)> = model.iter().map(|(h, c)| (h, c.total())).collect();
        by_rarity.sort_by_key(|&(h, n)| (n, h));
        let mut spent = 0u64;
        let mut demoted = std::collections::BTreeSet::new();
        for &(h, n) in &by_rarity {
            if spent + n > budget {
                break;
            }
            spent += n;
            demoted.insert(h);
        }

        let mut spec = FunctionSpec::new(model.order())?;
        for (h, counts) in model.iter() {
            if demoted.contains(&h) {
                spec.add_dont_care(h)?;
            } else if counts.prob_one() >= config.prob_threshold {
                spec.add_on(h)?;
            } else {
                spec.add_off(h)?;
            }
        }
        Ok(PatternSets {
            spec,
            dont_care_observations: spent,
            total_observations: total,
        })
    }

    /// Reassembles pattern sets from their parts — the deserialization
    /// path (e.g. the farm's persistent cache snapshots). The counts are
    /// taken as recorded; no re-derivation from a model happens here.
    #[must_use]
    pub fn from_parts(
        spec: FunctionSpec,
        dont_care_observations: u64,
        total_observations: u64,
    ) -> Self {
        PatternSets {
            spec,
            dont_care_observations,
            total_observations,
        }
    }

    /// The resulting incompletely specified function: on = predict 1,
    /// off = predict 0, don't-care = everything else.
    #[must_use]
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Consumes the sets, returning the function spec.
    #[must_use]
    pub fn into_spec(self) -> FunctionSpec {
        self.spec
    }

    /// Dynamic observations demoted to don't-care by the rarity rule.
    #[must_use]
    pub fn dont_care_observations(&self) -> u64 {
        self.dont_care_observations
    }

    /// Total dynamic observations in the model.
    #[must_use]
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsmgen_traces::BitTrace;

    fn paper_model() -> MarkovModel {
        let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
        MarkovModel::from_bit_trace(2, &t).unwrap()
    }

    #[test]
    fn paper_partition() {
        // §4.3: predict-1 = {01, 10, 11}, predict-0 = {00}, dc = ∅.
        let sets = PatternSets::from_model(&paper_model(), &PatternConfig::without_dont_cares(0.5))
            .unwrap();
        let spec = sets.spec();
        let on: Vec<u32> = spec.on_set().iter().copied().collect();
        assert_eq!(on, vec![0b01, 0b10, 0b11]);
        let off: Vec<u32> = spec.off_set().iter().copied().collect();
        assert_eq!(off, vec![0b00]);
    }

    #[test]
    fn high_threshold_shrinks_on_set() {
        // With threshold 0.7 only histories with P[1|h] >= 0.7 stay:
        // 10 -> 3/4 = 0.75 and 11 -> 6/8 = 0.75 qualify.
        let sets = PatternSets::from_model(&paper_model(), &PatternConfig::without_dont_cares(0.7))
            .unwrap();
        let on: Vec<u32> = sets.spec().on_set().iter().copied().collect();
        assert_eq!(on, vec![0b10, 0b11]);
    }

    #[test]
    fn dont_care_budget_demotes_rarest() {
        let mut model = MarkovModel::new(3);
        // A dominant history and a rare one.
        for _ in 0..99 {
            model.observe(0b000, true);
        }
        model.observe(0b111, false);
        let config = PatternConfig {
            prob_threshold: 0.5,
            dont_care_fraction: 0.02, // budget = 2 observations
        };
        let sets = PatternSets::from_model(&model, &config).unwrap();
        assert_eq!(sets.dont_care_observations(), 1);
        assert!(sets.spec().explicit_dont_cares().contains(&0b111));
        assert!(sets.spec().on_set().contains(&0b000));
    }

    #[test]
    fn zero_fraction_keeps_everything() {
        let sets = PatternSets::from_model(&paper_model(), &PatternConfig::without_dont_cares(0.5))
            .unwrap();
        assert_eq!(sets.dont_care_observations(), 0);
        assert_eq!(sets.spec().explicit_dont_cares().len(), 0);
    }

    #[test]
    fn config_validation() {
        assert!(PatternConfig::default().validate().is_ok());
        assert!(PatternConfig {
            prob_threshold: 0.0,
            dont_care_fraction: 0.0
        }
        .validate()
        .is_err());
        assert!(PatternConfig {
            prob_threshold: 0.5,
            dont_care_fraction: 1.0
        }
        .validate()
        .is_err());
    }
}
