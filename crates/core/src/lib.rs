//! Automated design of finite state machine predictors.
//!
//! This crate implements the primary contribution of Sherwood & Calder,
//! *"Automated Design of Finite State Machine Predictors"* (ISCA 2001): an
//! automated flow that turns a behavioural 0/1 trace into a small Moore
//! machine that predicts the next bit. The flow (§4 of the paper) is:
//!
//! 1. **Modeling** — build an Nth-order [`MarkovModel`] of the trace;
//! 2. **Pattern definition** — partition histories into *predict 1*,
//!    *predict 0* and *don't care* sets ([`PatternSets`]);
//! 3. **Pattern compression** — minimize the resulting truth table to a
//!    sum-of-products cover (via [`fsmgen_logicmin`]);
//! 4. **Regular expression building** — each cube becomes a pattern, and
//!    the language is "anything ending in one of these patterns";
//! 5. **FSM creation** — Thompson NFA, subset construction, Hopcroft
//!    minimization (via [`fsmgen_automata`]);
//! 6. **Start state reduction** — remove start-up states, keeping only the
//!    steady-state machine.
//!
//! The [`Designer`] type orchestrates the flow and the returned [`Design`]
//! exposes every intermediate artifact.
//!
//! The flow can run under a [`DesignBudget`] capping states, cubes and wall
//! clock; budget exhaustion triggers a graceful-degradation ladder recorded
//! in the design's [`Degradation`] report. The [`failpoints`] module
//! injects deterministic faults for testing.
//!
//! # Examples
//!
//! The paper's running example, from trace to Figure 1's 3-state machine:
//!
//! ```
//! use fsmgen::Designer;
//! use fsmgen_traces::BitTrace;
//!
//! let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
//! let design = Designer::new(2).design_from_trace(&t)?;
//!
//! // §4.4: the minimized cover is (x1) ∨ (1x).
//! assert_eq!(design.cover().len(), 2);
//! // Figure 1: 5 states with start-up states, 3 after reduction.
//! assert_eq!(design.pre_reduction_states(), 5);
//! assert_eq!(design.fsm().num_states(), 3);
//!
//! // The machine predicts 1 unless the last two outcomes were 0, 0.
//! let mut p = design.predictor();
//! p.update(true);
//! p.update(false);
//! assert!(p.predict());
//! # Ok::<(), fsmgen::DesignError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod budget;
mod designer;
mod error;
pub mod failpoints;
mod markov;
mod patterns;
mod sweep;

pub use budget::{Degradation, DegradationStep, DesignBudget, Rung};
pub use designer::{Design, Designer};
pub use error::DesignError;
pub use markov::{HistoryCounts, MarkovModel, MAX_ORDER};
pub use patterns::{PatternConfig, PatternSets};
pub use sweep::{smallest_meeting_accuracy, sweep_histories, SweepPoint};
