//! Error type for the design flow.

use std::fmt;

/// Errors produced by the automated FSM-predictor design flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// The behaviour trace is too short to fill the history window even
    /// once.
    TraceTooShort {
        /// Trace length in bits.
        len: usize,
        /// Requested history length (Markov order).
        order: usize,
    },
    /// The Markov model contains no observations.
    EmptyModel,
    /// The model's order does not match the designer's configured history.
    OrderMismatch {
        /// The designer's history length.
        designer: usize,
        /// The model's order.
        model: usize,
    },
    /// The pattern configuration is invalid (message from validation).
    BadConfig(String),
    /// The model's order exceeds the logic minimizer's width limit.
    OrderTooLarge {
        /// The requested history order.
        order: usize,
        /// The widest order the minimizer supports.
        max: usize,
    },
    /// A pipeline stage exceeded its [`DesignBudget`](crate::DesignBudget)
    /// and degradation was disabled (or the ladder was exhausted).
    BudgetExceeded {
        /// The pipeline stage that hit the limit.
        stage: &'static str,
        /// Description of the violated limit.
        reason: String,
    },
    /// An internal pipeline stage failed unexpectedly (including injected
    /// faults from [`failpoints`](crate::failpoints)).
    Internal {
        /// The pipeline stage that failed.
        stage: &'static str,
        /// Description of the failure.
        reason: String,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::TraceTooShort { len, order } => write!(
                f,
                "trace of {len} bits cannot fill a history of {order} bits"
            ),
            DesignError::EmptyModel => write!(f, "markov model contains no observations"),
            DesignError::OrderMismatch { designer, model } => write!(
                f,
                "designer history {designer} does not match model order {model}"
            ),
            DesignError::BadConfig(msg) => write!(f, "invalid pattern configuration: {msg}"),
            DesignError::OrderTooLarge { order, max } => write!(
                f,
                "history order {order} exceeds the minimizer's width limit of {max}"
            ),
            DesignError::BudgetExceeded { stage, reason } => {
                write!(f, "design budget exceeded in {stage}: {reason}")
            }
            DesignError::Internal { stage, reason } => {
                write!(f, "internal failure in {stage}: {reason}")
            }
        }
    }
}

impl std::error::Error for DesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DesignError::TraceTooShort { len: 2, order: 4 };
        assert_eq!(
            e.to_string(),
            "trace of 2 bits cannot fill a history of 4 bits"
        );
        assert!(DesignError::EmptyModel
            .to_string()
            .contains("no observations"));
        assert!(DesignError::BadConfig("x".into()).to_string().contains('x'));
        let e = DesignError::OrderTooLarge { order: 40, max: 32 };
        assert!(e.to_string().contains("40"));
        let e = DesignError::BudgetExceeded {
            stage: "minimize",
            reason: "too many primes".into(),
        };
        assert!(e.to_string().contains("minimize"));
        let e = DesignError::Internal {
            stage: "dfa",
            reason: "injected".into(),
        };
        assert!(e.to_string().contains("dfa"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DesignError>();
    }
}
