//! Error type for the design flow.

use std::fmt;

/// Errors produced by the automated FSM-predictor design flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DesignError {
    /// The behaviour trace is too short to fill the history window even
    /// once.
    TraceTooShort {
        /// Trace length in bits.
        len: usize,
        /// Requested history length (Markov order).
        order: usize,
    },
    /// The Markov model contains no observations.
    EmptyModel,
    /// The model's order does not match the designer's configured history.
    OrderMismatch {
        /// The designer's history length.
        designer: usize,
        /// The model's order.
        model: usize,
    },
    /// The pattern configuration is invalid (message from validation).
    BadConfig(String),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::TraceTooShort { len, order } => write!(
                f,
                "trace of {len} bits cannot fill a history of {order} bits"
            ),
            DesignError::EmptyModel => write!(f, "markov model contains no observations"),
            DesignError::OrderMismatch { designer, model } => write!(
                f,
                "designer history {designer} does not match model order {model}"
            ),
            DesignError::BadConfig(msg) => write!(f, "invalid pattern configuration: {msg}"),
        }
    }
}

impl std::error::Error for DesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DesignError::TraceTooShort { len: 2, order: 4 };
        assert_eq!(
            e.to_string(),
            "trace of 2 bits cannot fill a history of 4 bits"
        );
        assert!(DesignError::EmptyModel
            .to_string()
            .contains("no observations"));
        assert!(DesignError::BadConfig("x".into()).to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DesignError>();
    }
}
