//! The end-to-end design flow (§4): trace → Markov model → pattern sets →
//! minimized cover → regular expression → minimized, steady-state Moore
//! predictor.

use crate::markov::MarkovModel;
use crate::patterns::{PatternConfig, PatternSets};
use crate::DesignError;
use fsmgen_automata::{Dfa, MoorePredictor, Nfa, Regex};
use fsmgen_logicmin::{minimize, Algorithm, Cover};
use fsmgen_traces::BitTrace;

/// Configures one run of the automated design flow.
///
/// Construct with [`Designer::new`] and adjust via the builder-style
/// methods, then call [`Designer::design_from_trace`] or
/// [`Designer::design_from_model`].
///
/// # Examples
///
/// Designing the paper's running example end to end (Figure 1):
///
/// ```
/// use fsmgen::Designer;
/// use fsmgen_traces::BitTrace;
///
/// let t: BitTrace = "0000 1000 1011 1101 1110 1111".parse().unwrap();
/// let design = Designer::new(2).design_from_trace(&t)?;
/// assert_eq!(design.fsm().num_states(), 3); // Figure 1, right side
/// assert_eq!(design.pre_reduction_states(), 5); // Figure 1, left side
/// # Ok::<(), fsmgen::DesignError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Designer {
    history: usize,
    pattern_config: PatternConfig,
    algorithm: Algorithm,
}

impl Designer {
    /// Creates a designer using `history` bits of history (the Markov
    /// order N), the paper's default pattern configuration (threshold 1/2,
    /// 1% don't-cares) and the exact minimizer.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero or exceeds
    /// [`MAX_ORDER`](crate::MAX_ORDER).
    #[must_use]
    pub fn new(history: usize) -> Self {
        assert!(
            history > 0 && history <= crate::MAX_ORDER,
            "history must be in 1..={}, got {history}",
            crate::MAX_ORDER
        );
        Designer {
            history,
            pattern_config: PatternConfig::default(),
            algorithm: Algorithm::default(),
        }
    }

    /// Sets the pattern-definition configuration.
    #[must_use]
    pub fn pattern_config(mut self, config: PatternConfig) -> Self {
        self.pattern_config = config;
        self
    }

    /// Sets the probability threshold for the predict-1 set (keeps the
    /// current don't-care fraction).
    #[must_use]
    pub fn prob_threshold(mut self, threshold: f64) -> Self {
        self.pattern_config.prob_threshold = threshold;
        self
    }

    /// Sets the don't-care demotion fraction (keeps the current threshold).
    #[must_use]
    pub fn dont_care_fraction(mut self, fraction: f64) -> Self {
        self.pattern_config.dont_care_fraction = fraction;
        self
    }

    /// Sets the logic-minimization algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// The configured history length.
    #[must_use]
    pub fn history(&self) -> usize {
        self.history
    }

    /// Runs the full flow on a 0/1 behaviour trace.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::TraceTooShort`] if the trace cannot fill the
    /// history window, [`DesignError::BadConfig`] for invalid pattern
    /// configuration, or [`DesignError::EmptyModel`] if no history was
    /// observed.
    pub fn design_from_trace(&self, trace: &BitTrace) -> Result<Design, DesignError> {
        let model = MarkovModel::from_bit_trace(self.history, trace)?;
        self.design_from_model(model)
    }

    /// Runs the flow from an already-built Markov model (e.g. a per-branch
    /// model keyed on global history, or a merged cross-training model).
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::BadConfig`] for invalid pattern configuration
    /// or [`DesignError::EmptyModel`] if the model has no observations.
    pub fn design_from_model(&self, model: MarkovModel) -> Result<Design, DesignError> {
        self.pattern_config
            .validate()
            .map_err(DesignError::BadConfig)?;
        if model.total_observations() == 0 {
            return Err(DesignError::EmptyModel);
        }
        if model.order() != self.history {
            return Err(DesignError::OrderMismatch {
                designer: self.history,
                model: model.order(),
            });
        }

        // §4.3 pattern definition.
        let sets = PatternSets::from_model(&model, &self.pattern_config)
            .expect("model order is within minimizer width limits");

        // §4.4 pattern compression.
        let cover = minimize(sets.spec(), self.algorithm);

        // §4.5 regular expression building. Cube variable i is the outcome
        // i steps back, so the oldest position of a written pattern is
        // variable N-1.
        let patterns: Vec<Vec<Option<bool>>> = cover
            .cubes()
            .iter()
            .map(|cube| (0..self.history).rev().map(|var| cube.var(var)).collect())
            .collect();
        let regex = if patterns.is_empty() {
            None
        } else {
            Some(Regex::ending_in(
                patterns.iter().map(|p| Regex::pattern(p)).collect(),
            ))
        };

        // §4.6 FSM creation + Hopcroft, §4.7 start-state reduction.
        let (minimized, fsm) = match &regex {
            None => {
                let constant = Dfa::from_parts(vec![[0, 0]], vec![false], 0);
                (constant.clone(), constant)
            }
            Some(re) => {
                let minimized = Dfa::from_nfa(&Nfa::from_regex(re)).minimized();
                let fsm = minimized.steady_state_reduced();
                (minimized, fsm)
            }
        };

        Ok(Design {
            model,
            sets,
            cover,
            regex,
            minimized,
            fsm,
        })
    }
}

/// The output of one design-flow run, retaining every intermediate
/// artifact so callers can inspect or report any stage.
#[derive(Debug, Clone)]
pub struct Design {
    model: MarkovModel,
    sets: PatternSets,
    cover: Cover,
    regex: Option<Regex>,
    minimized: Dfa,
    fsm: Dfa,
}

impl Design {
    /// The Markov model the design was derived from (§4.2).
    #[must_use]
    pub fn model(&self) -> &MarkovModel {
        &self.model
    }

    /// The predict-1 / predict-0 / don't-care partition (§4.3).
    #[must_use]
    pub fn pattern_sets(&self) -> &PatternSets {
        &self.sets
    }

    /// The minimized sum-of-products cover of the predict-1 set (§4.4).
    #[must_use]
    pub fn cover(&self) -> &Cover {
        &self.cover
    }

    /// The regular expression for the predict-1 language (§4.5), or `None`
    /// when the cover is empty (an always-predict-0 design).
    #[must_use]
    pub fn regex(&self) -> Option<&Regex> {
        self.regex.as_ref()
    }

    /// The Hopcroft-minimized machine before start-state removal
    /// (Figure 1, left).
    #[must_use]
    pub fn minimized_with_startup(&self) -> &Dfa {
        &self.minimized
    }

    /// State count before start-state reduction.
    #[must_use]
    pub fn pre_reduction_states(&self) -> usize {
        self.minimized.num_states()
    }

    /// The final steady-state predictor machine (Figure 1, right).
    #[must_use]
    pub fn fsm(&self) -> &Dfa {
        &self.fsm
    }

    /// Instantiates a runnable predictor on the final machine.
    #[must_use]
    pub fn predictor(&self) -> MoorePredictor {
        MoorePredictor::new(self.fsm.clone())
    }

    /// Consumes the design, returning the final machine.
    #[must_use]
    pub fn into_fsm(self) -> Dfa {
        self.fsm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_trace() -> BitTrace {
        "0000 1000 1011 1101 1110 1111".parse().unwrap()
    }

    #[test]
    fn full_paper_walkthrough() {
        let designer = Designer::new(2).dont_care_fraction(0.0);
        let design = designer.design_from_trace(&paper_trace()).unwrap();

        // §4.4: the cover is (x1) + (1x).
        assert_eq!(design.cover().len(), 2);
        assert_eq!(design.cover().literal_count(), 2);

        // §4.5: regex is {0|1}* over the two patterns.
        let re = design.regex().unwrap().to_string();
        assert!(re.starts_with("{0|1}*"), "regex was {re}");

        // Figure 1: 5 states with start-up, 3 after reduction.
        assert_eq!(design.pre_reduction_states(), 5);
        assert_eq!(design.fsm().num_states(), 3);

        // Steady-state behaviour: predict 1 unless the last two bits were
        // both 0.
        let mut p = design.predictor();
        for (bits, expect) in [
            ([false, false], false),
            ([false, true], true),
            ([true, false], true),
            ([true, true], true),
        ] {
            // Walk in from every state by feeding the two bits.
            for warmup in 0..3u32 {
                let mut q = p.fresh_instance();
                for _ in 0..warmup {
                    q.update(true);
                }
                for b in bits {
                    q.update(b);
                }
                assert_eq!(q.predict(), expect, "bits {bits:?} warmup {warmup}");
            }
            p = p.fresh_instance();
        }
    }

    #[test]
    fn always_taken_trace_designs_constant_predictor() {
        let t: BitTrace = "1111 1111 1111 1111".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        // Only history 11 is observed and it predicts 1; everything else is
        // a don't-care, so the cover collapses to the universal cube and
        // the machine to a single always-1 state.
        assert_eq!(design.fsm().num_states(), 1);
        assert!(design.fsm().output(0));
    }

    #[test]
    fn always_not_taken_trace() {
        let t: BitTrace = "0000 0000 0000".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        assert_eq!(design.fsm().num_states(), 1);
        assert!(!design.fsm().output(0));
        assert!(design.regex().is_none());
    }

    #[test]
    fn alternating_trace_learns_alternation() {
        let t: BitTrace = "0101 0101 0101 0101 0101".parse().unwrap();
        let design = Designer::new(2).design_from_trace(&t).unwrap();
        let mut p = design.predictor();
        // After seeing ...01 the predictor should say 0; after ...10, 1.
        p.update(false);
        p.update(true);
        assert!(!p.predict());
        p.update(false);
        assert!(p.predict());
    }

    #[test]
    fn errors_are_reported() {
        let designer = Designer::new(4);
        let tiny: BitTrace = "01".parse().unwrap();
        assert!(matches!(
            designer.design_from_trace(&tiny),
            Err(DesignError::TraceTooShort { .. })
        ));

        let designer = Designer::new(2).prob_threshold(2.0);
        assert!(matches!(
            designer.design_from_trace(&paper_trace()),
            Err(DesignError::BadConfig(_))
        ));

        let model = MarkovModel::new(3);
        assert!(matches!(
            Designer::new(3).design_from_model(model),
            Err(DesignError::EmptyModel)
        ));

        let mut model = MarkovModel::new(3);
        model.observe(0, true);
        assert!(matches!(
            Designer::new(2).design_from_model(model),
            Err(DesignError::OrderMismatch {
                designer: 2,
                model: 3
            })
        ));
    }

    #[test]
    fn history_sweep_monotone_knowledge() {
        // A trace with period-4 structure: longer histories should never
        // produce a predictor worse (on the training trace itself) than
        // shorter ones.
        let t: BitTrace = "0011 0011 0011 0011 0011 0011 0011 0011".parse().unwrap();
        let mut prev_acc = 0.0;
        for n in 2..=6 {
            let design = Designer::new(n).design_from_trace(&t).unwrap();
            let mut p = design.predictor();
            let mut correct = 0;
            let mut total = 0;
            for (i, bit) in t.iter().enumerate() {
                if i >= n {
                    total += 1;
                    if p.predict() == bit {
                        correct += 1;
                    }
                }
                p.update(bit);
            }
            let acc = correct as f64 / total as f64;
            assert!(
                acc + 1e-9 >= prev_acc,
                "accuracy dropped from {prev_acc} to {acc} at n={n}"
            );
            prev_acc = acc;
        }
        assert!(
            prev_acc > 0.9,
            "period-4 trace should be almost perfectly predictable"
        );
    }
}
